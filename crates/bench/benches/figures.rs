//! One benchmark per *figure* of the paper's evaluation, at reduced probe
//! budgets per iteration.

use am_bench::{BENCH_K, BENCH_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use testbed::experiments::{ablations, fig7, fig8, fig9, ping_matrix};

fn bench_fig3(c: &mut Criterion) {
    // Fig. 3 shares the Table-2 matrix; bench the box-stat extraction on
    // a fresh run (N4, 30 ms, 1 s: the in-and-out-of-phone mixture).
    c.bench_function("fig3_cell_nexus4_30ms_1s", |b| {
        b.iter(|| {
            let run =
                ping_matrix::run_ping(phone::nexus4(), 30, 1000, black_box(BENCH_K), BENCH_SEED);
            black_box(run.breakdowns.len())
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_entry_grand_85ms", |b| {
        b.iter(|| {
            let e = fig7::run_entry(phone::samsung_grand(), 85, BENCH_K, BENCH_SEED);
            black_box(e.dk_n.median)
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_acutemon_no_cross", |b| {
        b.iter(|| {
            let curve = fig8::run_tool(fig8::Tool::AcuteMon, false, BENCH_K, BENCH_SEED);
            black_box(curve.samples.len())
        })
    });
    // The congested arm is the heavyweight: 25 Mbit/s of cross traffic
    // for the whole horizon.
    c.bench_function("fig8_ping_with_cross_traffic", |b| {
        b.iter(|| {
            let curve = fig8::run_tool(fig8::Tool::Ping, true, BENCH_K, BENCH_SEED);
            black_box(curve.samples.len())
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_with_background", |b| {
        b.iter(|| {
            let curve = fig9::run_arm(fig9::Arm::WithBackground, BENCH_K, BENCH_SEED);
            black_box(curve.samples.len())
        })
    });
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("ablation_ping2_comparison", |b| {
        b.iter(|| black_box(ablations::ping2_comparison(5, BENCH_SEED).len()))
    });
    c.bench_function("ablation_cellular_rrc", |b| {
        b.iter(|| black_box(ablations::cellular(5, BENCH_SEED).len()))
    });
    c.bench_function("ablation_loss_robustness", |b| {
        b.iter(|| black_box(ablations::loss_robustness(BENCH_K, BENCH_SEED).len()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_fig7, bench_fig8, bench_fig9, bench_ablations
}
criterion_main!(figures);
