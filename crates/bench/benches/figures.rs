//! One benchmark per *figure* of the paper's evaluation, at reduced probe
//! budgets per iteration.

use am_bench::{black_box, Harness, BENCH_K, BENCH_SEED};
use testbed::experiments::{ablations, fig7, fig8, fig9, ping_matrix};

fn main() {
    let mut h = Harness::new("figures");
    // Fig. 3 shares the Table-2 matrix; bench the box-stat extraction on
    // a fresh run (N4, 30 ms, 1 s: the in-and-out-of-phone mixture).
    h.bench("fig3_cell_nexus4_30ms_1s", || {
        let run = ping_matrix::run_ping(phone::nexus4(), 30, 1000, black_box(BENCH_K), BENCH_SEED);
        black_box(run.breakdowns.len())
    });
    h.bench("fig7_entry_grand_85ms", || {
        let e = fig7::run_entry(phone::samsung_grand(), 85, BENCH_K, BENCH_SEED);
        black_box(e.dk_n.median)
    });
    h.bench("fig8_acutemon_no_cross", || {
        let curve = fig8::run_tool(fig8::Tool::AcuteMon, false, BENCH_K, BENCH_SEED);
        black_box(curve.samples.len())
    });
    // The congested arm is the heavyweight: 25 Mbit/s of cross traffic
    // for the whole horizon.
    h.bench("fig8_ping_with_cross_traffic", || {
        let curve = fig8::run_tool(fig8::Tool::Ping, true, BENCH_K, BENCH_SEED);
        black_box(curve.samples.len())
    });
    h.bench("fig9_with_background", || {
        let curve = fig9::run_arm(fig9::Arm::WithBackground, BENCH_K, BENCH_SEED);
        black_box(curve.samples.len())
    });
    h.bench("ablation_ping2_comparison", || {
        black_box(ablations::ping2_comparison(5, BENCH_SEED).len())
    });
    h.bench("ablation_cellular_rrc", || {
        black_box(ablations::cellular(5, BENCH_SEED).len())
    });
    h.bench("ablation_loss_robustness", || {
        black_box(ablations::loss_robustness(BENCH_K, BENCH_SEED).len())
    });
    h.finish();
}
