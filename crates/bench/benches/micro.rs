//! Microbenchmarks of the substrates: event-loop throughput, codec,
//! statistics, and the contention medium under saturation.

use am_bench::{black_box, Harness};

use simcore::{Ctx, Node, NodeId, Sim, SimDuration};
use wire::{codec, Ip, Packet, PacketTag, TcpFlags, L4};

/// A self-rescheduling node: one timer event per tick.
struct Ticker {
    remaining: u64,
}
impl Node<u64> for Ticker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer(SimDuration::from_micros(1), 0);
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, _: u64) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(SimDuration::from_micros(1), 0);
        }
    }
}

fn main() {
    let mut h = Harness::new("micro");

    const EVENTS: u64 = 100_000;
    h.bench("simcore/timer_events_100k", || {
        let mut sim = Sim::new(1);
        sim.add_node(Box::new(Ticker { remaining: EVENTS }));
        sim.run_until_idle(EVENTS + 10);
        black_box(sim.events_processed())
    });

    let p = Packet {
        id: 0xDEAD_BEEF,
        src: Ip::new(192, 168, 1, 100),
        dst: Ip::new(10, 0, 0, 1),
        ttl: 64,
        l4: L4::Tcp {
            src_port: 42_000,
            dst_port: 80,
            flags: TcpFlags::SYN | TcpFlags::ACK,
            seq: 1,
            ack: 2,
        },
        payload_len: 512,
        tag: PacketTag::Other,
    };
    let bytes = codec::encode(&p);
    h.bench("wire/encode_tcp_512B", || black_box(codec::encode(&p)));
    h.bench("wire/decode_tcp_512B", || {
        black_box(codec::decode(&bytes).unwrap())
    });

    let xs: Vec<f64> = (0..10_000)
        .map(|i| ((i * 37) % 1000) as f64 / 7.0)
        .collect();
    h.bench("am-stats/boxstats_10k", || {
        black_box(am_stats::BoxStats::of(&xs))
    });
    h.bench("am-stats/summary_10k", || {
        black_box(am_stats::Summary::of(&xs))
    });
    h.bench("am-stats/ecdf_build_10k", || {
        black_box(am_stats::Ecdf::of(&xs))
    });

    // Tracing overhead budget: the enabled path (one probe = root +
    // 3 children + packet bind/lookup/rebind) next to the sampled-out
    // path, which must stay near the disabled-handle floor.
    h.bench("obs/tracer_enabled_probe", || {
        let t = obs::Tracer::new();
        for pkt in 0..100u64 {
            let tr = t.begin_trace();
            let root = t.start_span(tr, None, "probe", "app", 0);
            t.bind_packet(pkt, obs::TraceCtx { trace: tr, root });
            t.span(tr, Some(root), "kernel_tx", "kernel", 0, 10_000);
            t.span(tr, Some(root), "sdio_wake", "driver", 10_000, 200_000);
            let ctx = t.packet_ctx(pkt).unwrap();
            t.rebind_packet(pkt, pkt + 1_000_000);
            t.span(ctx.trace, Some(ctx.root), "net", "net", 200_000, 900_000);
            t.end_span(root, 1_000_000);
        }
        black_box(t.spans().len())
    });
    h.bench("obs/tracer_sampled_out_probe", || {
        let t = obs::Tracer::with_policy(obs::SamplePolicy::one_in(u64::MAX));
        let _ = t.begin_trace(); // probe 0 is sampled in; burn it
        for pkt in 0..100u64 {
            let tr = t.begin_trace();
            let root = t.start_span(tr, None, "probe", "app", 0);
            t.bind_packet(pkt, obs::TraceCtx { trace: tr, root });
            t.span(tr, Some(root), "kernel_tx", "kernel", 0, 10_000);
            t.span(tr, Some(root), "sdio_wake", "driver", 10_000, 200_000);
            let _ = t.packet_ctx(pkt);
            t.rebind_packet(pkt, pkt + 1_000_000);
            t.end_span(root, 1_000_000);
        }
        black_box(t.sampling_stats().sampled_out)
    });

    h.bench("medium_1000_frames_2_senders", || {
        use phy80211::{MediumConfig, MediumNode};
        use wire::{Frame, Mac, Msg};
        let mut sim: Sim<Msg> = Sim::new(3);
        struct Quiet;
        impl Node<Msg> for Quiet {
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
        }
        let a = sim.add_node(Box::new(Quiet));
        let bb = sim.add_node(Box::new(Quiet));
        let medium = sim.add_node(Box::new(MediumNode::new(MediumConfig::default())));
        sim.node_mut::<MediumNode>(medium).attach(a);
        sim.node_mut::<MediumNode>(medium).attach(bb);
        sim.node_mut::<MediumNode>(medium).queue_cap = 2000;
        for i in 0..500u64 {
            let pa = Packet {
                id: i,
                src: Ip::new(1, 1, 1, 1),
                dst: Ip::new(2, 2, 2, 2),
                ttl: 64,
                l4: L4::Udp {
                    src_port: 1,
                    dst_port: 2,
                },
                payload_len: 1400,
                tag: PacketTag::CrossTraffic,
            };
            sim.inject(
                a,
                medium,
                simcore::SimTime::ZERO,
                Msg::MediumTx(Frame::data(i, Mac::local(1), Mac::local(0), pa, false)),
            );
            sim.inject(
                bb,
                medium,
                simcore::SimTime::ZERO,
                Msg::MediumTx(Frame::data(
                    1000 + i,
                    Mac::local(2),
                    Mac::local(0),
                    pa,
                    false,
                )),
            );
        }
        sim.run_until_idle(100_000);
        black_box(sim.events_processed())
    });

    h.finish();
}
