//! One benchmark per *table* of the paper: each iteration regenerates the
//! table's experiment at a reduced probe budget. Timings double as
//! regression guards for the whole simulation stack.

use am_bench::{BENCH_K, BENCH_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use testbed::experiments::{ping_matrix, table3, table4, table5};

fn bench_table2(c: &mut Criterion) {
    // One cell of the Table-2 matrix: Nexus 5, 60 ms, 1 s interval — the
    // cell where both wake mechanisms fire.
    c.bench_function("table2_cell_nexus5_60ms_1s", |b| {
        b.iter(|| {
            let run =
                ping_matrix::run_ping(phone::nexus5(), 60, 1000, black_box(BENCH_K), BENCH_SEED);
            black_box(run.breakdowns.len())
        })
    });
    c.bench_function("table2_full_matrix", |b| {
        b.iter(|| black_box(ping_matrix::run(BENCH_K, BENCH_SEED).table2.len()))
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_driver_hooks", |b| {
        b.iter(|| black_box(table3::run(BENCH_K, BENCH_SEED).rows.len()))
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4_tip_one_phone", |b| {
        b.iter(|| {
            let row = table4::measure_phone(phone::nexus4(), 6, BENCH_SEED);
            black_box(row.tip_ms)
        })
    });
}

fn bench_table5(c: &mut Criterion) {
    c.bench_function("table5_cell_nexus4_135ms", |b| {
        b.iter(|| {
            let cell = table5::run_cell(phone::nexus4(), 135, BENCH_K, BENCH_SEED);
            black_box(cell.dn.mean)
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_table3, bench_table4, bench_table5
}
criterion_main!(tables);
