//! One benchmark per *table* of the paper: each iteration regenerates the
//! table's experiment at a reduced probe budget. Timings double as
//! regression guards for the whole simulation stack.

use am_bench::{black_box, Harness, BENCH_K, BENCH_SEED};
use testbed::experiments::{ping_matrix, table3, table4, table5};

fn main() {
    let mut h = Harness::new("tables");
    // One cell of the Table-2 matrix: Nexus 5, 60 ms, 1 s interval — the
    // cell where both wake mechanisms fire.
    h.bench("table2_cell_nexus5_60ms_1s", || {
        let run = ping_matrix::run_ping(phone::nexus5(), 60, 1000, black_box(BENCH_K), BENCH_SEED);
        black_box(run.breakdowns.len())
    });
    h.bench("table2_full_matrix", || {
        black_box(ping_matrix::run(BENCH_K, BENCH_SEED).table2.len())
    });
    h.bench("table3_driver_hooks", || {
        black_box(table3::run(BENCH_K, BENCH_SEED).rows.len())
    });
    h.bench("table4_tip_one_phone", || {
        let row = table4::measure_phone(phone::nexus4(), 6, BENCH_SEED);
        black_box(row.tip_ms)
    });
    h.bench("table5_cell_nexus4_135ms", || {
        let cell = table5::run_cell(phone::nexus4(), 135, BENCH_K, BENCH_SEED);
        black_box(cell.dn.mean)
    });
    h.finish();
}
