//! # am-bench — benchmark harnesses
//!
//! Benchmarks that regenerate every table and figure of the paper (at a
//! reduced probe budget per iteration), plus microbenchmarks of the
//! substrates. The full-budget regeneration lives in the `repro` binary
//! of the `testbed` crate; these benches measure how fast the harness
//! itself is and act as performance regression guards for the simulator.
//!
//! The workspace builds offline, so instead of an external bench
//! framework the timing loop is [`Harness`]: adaptive iteration counts,
//! per-iteration samples recorded into an `obs` histogram, and a
//! min/p50/mean summary per benchmark. Run with `cargo bench`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Probe budget used per bench iteration — small enough to take many
/// samples, large enough to exercise every code path.
pub const BENCH_K: u32 = 10;

/// Seed used by all benches (determinism makes timings comparable).
pub const BENCH_SEED: u64 = 2016;

/// A minimal wall-clock benchmark harness.
///
/// Each benchmark warms up once, then runs iterations until `budget`
/// wall time is spent (at least `min_iters`, at most `max_iters`),
/// recording per-iteration latency into an `obs` histogram so the
/// summary quantiles come from the same machinery the telemetry layer
/// uses.
pub struct Harness {
    suite: String,
    budget: Duration,
    min_iters: u32,
    max_iters: u32,
    rows: Vec<String>,
}

impl Harness {
    /// A harness for the named suite with default settings
    /// (~300 ms, 5–200 iterations per benchmark).
    pub fn new(suite: &str) -> Harness {
        Harness {
            suite: suite.to_string(),
            budget: Duration::from_millis(300),
            min_iters: 5,
            max_iters: 200,
            rows: Vec::new(),
        }
    }

    /// Override the per-benchmark time budget.
    pub fn with_budget(mut self, budget: Duration) -> Harness {
        self.budget = budget;
        self
    }

    /// Time `f`, printing one summary line when the suite finishes.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up (also faults in lazy state)
        let reg = obs::Registry::new();
        let hist = reg.histogram(
            name,
            &[1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6],
        );
        let started = Instant::now();
        let mut iters = 0u32;
        while iters < self.min_iters || (started.elapsed() < self.budget && iters < self.max_iters)
        {
            let t = Instant::now();
            black_box(f());
            hist.observe(t.elapsed().as_secs_f64() * 1e3);
            iters += 1;
        }
        let snap = reg.snapshot();
        let h = snap.histogram(name).expect("bench histogram");
        self.rows.push(format!(
            "{:<36} {:>5} iters  min {:>12.3} µs  p50 {:>12.3} µs  mean {:>12.3} µs",
            name,
            h.count,
            h.min * 1e3,
            h.p50() * 1e3,
            h.mean() * 1e3
        ));
    }

    /// Print the suite summary table.
    pub fn finish(self) {
        println!("\n== {} ==", self.suite);
        for r in &self.rows {
            println!("{r}");
        }
    }
}
