//! # am-bench — benchmark harnesses
//!
//! Criterion benchmarks that regenerate every table and figure of the
//! paper (at a reduced probe budget per iteration, so criterion can
//! sample the runtime), plus microbenchmarks of the substrates. The
//! full-budget regeneration lives in the `repro` binary of the `testbed`
//! crate; these benches measure how fast the harness itself is and act as
//! performance regression guards for the simulator.

#![warn(missing_docs)]

/// Probe budget used per bench iteration — small enough for criterion to
/// take many samples, large enough to exercise every code path.
pub const BENCH_K: u32 = 10;

/// Seed used by all benches (determinism makes timings comparable).
pub const BENCH_SEED: u64 = 2016;
