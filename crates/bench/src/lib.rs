//! # am-bench — benchmark harnesses
//!
//! Benchmarks that regenerate every table and figure of the paper (at a
//! reduced probe budget per iteration), plus microbenchmarks of the
//! substrates. The full-budget regeneration lives in the `repro` binary
//! of the `testbed` crate; these benches measure how fast the harness
//! itself is and act as performance regression guards for the simulator.
//!
//! The timing loop itself lives in [`am_stats::bench`] so the `repro`
//! binary can reuse it (as `repro bench-snapshot`) without depending on
//! this crate; everything is re-exported here so the bench suites keep
//! their historical imports. Run with `cargo bench`.

#![warn(missing_docs)]

pub use am_stats::bench::{black_box, BenchResult, Harness, BENCH_K, BENCH_SEED};
