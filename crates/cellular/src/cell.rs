//! The cellular NIC node: sits between a phone and the wired core, like
//! `phy80211::StaMacNode` + `ApNode` collapsed into the radio-bearer hop.
//!
//! Uplink packets pay the RRC uplink wake plus a base radio latency;
//! downlink packets pay the RRC downlink wake (DRX alignment or paging)
//! plus the base latency. The node is also the first-hop gateway —
//! decrementing TTL so AcuteMon's TTL-1 keep-awake traffic dies at the
//! eNodeB/P-GW instead of loading the path, exactly as on WiFi.

use netem::{trace_drop, FaultPlan, FaultState, FaultVerdict};
use simcore::{Ctx, DetRng, LatencyDist, Node, NodeId, SimDuration};
use wire::{IcmpKind, Ip, Msg, Packet, PacketIdGen, PacketTag, L4};

use crate::rrc::{Rrc, RrcConfig};

/// Cellular link configuration.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// RRC machine parameters.
    pub rrc: RrcConfig,
    /// Base one-way uplink radio latency, ms (scheduling grant + HARQ).
    pub ul_base: LatencyDist,
    /// Base one-way downlink radio latency, ms.
    pub dl_base: LatencyDist,
    /// Gateway address (source of ICMP errors).
    pub gateway_ip: Ip,
    /// Emit ICMP Time Exceeded for TTL-expired uplink packets.
    pub icmp_ttl_exceeded: bool,
}

impl CellConfig {
    /// LTE defaults: ~6 ms base each way.
    pub fn lte(gateway_ip: Ip) -> CellConfig {
        CellConfig {
            rrc: RrcConfig::lte(),
            ul_base: LatencyDist::normal(6.0, 2.0, 2.0, 15.0),
            dl_base: LatencyDist::normal(6.0, 2.0, 2.0, 15.0),
            gateway_ip,
            icmp_ttl_exceeded: true,
        }
    }

    /// UMTS/3G defaults: ~25 ms base each way.
    pub fn umts(gateway_ip: Ip) -> CellConfig {
        CellConfig {
            rrc: RrcConfig::umts(),
            ul_base: LatencyDist::normal(25.0, 6.0, 10.0, 50.0),
            dl_base: LatencyDist::normal(25.0, 6.0, 10.0, 50.0),
            gateway_ip,
            icmp_ttl_exceeded: true,
        }
    }
}

/// Counters for the cellular node.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellStats {
    /// Uplink packets carried.
    pub uplink: u64,
    /// Downlink packets carried.
    pub downlink: u64,
    /// Packets dropped at the gateway (TTL).
    pub dropped_ttl: u64,
    /// Packets lost to the injected bearer fault process.
    pub dropped_fault: u64,
    /// ICMP errors generated.
    pub icmp_generated: u64,
}

/// The cellular NIC / first-hop node.
pub struct CellNode {
    cfg: CellConfig,
    host: NodeId,
    wired: NodeId,
    /// The RRC machine (public for state inspection in experiments).
    pub rrc: Rrc,
    rng: DetRng,
    ids: PacketIdGen,
    /// Injected radio-bearer faults (fading, handover loss), if any.
    fault: Option<FaultState>,
    /// Public counters.
    pub stats: CellStats,
}

impl CellNode {
    /// Create a cellular hop between `host` (the phone) and `wired` (the
    /// core-network next hop). `source` seeds the packet-id space and
    /// `rng` gives the node its own deterministic stream.
    pub fn new(source: u32, cfg: CellConfig, host: NodeId, wired: NodeId, rng: DetRng) -> CellNode {
        let rrc = Rrc::new(cfg.rrc.clone());
        CellNode {
            cfg,
            host,
            wired,
            rrc,
            rng,
            ids: PacketIdGen::new(source),
            fault: None,
            stats: CellStats::default(),
        }
    }

    /// Re-point the host (wiring-order helper).
    pub fn set_host(&mut self, host: NodeId) {
        self.host = host;
    }

    /// Install a fault plan on the radio bearer (replacing any previous
    /// one) — same contract as [`netem::LinkNode::set_fault_plan`]: the
    /// plan's own seed drives verdicts, independent of the engine RNG.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault = plan.is_active().then(|| FaultState::new(plan));
    }

    /// Register the bearer fault counters as `fault.<label>.*` in `reg`.
    /// Call after [`CellNode::set_fault_plan`].
    pub fn attach_fault_metrics(&mut self, reg: &obs::Registry, label: &str) {
        if let Some(fault) = &mut self.fault {
            fault.attach_metrics(reg, label);
        }
    }

    /// Bearer fault counters, if a plan is installed.
    pub fn fault_stats(&self) -> Option<netem::FaultStats> {
        self.fault.as_ref().map(|f| f.stats)
    }

    /// Run a packet through the bearer fault process (direction 0 =
    /// uplink, 1 = downlink). Returns `None` when the packet is lost.
    /// The RRC accounting has already happened by the time this is
    /// called: a lost uplink still promoted the radio (the RACH/grant
    /// exchange is what wakes it, not the payload's safe arrival), which
    /// is exactly why a retry after re-warming rides a connected bearer.
    fn apply_fault(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        dir: usize,
        packet_id: u64,
    ) -> Option<(u8, SimDuration)> {
        let verdict = match &mut self.fault {
            Some(fault) => fault.decide(dir, ctx.now()),
            None => FaultVerdict::Deliver {
                copies: 1,
                extra_delay: SimDuration::ZERO,
            },
        };
        match verdict {
            FaultVerdict::Drop(reason) => {
                self.stats.dropped_fault += 1;
                trace_drop(ctx, packet_id, "bearer", reason);
                None
            }
            FaultVerdict::Deliver {
                copies,
                extra_delay,
            } => Some((copies, extra_delay)),
        }
    }

    fn uplink(&mut self, ctx: &mut Ctx<'_, Msg>, mut packet: Packet) {
        // The packet crosses the radio bearer first (paying any RRC
        // promotion — this is precisely why TTL-1 keep-awake traffic
        // still warms the radio), and only then reaches the gateway,
        // where TTL is decremented.
        let now = ctx.now();
        let wake = self.rrc.uplink(now, &mut self.rng);
        let base = self.cfg.ul_base.sample(&mut self.rng);
        let Some((copies, extra_delay)) = self.apply_fault(ctx, 0, packet.id) else {
            return;
        };
        self.stats.uplink += 1;
        packet.ttl = packet.ttl.saturating_sub(1);
        if packet.ttl == 0 {
            self.stats.dropped_ttl += 1;
            if self.cfg.icmp_ttl_exceeded {
                let icmp = Packet {
                    id: self.ids.next_id(),
                    src: self.cfg.gateway_ip,
                    dst: packet.src,
                    ttl: 64,
                    l4: L4::Icmp {
                        kind: IcmpKind::TimeExceeded,
                        ident: 0,
                        seq: 0,
                    },
                    payload_len: 28,
                    tag: PacketTag::Other,
                };
                self.stats.icmp_generated += 1;
                // The error comes back down the bearer after the uplink
                // has completed (the radio is awake by then).
                let dl_base = self.cfg.dl_base.sample(&mut self.rng);
                ctx.send(
                    self.host,
                    wake + base + extra_delay + dl_base,
                    Msg::Wire(icmp),
                );
            }
            return;
        }
        for i in 0..copies {
            // Duplicates land a hair apart so ordering stays defined.
            let spread = SimDuration::from_micros(u64::from(i));
            ctx.send(
                self.wired,
                wake + base + extra_delay + spread,
                Msg::Wire(packet),
            );
        }
    }

    fn downlink(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet) {
        let now = ctx.now();
        let wake = self.rrc.downlink(now, &mut self.rng);
        let base = self.cfg.dl_base.sample(&mut self.rng);
        let Some((copies, extra_delay)) = self.apply_fault(ctx, 1, packet.id) else {
            return;
        };
        self.stats.downlink += 1;
        for i in 0..copies {
            let spread = SimDuration::from_micros(u64::from(i));
            ctx.send(
                self.host,
                wake + base + extra_delay + spread,
                Msg::Wire(packet),
            );
        }
    }
}

impl Node<Msg> for CellNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        let Msg::Wire(packet) = msg else {
            debug_assert!(false, "cell node got non-wire message");
            return;
        };
        if from == self.host {
            self.uplink(ctx, packet);
        } else {
            let mut packet = packet;
            packet.ttl = packet.ttl.saturating_sub(1);
            if packet.ttl == 0 {
                self.stats.dropped_ttl += 1;
                return;
            }
            self.downlink(ctx, packet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Sim, SimDuration, SimTime};

    struct Sink {
        got: Vec<(SimTime, Packet)>,
    }
    impl Node<Msg> for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Wire(p) = msg {
                self.got.push((ctx.now(), p));
            }
        }
    }

    const PHONE: Ip = Ip::new(10, 100, 0, 2);
    const SERVER: Ip = Ip::new(10, 0, 0, 1);

    fn pkt(id: u64, src: Ip, dst: Ip, ttl: u8) -> Packet {
        Packet {
            id,
            src,
            dst,
            ttl,
            l4: L4::Udp {
                src_port: 1,
                dst_port: 2,
            },
            payload_len: 32,
            tag: PacketTag::Other,
        }
    }

    fn world() -> (Sim<Msg>, NodeId, NodeId, NodeId) {
        let mut sim = Sim::new(9);
        let host = sim.add_node(Box::new(Sink { got: vec![] }));
        let wired = sim.add_node(Box::new(Sink { got: vec![] }));
        let rng = sim.fork_rng(1);
        let cell = sim.add_node(Box::new(CellNode::new(
            200,
            CellConfig::lte(Ip::new(10, 100, 0, 1)),
            host,
            wired,
            rng,
        )));
        (sim, cell, host, wired)
    }

    #[test]
    fn cold_uplink_pays_promotion() {
        let (mut sim, cell, host, wired) = world();
        sim.inject(
            host,
            cell,
            SimTime::ZERO,
            Msg::Wire(pkt(1, PHONE, SERVER, 64)),
        );
        sim.run_until_idle(100);
        let got = &sim.node::<Sink>(wired).got;
        assert_eq!(got.len(), 1);
        // Idle promotion ≥ 60 ms + base.
        assert!(got[0].0 > SimTime::from_millis(60), "{:?}", got[0].0);
        assert_eq!(got[0].1.ttl, 63);
        assert_eq!(sim.node::<CellNode>(cell).rrc.stats.ul_wakes, 1);
    }

    #[test]
    fn warm_uplink_is_fast() {
        let (mut sim, cell, host, wired) = world();
        sim.inject(
            host,
            cell,
            SimTime::ZERO,
            Msg::Wire(pkt(1, PHONE, SERVER, 64)),
        );
        sim.run_until_idle(100);
        let t1 = sim.node::<Sink>(wired).got[0].0;
        // Second packet 20 ms after the first completes: connected.
        sim.inject(
            host,
            cell,
            t1 + SimDuration::from_millis(20),
            Msg::Wire(pkt(2, PHONE, SERVER, 64)),
        );
        sim.run_until_idle(100);
        let got = &sim.node::<Sink>(wired).got;
        let dt = got[1].0.saturating_since(t1 + SimDuration::from_millis(20));
        assert!(dt < SimDuration::from_millis(16), "{dt}");
    }

    #[test]
    fn cold_downlink_pays_paging() {
        let (mut sim, cell, host, wired) = world();
        sim.inject(
            wired,
            cell,
            SimTime::ZERO,
            Msg::Wire(pkt(1, SERVER, PHONE, 64)),
        );
        sim.run_until_idle(100);
        let got = &sim.node::<Sink>(host).got;
        assert_eq!(got.len(), 1);
        assert!(got[0].0 > SimTime::from_millis(80), "{:?}", got[0].0);
        assert_eq!(sim.node::<CellNode>(cell).rrc.stats.dl_wakes, 1);
    }

    #[test]
    fn ttl1_dies_at_gateway_with_icmp() {
        let (mut sim, cell, host, wired) = world();
        sim.inject(
            host,
            cell,
            SimTime::ZERO,
            Msg::Wire(pkt(1, PHONE, SERVER, 1)),
        );
        sim.run_until_idle(100);
        assert!(sim.node::<Sink>(wired).got.is_empty());
        let st = sim.node::<CellNode>(cell).stats;
        assert_eq!(st.dropped_ttl, 1);
        assert_eq!(st.icmp_generated, 1);
        // The ICMP error came back to the phone.
        let back = &sim.node::<Sink>(host).got;
        assert_eq!(back.len(), 1);
        assert!(matches!(
            back[0].1.l4,
            L4::Icmp {
                kind: IcmpKind::TimeExceeded,
                ..
            }
        ));
    }

    #[test]
    fn keepalive_keeps_rtt_low() {
        // Simulate AcuteMon-style keep-alive: uplink every 80 ms; then a
        // "probe" downlink arrives and must not pay paging.
        let (mut sim, cell, host, _wired) = world();
        for i in 0..50u64 {
            sim.inject(
                host,
                cell,
                SimTime::from_millis(i * 80),
                Msg::Wire(pkt(i, PHONE, SERVER, 2)),
            );
        }
        let t_probe = SimTime::from_millis(50 * 80 - 40);
        sim.inject(
            wired_id(&sim),
            cell,
            t_probe,
            Msg::Wire(pkt(999, SERVER, PHONE, 64)),
        );
        sim.run_until_idle(1000);
        let host_got = &sim.node::<Sink>(host).got;
        let probe = host_got
            .iter()
            .find(|(_, p)| p.id == 999)
            .expect("probe delivered");
        let dt = probe.0.saturating_since(t_probe);
        assert!(dt < SimDuration::from_millis(16), "{dt}");
    }

    fn wired_id(_sim: &Sim<Msg>) -> NodeId {
        NodeId::from_index(1)
    }
}
