//! # cellular — the RRC substrate
//!
//! The paper's §4 extension target: "Although AcuteMon is designed mainly
//! for WiFi networks, it can be easily extended to cellular environment,
//! mitigating the effect of RRC (Radio Resource Control) state
//! transition." This crate builds that environment:
//!
//! * [`Rrc`]: a tier-based inactivity state machine covering LTE
//!   (connected → short DRX → long DRX → idle) and UMTS (DCH → FACH →
//!   IDLE) with per-tier promotion/paging costs;
//! * [`CellNode`]: the radio-bearer hop between a phone and the wired
//!   core, which is also the first-hop gateway (TTL handling) so
//!   AcuteMon's TTL-1 keep-awake traffic behaves exactly as on WiFi.
//!
//! The `testbed` crate's `ablate_cellular` experiment and the
//! `cellular_rrc` example show AcuteMon's warm-up/background scheme
//! removing RRC promotions from sparse measurements.

#![warn(missing_docs)]

mod cell;
mod rrc;

pub use cell::{CellConfig, CellNode, CellStats};
pub use rrc::{acutemon_rewarm_dpre, Rrc, RrcConfig, RrcStats, RrcTier};
