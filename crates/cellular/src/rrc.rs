//! The RRC (Radio Resource Control) state machine.
//!
//! The paper notes (§4) that AcuteMon "can be easily extended to cellular
//! environment, mitigating the effect of RRC state transition". This
//! module provides that substrate: a tier-based inactivity model that
//! covers both LTE (connected → short DRX → long DRX → idle) and
//! UMTS/3G (DCH → FACH → IDLE) with per-tier wake costs.
//!
//! A tier is entered after `after` of inactivity. Sending uplink from a
//! tier pays its `ul_wake` (the promotion delay); a downlink packet
//! arriving while in a tier pays `dl_wake` (DRX cycle alignment, or the
//! paging procedure from idle). Like the SDIO bus model, evaluation is
//! lazy — the state is a pure function of the time since last activity —
//! and a wake in progress future-dates the activity clock.

use simcore::{DetRng, LatencyDist, SimDuration, SimTime};

/// One RRC tier.
#[derive(Debug, Clone)]
pub struct RrcTier {
    /// Human-readable name ("DCH", "short DRX", "idle", ...).
    pub name: &'static str,
    /// Inactivity after which this tier is entered.
    pub after: SimDuration,
    /// Uplink wake cost when transmitting from this tier, ms.
    pub ul_wake: LatencyDist,
    /// Downlink wake cost when a packet arrives in this tier, ms.
    pub dl_wake: LatencyDist,
}

/// RRC configuration: tiers ordered by increasing `after`; tier 0 must be
/// the fully-active state with `after == 0`.
#[derive(Debug, Clone)]
pub struct RrcConfig {
    /// The tiers.
    pub tiers: Vec<RrcTier>,
}

impl RrcConfig {
    /// LTE-flavoured defaults: connected → short DRX (100 ms, ~8 ms DL
    /// cost) → long DRX (1.28 s, ~25 ms) → idle (10 s; ~110 ms uplink
    /// promotion, paging-scale downlink cost).
    pub fn lte() -> RrcConfig {
        RrcConfig {
            tiers: vec![
                RrcTier {
                    name: "connected",
                    after: SimDuration::ZERO,
                    ul_wake: LatencyDist::fixed(0.0),
                    dl_wake: LatencyDist::fixed(0.0),
                },
                RrcTier {
                    name: "short-drx",
                    after: SimDuration::from_millis(100),
                    ul_wake: LatencyDist::normal(1.0, 0.4, 0.2, 3.0),
                    dl_wake: LatencyDist::normal(8.0, 3.0, 1.0, 20.0),
                },
                RrcTier {
                    name: "long-drx",
                    after: SimDuration::from_millis(1280),
                    ul_wake: LatencyDist::normal(5.0, 2.0, 1.0, 15.0),
                    dl_wake: LatencyDist::normal(25.0, 8.0, 5.0, 60.0),
                },
                RrcTier {
                    name: "idle",
                    after: SimDuration::from_secs(10),
                    ul_wake: LatencyDist::normal(110.0, 20.0, 60.0, 200.0),
                    dl_wake: LatencyDist::normal(450.0, 150.0, 80.0, 900.0),
                },
            ],
        }
    }

    /// UMTS/3G-flavoured defaults: DCH → FACH (5 s; promotion back to DCH
    /// costs hundreds of ms) → IDLE (17 s; seconds-scale promotions).
    pub fn umts() -> RrcConfig {
        RrcConfig {
            tiers: vec![
                RrcTier {
                    name: "DCH",
                    after: SimDuration::ZERO,
                    ul_wake: LatencyDist::fixed(0.0),
                    dl_wake: LatencyDist::fixed(0.0),
                },
                RrcTier {
                    name: "FACH",
                    after: SimDuration::from_secs(5),
                    ul_wake: LatencyDist::normal(350.0, 80.0, 150.0, 700.0),
                    dl_wake: LatencyDist::normal(400.0, 100.0, 150.0, 800.0),
                },
                RrcTier {
                    name: "IDLE",
                    after: SimDuration::from_secs(17),
                    ul_wake: LatencyDist::normal(1600.0, 300.0, 800.0, 2500.0),
                    dl_wake: LatencyDist::normal(1900.0, 400.0, 900.0, 3000.0),
                },
            ],
        }
    }

    /// Worst-case uplink promotion delay across every tier — the time a
    /// transmission can stall behind an RRC promotion when the radio has
    /// gone fully idle.
    pub fn max_promotion_delay(&self) -> SimDuration {
        self.tiers
            .iter()
            .map(|t| SimDuration::from_ms_f64(t.ul_wake.max_ms))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    fn validate(&self) {
        assert!(!self.tiers.is_empty(), "RRC needs at least one tier");
        assert_eq!(
            self.tiers[0].after,
            SimDuration::ZERO,
            "tier 0 must be the active state"
        );
        for w in self.tiers.windows(2) {
            assert!(w[0].after < w[1].after, "tiers must be ordered by `after`");
        }
    }
}

/// The warm-up lead time (`dpre`) an AcuteMon session should use when
/// re-warming this bearer after a retry.
///
/// On WiFi the paper's rule is `Tprom < dpre < min(Tis, Tip)` with
/// `Tprom` a few ms. On cellular the analogous bound is the *RRC
/// promotion delay*: by the time a probe has timed out and its backoff
/// elapsed, the bearer may have demoted all the way to idle, so the
/// fresh warm-up packet needs the full worst-case promotion (plus a
/// small scheduling margin) before the resend leaves — otherwise the
/// retried probe pays the promotion itself and measures bearer wake-up,
/// not the network.
pub fn acutemon_rewarm_dpre(cfg: &RrcConfig) -> SimDuration {
    cfg.max_promotion_delay() + SimDuration::from_millis(10)
}

/// Counters for the RRC machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct RrcStats {
    /// Uplink operations that paid a non-zero wake.
    pub ul_wakes: u64,
    /// Downlink operations that paid a non-zero wake.
    pub dl_wakes: u64,
    /// Operations served in the fully-active tier.
    pub active_ops: u64,
}

/// The RRC state machine.
#[derive(Debug, Clone)]
pub struct Rrc {
    cfg: RrcConfig,
    last_activity: SimTime,
    ever_active: bool,
    /// Public counters.
    pub stats: RrcStats,
}

impl Rrc {
    /// Create a machine; the radio starts idle (deepest tier).
    pub fn new(cfg: RrcConfig) -> Rrc {
        cfg.validate();
        Rrc {
            cfg,
            last_activity: SimTime::ZERO,
            ever_active: false,
            stats: RrcStats::default(),
        }
    }

    /// Index of the tier occupied at `now`.
    pub fn tier_index(&self, now: SimTime) -> usize {
        if !self.ever_active {
            return self.cfg.tiers.len() - 1;
        }
        let idle = now.saturating_since(self.last_activity);
        let mut idx = 0;
        for (i, t) in self.cfg.tiers.iter().enumerate() {
            if idle >= t.after {
                idx = i;
            }
        }
        idx
    }

    /// Name of the tier occupied at `now`.
    pub fn tier_name(&self, now: SimTime) -> &'static str {
        self.cfg.tiers[self.tier_index(now)].name
    }

    /// Cost of an uplink transmission at `now`; records the activity
    /// (completing at `now + cost`).
    pub fn uplink(&mut self, now: SimTime, rng: &mut DetRng) -> SimDuration {
        let tier = self.tier_index(now);
        let cost = self.cfg.tiers[tier].ul_wake.sample(rng);
        self.note(now, now + cost, tier, true);
        cost
    }

    /// Cost of delivering a downlink packet arriving at `now`; records
    /// the activity.
    pub fn downlink(&mut self, now: SimTime, rng: &mut DetRng) -> SimDuration {
        let tier = self.tier_index(now);
        let cost = self.cfg.tiers[tier].dl_wake.sample(rng);
        self.note(now, now + cost, tier, false);
        cost
    }

    fn note(&mut self, _now: SimTime, ready_at: SimTime, tier: usize, ul: bool) {
        if tier == 0 {
            self.stats.active_ops += 1;
        } else if ul {
            self.stats.ul_wakes += 1;
        } else {
            self.stats.dl_wakes += 1;
        }
        self.ever_active = true;
        self.last_activity = self.last_activity.max(ready_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn starts_in_deepest_tier() {
        let rrc = Rrc::new(RrcConfig::lte());
        assert_eq!(rrc.tier_name(SimTime::ZERO), "idle");
        assert_eq!(rrc.tier_name(t(100_000)), "idle");
    }

    #[test]
    fn tiers_by_idle_time() {
        let mut rrc = Rrc::new(RrcConfig::lte());
        let mut rng = DetRng::new(1);
        rrc.uplink(t(0), &mut rng); // wake; activity ends ~t(0)+promotion
        let base = rrc.last_activity;
        assert_eq!(
            rrc.tier_name(base + SimDuration::from_millis(50)),
            "connected"
        );
        assert_eq!(
            rrc.tier_name(base + SimDuration::from_millis(200)),
            "short-drx"
        );
        assert_eq!(
            rrc.tier_name(base + SimDuration::from_millis(2000)),
            "long-drx"
        );
        assert_eq!(rrc.tier_name(base + SimDuration::from_secs(11)), "idle");
    }

    #[test]
    fn idle_uplink_pays_promotion() {
        let mut rrc = Rrc::new(RrcConfig::lte());
        let mut rng = DetRng::new(2);
        let cost = rrc.uplink(t(0), &mut rng);
        assert!(cost >= SimDuration::from_millis(60), "{cost}");
        assert_eq!(rrc.stats.ul_wakes, 1);
        // Immediately after, the radio is connected: next uplink is free.
        let now = rrc.last_activity;
        let cost2 = rrc.uplink(now, &mut rng);
        assert_eq!(cost2, SimDuration::ZERO);
        assert_eq!(rrc.stats.active_ops, 1);
    }

    #[test]
    fn idle_downlink_pays_paging() {
        let mut rrc = Rrc::new(RrcConfig::lte());
        let mut rng = DetRng::new(3);
        let cost = rrc.downlink(t(0), &mut rng);
        assert!(cost >= SimDuration::from_millis(80), "{cost}");
        assert_eq!(rrc.stats.dl_wakes, 1);
    }

    #[test]
    fn keepalive_prevents_demotion() {
        let mut rrc = Rrc::new(RrcConfig::lte());
        let mut rng = DetRng::new(4);
        rrc.uplink(t(0), &mut rng);
        let mut now = rrc.last_activity;
        // Touch every 80 ms (< 100 ms short-DRX threshold) for 5 s.
        for _ in 0..60 {
            now += SimDuration::from_millis(80);
            let cost = rrc.uplink(now, &mut rng);
            assert_eq!(cost, SimDuration::ZERO, "demoted during keepalive");
        }
    }

    #[test]
    fn umts_is_slower_than_lte() {
        let mut lte = Rrc::new(RrcConfig::lte());
        let mut umts = Rrc::new(RrcConfig::umts());
        let mut rng1 = DetRng::new(5);
        let mut rng2 = DetRng::new(5);
        let c_lte = lte.uplink(t(0), &mut rng1);
        let c_umts = umts.uplink(t(0), &mut rng2);
        assert!(c_umts > c_lte * 3, "umts {c_umts} vs lte {c_lte}");
    }

    #[test]
    fn rewarm_dpre_clears_worst_case_promotion() {
        // The derived re-warm lead must cover the deepest tier's
        // worst-case uplink promotion on both presets.
        for cfg in [RrcConfig::lte(), RrcConfig::umts()] {
            let dpre = acutemon_rewarm_dpre(&cfg);
            assert!(dpre > cfg.max_promotion_delay());
            let mut rrc = Rrc::new(cfg);
            let mut rng = DetRng::new(7);
            // From cold idle, every sampled promotion fits inside dpre.
            for salt in 0..20u64 {
                let mut r = DetRng::new(salt);
                let mut cold = rrc.clone();
                let cost = cold.uplink(t(0), &mut r);
                assert!(cost < dpre, "promotion {cost} vs dpre {dpre}");
            }
            let _ = rrc.uplink(t(0), &mut rng);
        }
        // LTE promotes in ≤200 ms; UMTS needs seconds — the leads differ.
        assert!(
            acutemon_rewarm_dpre(&RrcConfig::umts()) > acutemon_rewarm_dpre(&RrcConfig::lte()) * 4
        );
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn misordered_tiers_rejected() {
        let mut cfg = RrcConfig::lte();
        cfg.tiers.swap(1, 2);
        let _ = Rrc::new(cfg);
    }

    #[test]
    #[should_panic(expected = "active state")]
    fn missing_active_tier_rejected() {
        let mut cfg = RrcConfig::lte();
        cfg.tiers.remove(0);
        let _ = Rrc::new(cfg);
    }
}
