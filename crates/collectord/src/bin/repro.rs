//! `repro` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! repro [--k N] [--seed S] [--out DIR] [--metrics-json] [--metrics-text]
//!       [--trace-out FILE] [--trace-spans FILE] [-v] [--quiet]
//!       [--fleet-devices N] [--fleet-workers W]
//!       [--queue heap|wheel|boxed] [--cross-per-packet] [--multiplex M]
//!       [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]
//!       [--partition i/k] [--fleet-halt-after N]
//!       [--push-to ADDR] [--push-every N]
//!       [--listen ADDR] [--http ADDR] [--state-dir DIR]
//!       [--chaos-seed S] [--chaos-kills N]
//!       [--bench-baseline FILE] [--bench-candidate FILE] [--bench-factor F]
//!       [table1|table2|table3|table4|table5|fig3|fig7|fig8|fig9|
//!        seeds|ablations|faults|telemetry|waterfall|fleet|
//!        fleet-merge|collectord|chaos|profile|bench-snapshot|bench-gate|all]...
//! ```
//!
//! Each experiment prints its table/figure to stdout and writes the raw
//! result as JSON under `--out` (default `results/`). The `telemetry`
//! experiment runs instrumented sessions and emits the workspace metrics
//! snapshot (SDIO wake-latency, PSM beacon-buffering, per-layer
//! counters); `--metrics-json` / `--metrics-text` choose the format
//! (default: Prometheus-style text). The `waterfall` experiment runs a
//! traced session and renders per-probe span waterfalls; `--trace-out`
//! additionally writes the spans as Chrome `trace_event` JSON (loadable
//! in `chrome://tracing` / Perfetto) and `--trace-spans` as JSON-lines.
//! `bench-snapshot` (not part of `all`) runs the am-bench harness at a
//! reduced budget and writes `BENCH_2.json` with median ns per scenario;
//! `bench-gate` compares a fresh snapshot against the committed baseline
//! and exits non-zero when the tracer's enabled-path budget regresses.
//! `fleet` (not part of `all` either — it is deliberately big) runs a
//! sharded multi-device campaign (default 10 000 devices) plus a
//! worker-scaling table, and writes the merged population report as
//! `fleet.json`. Campaigns survive process death, split across
//! processes, and stream to a collector daemon:
//!
//! * `--checkpoint FILE` writes an atomic resume checkpoint every
//!   `--checkpoint-every` devices (default 64); `--resume FILE`
//!   restarts a killed campaign from it and yields `fleet.json`
//!   byte-identical to an uninterrupted run.
//! * `--partition i/k` runs only the contiguous device slice `i` of
//!   `k`, writing the mergeable partial `fleet.partial-i-of-k.json`;
//!   `repro fleet-merge a.json b.json ...` (with the same `--seed` /
//!   `--fleet-devices`) folds the partials into `fleet.json`, again
//!   byte-identical to the single-process report.
//! * `--fleet-halt-after N` simulates a kill after absorbing N devices
//!   (used by CI to exercise the resume path deterministically).
//! * `--push-to ADDR` additionally streams cumulative partial state to
//!   a `repro collectord` daemon every `--push-every` devices (default
//!   64), with a final push when the slice completes. The daemon's
//!   `/snapshot` is then byte-identical to `fleet.json` once every
//!   partition has landed.
//!
//! `repro collectord --seed S --fleet-devices N` runs the collector
//! daemon itself: a push listener on `--listen` (default
//! `127.0.0.1:9310`) and an HTTP server on `--http` (default
//! `127.0.0.1:9311`) serving `/` (dashboard), `/snapshot`, `/status`,
//! `/metrics`, and `/healthz`. With `--state-dir DIR` the daemon is
//! crash-safe: every accepted push is journaled to `DIR` *before* it
//! is acked, SIGTERM/SIGINT flush a final `snapshot.json`, and a
//! restarted daemon recovers the full ingest state — `/snapshot` after
//! recovery is byte-identical to a never-killed run. `repro chaos`
//! soak-tests exactly that: a 2-partition campaign pushes through
//! seeded wire faults ([`wire::chaos`]) into a `--state-dir` daemon
//! that is SIGKILLed and restarted `--chaos-kills` times mid-campaign,
//! and the run fails unless the recovered `/snapshot` matches the
//! single-process `fleet.json` byte for byte.

use std::path::{Path, PathBuf};

use obs::{error, info, warn, Registry, ToJson, Tracer};

// Count allocations into the profiler's thread-local counters so
// `repro profile` attributes heap traffic per phase. Pure counting on
// top of the system allocator; without it the allocation columns read
// zero but everything else works.
#[global_allocator]
static ALLOC: obs::prof::CountingAlloc = obs::prof::CountingAlloc;
use testbed::experiments::{
    ablations, faults, fig7, fig8, fig9, ping_matrix, seeds, table1, table3, table4, table5,
    telemetry, waterfall,
};

struct Options {
    k: u32,
    seed: u64,
    out: PathBuf,
    metrics_json: bool,
    metrics_text: bool,
    trace_out: Option<PathBuf>,
    trace_spans: Option<PathBuf>,
    fleet_devices: u64,
    fleet_workers: Option<usize>,
    queue: simcore::QueueKind,
    cross_per_packet: bool,
    multiplex: Option<u64>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u64,
    resume: Option<PathBuf>,
    partition: Option<(u64, u64)>,
    fleet_halt_after: Option<u64>,
    push_to: Option<String>,
    push_every: u64,
    listen: String,
    http: String,
    state_dir: Option<PathBuf>,
    chaos_seed: u64,
    chaos_kills: u32,
    bench_baseline: PathBuf,
    bench_candidate: Option<PathBuf>,
    bench_factor: f64,
    merge_inputs: Vec<PathBuf>,
    experiments: Vec<String>,
}

/// Parse `i/k` with `0 <= i < k`.
fn parse_partition(s: &str) -> Option<(u64, u64)> {
    let (i, k) = s.split_once('/')?;
    let (i, k) = (i.parse().ok()?, k.parse().ok()?);
    if k == 0 || i >= k {
        return None;
    }
    Some((i, k))
}

fn parse_args() -> Options {
    let mut opts = Options {
        k: 100,
        seed: 2016,
        out: PathBuf::from("results"),
        metrics_json: false,
        metrics_text: false,
        trace_out: None,
        trace_spans: None,
        fleet_devices: 10_000,
        fleet_workers: None,
        queue: simcore::QueueKind::default(),
        cross_per_packet: false,
        multiplex: None,
        checkpoint: None,
        checkpoint_every: 64,
        resume: None,
        partition: None,
        fleet_halt_after: None,
        push_to: None,
        push_every: 64,
        listen: "127.0.0.1:9310".to_string(),
        http: "127.0.0.1:9311".to_string(),
        state_dir: None,
        chaos_seed: 7,
        chaos_kills: 2,
        bench_baseline: PathBuf::from("baselines/BENCH_2.json"),
        bench_candidate: None,
        bench_factor: 10.0,
        merge_inputs: Vec::new(),
        experiments: Vec::new(),
    };
    let mut quiet = false;
    let mut verbosity = 0u8;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--k" => {
                opts.k = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--k needs a number"))
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"))
            }
            "--out" => {
                opts.out = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a path"))
            }
            "--fleet-devices" => {
                opts.fleet_devices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--fleet-devices needs a number"))
            }
            "--fleet-workers" => {
                opts.fleet_workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--fleet-workers needs a number")),
                )
            }
            "--queue" => {
                opts.queue = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queue needs 'heap', 'wheel', or 'boxed'"))
            }
            "--cross-per-packet" => opts.cross_per_packet = true,
            "--multiplex" => {
                opts.multiplex = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--multiplex needs a positive device count")),
                )
            }
            "--checkpoint" => {
                opts.checkpoint = Some(
                    args.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--checkpoint needs a path")),
                )
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--checkpoint-every needs a positive number"))
            }
            "--resume" => {
                opts.resume = Some(
                    args.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--resume needs a path")),
                )
            }
            "--partition" => {
                opts.partition = Some(
                    args.next()
                        .as_deref()
                        .and_then(parse_partition)
                        .unwrap_or_else(|| die("--partition needs i/k with i < k")),
                )
            }
            "--fleet-halt-after" => {
                opts.fleet_halt_after = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--fleet-halt-after needs a number")),
                )
            }
            "--push-to" => {
                opts.push_to = Some(
                    args.next()
                        .unwrap_or_else(|| die("--push-to needs host:port")),
                )
            }
            "--push-every" => {
                opts.push_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--push-every needs a positive number"))
            }
            "--listen" => {
                opts.listen = args
                    .next()
                    .unwrap_or_else(|| die("--listen needs host:port"))
            }
            "--http" => opts.http = args.next().unwrap_or_else(|| die("--http needs host:port")),
            "--state-dir" => {
                opts.state_dir = Some(
                    args.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--state-dir needs a path")),
                )
            }
            "--chaos-seed" => {
                opts.chaos_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--chaos-seed needs a number"))
            }
            "--chaos-kills" => {
                opts.chaos_kills = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--chaos-kills needs a number"))
            }
            "--bench-baseline" => {
                opts.bench_baseline = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--bench-baseline needs a path"))
            }
            "--bench-candidate" => {
                opts.bench_candidate = Some(
                    args.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--bench-candidate needs a path")),
                )
            }
            "--bench-factor" => {
                opts.bench_factor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f > 1.0)
                    .unwrap_or_else(|| die("--bench-factor needs a factor > 1"))
            }
            "--metrics-json" => opts.metrics_json = true,
            "--metrics-text" => opts.metrics_text = true,
            "--trace-out" => {
                opts.trace_out = Some(
                    args.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--trace-out needs a path")),
                )
            }
            "--trace-spans" => {
                opts.trace_spans = Some(
                    args.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--trace-spans needs a path")),
                )
            }
            "--quiet" | "-q" => quiet = true,
            "-v" | "--verbose" => verbosity += 1,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--k N] [--seed S] [--out DIR] \
                     [--metrics-json] [--metrics-text] \
                     [--trace-out FILE] [--trace-spans FILE] [-v] [--quiet] \
                     [--fleet-devices N] [--fleet-workers W] \
                     [--queue heap|wheel|boxed] [--cross-per-packet] \
                     [--multiplex M] \
                     [--checkpoint FILE] [--checkpoint-every N] \
                     [--resume FILE] [--partition i/k] [--fleet-halt-after N] \
                     [--push-to ADDR] [--push-every N] \
                     [--listen ADDR] [--http ADDR] [--state-dir DIR] \
                     [--chaos-seed S] [--chaos-kills N] \
                     [--bench-baseline FILE] [--bench-candidate FILE] \
                     [--bench-factor F] \
                     [table1|table2|table3|table4|table5|fig3|fig7|fig8|fig9|\
                     seeds|ablations|faults|telemetry|waterfall|fleet|\
                     fleet-merge|collectord|chaos|profile|bench-snapshot|\
                     bench-gate|all]...\n\
                     \n\
                     --trace-out FILE    write the waterfall session's spans as\n\
                     \u{20}                    Chrome trace_event JSON (chrome://tracing)\n\
                     --trace-spans FILE  write the same spans as JSON-lines\n\
                     --fleet-devices N   fleet campaign population (default 10000)\n\
                     --fleet-workers W   worker threads (default: CPU count)\n\
                     --queue heap|wheel|boxed  event-queue backend for fleet and\n\
                     \u{20}                    profile runs (default wheel; 'boxed' is\n\
                     \u{20}                    the pre-arena per-event-allocation oracle;\n\
                     \u{20}                    all backends produce byte-identical\n\
                     \u{20}                    campaign JSON)\n\
                     --cross-per-packet  drive cross-traffic blasters with one\n\
                     \u{20}                    timer dispatch per packet (the reference\n\
                     \u{20}                    oracle) instead of the default batched\n\
                     \u{20}                    fast path; campaign JSON is identical\n\
                     --multiplex M       interleave M devices per worker claim\n\
                     \u{20}                    by next-event time (default: one\n\
                     \u{20}                    device at a time; JSON is identical)\n\
                     --checkpoint FILE   write an atomic fleet resume checkpoint\n\
                     \u{20}                    every --checkpoint-every devices (default 64)\n\
                     --resume FILE       resume a killed fleet campaign from its\n\
                     \u{20}                    checkpoint (same --seed/--fleet-devices)\n\
                     --partition i/k     run only device slice i of k; writes the\n\
                     \u{20}                    mergeable fleet.partial-i-of-k.json\n\
                     --fleet-halt-after N  simulate a kill after N absorbed devices\n\
                     --push-to ADDR      stream cumulative partial state to a\n\
                     \u{20}                    collectord daemon every --push-every\n\
                     \u{20}                    devices (default 64)\n\
                     --listen ADDR       collectord push listener (127.0.0.1:9310)\n\
                     --http ADDR         collectord HTTP server (127.0.0.1:9311)\n\
                     --state-dir DIR     collectord: journal accepted pushes to DIR\n\
                     \u{20}                    (persist-before-ack) and recover the full\n\
                     \u{20}                    ingest state from it on restart\n\
                     --chaos-seed S      chaos: fault-injection schedule seed (7)\n\
                     --chaos-kills N     chaos: daemon kill/restart cycles (2)\n\
                     \n\
                     fleet-merge A B ... folds partition partials back into\n\
                     fleet.json (run with the partitions' --seed and\n\
                     --fleet-devices).\n\
                     \n\
                     collectord runs the streaming collector daemon for the\n\
                     campaign given by --seed/--fleet-devices; shards connect\n\
                     with --push-to, and /snapshot serves the live campaign\n\
                     JSON (byte-identical to fleet.json once complete). With\n\
                     --state-dir the daemon is crash-safe: acked pushes are\n\
                     journaled first, SIGTERM/SIGINT flush a final snapshot,\n\
                     and a restart recovers everything.\n\
                     \n\
                     chaos runs the crash-safety soak: a 2-partition campaign\n\
                     pushes (with seeded wire faults severing connections)\n\
                     into a --state-dir daemon that is SIGKILLed and\n\
                     restarted --chaos-kills times mid-run, plus once more\n\
                     after completion; exits non-zero unless the recovered\n\
                     /snapshot is byte-identical to the single-process\n\
                     fleet.json.\n\
                     \n\
                     profile runs a self-profiled fleet campaign\n\
                     (--seed/--fleet-devices/--fleet-workers), prints the\n\
                     per-phase / per-stratum attribution table, writes\n\
                     profile.json, profile.folded (flamegraph folded\n\
                     stacks) and profile_trace.json (chrome://tracing),\n\
                     and fails if less than 95% of the thread-time budget\n\
                     is attributed to named phases.\n\
                     \n\
                     fleet and bench-snapshot run only when named explicitly\n\
                     (not under 'all'); fleet writes fleet.json, bench-snapshot\n\
                     writes BENCH_2.json (median ns per scenario). bench-gate\n\
                     compares --bench-candidate (default: a fresh snapshot)\n\
                     against --bench-baseline and fails when the obs tracer\n\
                     scenarios regress by more than --bench-factor (default 10)."
                );
                std::process::exit(0);
            }
            "fleet-merge" => {
                opts.experiments.push("fleet-merge".to_string());
                // Everything after `fleet-merge` is a partial-report path.
                opts.merge_inputs.extend(args.by_ref().map(PathBuf::from));
            }
            other => opts.experiments.push(other.to_string()),
        }
    }
    obs::log::init_from_flags(quiet, verbosity);
    if opts.experiments.is_empty() {
        opts.experiments.push("all".to_string());
    }
    const KNOWN: [&str; 22] = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig3",
        "fig7",
        "fig8",
        "fig9",
        "seeds",
        "ablations",
        "faults",
        "telemetry",
        "waterfall",
        "fleet",
        "fleet-merge",
        "collectord",
        "chaos",
        "profile",
        "bench-snapshot",
        "bench-gate",
        "all",
    ];
    for e in &opts.experiments {
        if !KNOWN.contains(&e.as_str()) {
            die(&format!("unknown experiment '{e}' (see --help)"));
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    error!("repro: {msg}");
    std::process::exit(2);
}

fn write_json<T: ToJson>(dir: &Path, name: &str, value: &T) {
    write_raw(
        dir,
        &format!("{name}.json"),
        value.to_json().to_string_pretty(),
    );
}

fn write_raw(dir: &Path, file: &str, contents: String) {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(file);
    std::fs::write(&path, contents).expect("write result");
    info!("[saved {}]", path.display());
}

/// Run the collector daemon forever: push listener + HTTP server.
/// With `--state-dir` the daemon journals accepted pushes
/// (persist-before-ack), recovers from the journal on startup, and
/// flushes a final snapshot on SIGTERM/SIGINT.
fn run_collectord(opts: &Options) -> ! {
    let spec = fleet::CampaignSpec::heterogeneous(opts.seed, opts.fleet_devices);
    info!(
        "collectord: expecting campaign seed {} with {} devices × {} probes \
         (fingerprint {:016x})",
        spec.seed,
        spec.devices,
        spec.probes_per_device,
        spec.fingerprint()
    );
    let ingest = std::net::TcpListener::bind(&opts.listen)
        .unwrap_or_else(|e| die(&format!("collectord: bind {}: {e}", opts.listen)));
    let http = std::net::TcpListener::bind(&opts.http)
        .unwrap_or_else(|e| die(&format!("collectord: bind {}: {e}", opts.http)));
    let daemon = match &opts.state_dir {
        Some(dir) => {
            info!("collectord: journaling ingest state to {}", dir.display());
            let store = collectord::Store::open(dir).unwrap_or_else(|e| {
                die(&format!("collectord: --state-dir {}: {e}", dir.display()))
            });
            collectord::Daemon::with_store(spec, store)
                .unwrap_or_else(|e| die(&format!("collectord: journal recovery failed: {e}")))
        }
        None => collectord::Daemon::new(spec),
    };
    // SIGTERM/SIGINT: flush the journal (plus a rendered snapshot.json)
    // and exit cleanly instead of dying mid-write.
    collectord::signals::install();
    let flusher = daemon.clone();
    std::thread::spawn(move || loop {
        if collectord::signals::terminated() {
            info!("collectord: termination signal — flushing journal ...");
            match flusher.flush() {
                Ok(()) => std::process::exit(0),
                Err(e) => {
                    error!("collectord: shutdown flush failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let ingest_daemon = daemon.clone();
    std::thread::spawn(move || ingest_daemon.serve_ingest(ingest));
    daemon.serve_http(http);
    unreachable!("serve_http loops forever");
}

/// Live engine telemetry for a push, from the engine's progress
/// callback metadata.
fn shard_telemetry(progress: &fleet::Progress) -> wire::telemetry::ShardTelemetry {
    wire::telemetry::ShardTelemetry {
        devices_per_sec: progress.devices_per_sec(),
        workers: progress.workers as u64,
        per_worker_devices: progress.per_worker_devices.clone(),
        queue_depth: progress.queue_depth as u64,
        phase_self_ns: progress.phase_self_ns.clone(),
    }
}

/// Run the fleet partition slice `i/k`, optionally streaming cumulative
/// state to a collectord daemon, and write the mergeable partial.
fn run_fleet_partition(opts: &Options, spec: &fleet::CampaignSpec, workers: usize) {
    let (i, k) = opts.partition.unwrap_or((0, 1));
    let (start, end) = fleet::partition_range(spec.devices, i, k);
    info!(
        "running fleet partition {i}/{k}: devices {start}..{end} of {} \
         on {workers} workers ...",
        spec.devices
    );
    let shard = format!("{i}/{k}");
    let client = opts.push_to.as_deref().map(|addr| {
        info!(
            "streaming partial state to collectord at {addr} every {} devices ...",
            opts.push_every
        );
        // Reconnecting client: transient failures (daemon restarting,
        // dropped connections) are retried with seeded backoff; typed
        // daemon rejections fail fast below. Safe because pushes are
        // cumulative and the daemon's ingest is idempotent.
        std::sync::Mutex::new(collectord::ResilientPushClient::new(
            addr,
            &shard,
            collectord::RetryPolicy::new(spec.seed ^ (i << 8) ^ k),
        ))
    });
    let client = std::sync::Arc::new(client);
    let run_opts = fleet::RunOptions {
        progress: opts.push_to.as_ref().map(|_| {
            let client = client.clone();
            fleet::ProgressSink {
                every: opts.push_every,
                f: std::sync::Arc::new(move |collector, progress, done| {
                    // The final push happens explicitly below, off the
                    // returned collector, so failures can be fatal there.
                    if done {
                        return;
                    }
                    if let Some(c) = client.as_ref() {
                        let telemetry = shard_telemetry(progress);
                        match c.lock().unwrap().push_with_telemetry(
                            collector,
                            false,
                            Some(&telemetry),
                        ) {
                            Ok(collectord::Delivery::Delivered(_)) => {}
                            Ok(collectord::Delivery::Dropped { attempts }) => warn!(
                                "fleet: mid-run push dropped after {attempts} attempts \
                                 (degraded mode — campaign continues, next push covers \
                                 the same devices)"
                            ),
                            // A typed, non-retryable daemon rejection:
                            // the push itself is wrong (spec mismatch,
                            // overlap, ...) and every retry would fail
                            // identically. Transient I/O never lands
                            // here — the client retries it internally.
                            Err(e) => die(&format!("fleet: daemon rejected push: {e}")),
                        }
                    }
                }),
            }
        }),
        queue: opts.queue,
        cross_per_packet: opts.cross_per_packet,
        multiplex: opts.multiplex,
        ..fleet::RunOptions::default()
    };
    let (collector, stats) = fleet::run_partition_opts(spec, workers, i, k, &run_opts);
    if let Some(c) = client.as_ref() {
        let mut c = c.lock().unwrap();
        let ack = match c.push(&collector, true) {
            Ok(collectord::Delivery::Delivered(ack)) => ack,
            Ok(collectord::Delivery::Dropped { .. }) => {
                unreachable!("final pushes exhaust their budget as Err, never Dropped")
            }
            Err(e) if !e.is_retryable() => die(&format!(
                "fleet: daemon rejected final push (not retryable): {e}"
            )),
            Err(e) => die(&format!(
                "fleet: final push failed after {} attempts (transient I/O — is the \
                 daemon reachable?): {e}",
                collectord::RetryPolicy::new(0).max_final_attempts
            )),
        };
        let pstats = c.stats();
        println!(
            "partition {i}/{k}: final push {} ({} devices absorbed daemon-side{}); \
             {} pushes delivered, {} dropped, {} reconnects",
            ack.outcome.status(),
            ack.devices_absorbed,
            if ack.complete {
                ", campaign complete"
            } else {
                ""
            },
            pstats.delivered,
            pstats.dropped,
            pstats.reconnects,
        );
    }
    println!(
        "partition {i}/{k}: {} devices in {:.2} s ({:.1} devices/s)",
        stats.devices,
        stats.wall.as_secs_f64(),
        stats.devices_per_sec()
    );
    write_raw(
        &opts.out,
        &format!("fleet.partial-{i}-of-{k}.json"),
        collector.state_json().to_string_pretty(),
    );
}

/// Minimal HTTP GET for the chaos soak: returns the 200 response body,
/// or `None` when the daemon is unreachable (e.g. mid-restart).
fn http_get(addr: &str, path: &str) -> Option<String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect_timeout(
        &addr.parse().ok()?,
        std::time::Duration::from_millis(500),
    )
    .ok()?;
    s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok()?;
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut buf = String::new();
    s.read_to_string(&mut buf).ok()?;
    let (head, body) = buf.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_string())
}

/// The wire-level crash-safety soak: run a 2-partition campaign whose
/// shards push through seeded fault-injecting connections
/// ([`wire::chaos`]) into a `--state-dir` collectord child that is
/// SIGKILLed and restarted `--chaos-kills` times mid-campaign (at
/// deterministic progress thresholds) plus once more after completion,
/// so the final `/snapshot` comes purely from journal recovery. Exits
/// non-zero unless that snapshot is byte-identical to the
/// single-process `fleet.json`.
fn run_chaos(opts: &Options) -> ! {
    let spec = fleet::CampaignSpec::heterogeneous(opts.seed, opts.fleet_devices);
    let workers = opts
        .fleet_workers
        .unwrap_or_else(fleet::available_parallelism);
    let state_dir = opts
        .state_dir
        .clone()
        .unwrap_or_else(|| opts.out.join("chaos-state"));
    let _ = std::fs::remove_dir_all(&state_dir);

    info!(
        "chaos: computing the expected single-process report ({} devices) ...",
        spec.devices
    );
    let (expected_report, _) = fleet::run_campaign(&spec, workers);
    let expected = expected_report.to_json().to_string_pretty();
    write_raw(&opts.out, "fleet.json", expected.clone());

    let exe = std::env::current_exe().expect("current_exe");
    let spawn_daemon = || {
        std::process::Command::new(&exe)
            .args([
                "collectord",
                "--seed",
                &opts.seed.to_string(),
                "--fleet-devices",
                &opts.fleet_devices.to_string(),
                "--listen",
                &opts.listen,
                "--http",
                &opts.http,
                "--state-dir",
                state_dir.to_str().expect("utf-8 state dir"),
                "--quiet",
            ])
            .spawn()
            .unwrap_or_else(|e| die(&format!("chaos: spawning the daemon failed: {e}")))
    };
    let wait_healthy = || {
        for _ in 0..100 {
            if http_get(&opts.http, "/healthz").is_some_and(|b| b.starts_with("ok")) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        die("chaos: daemon did not become healthy within 10 s");
    };
    let mut child = spawn_daemon();
    wait_healthy();
    info!(
        "chaos: daemon up (pid {}); starting 2 shard partitions with seeded wire faults ...",
        child.id()
    );

    // Shard threads: each runs its half of the campaign and pushes
    // cumulative state through a resilient client whose connections are
    // severed by seeded write-side resets — every connection dies after
    // a few KB, so reconnect/resend is exercised constantly, on top of
    // the daemon kills.
    let shards: Vec<_> = (0..2u64)
        .map(|i| {
            let spec = spec.clone();
            let addr = opts.listen.clone();
            let push_every = opts.push_every;
            let chaos_seed = opts.chaos_seed;
            std::thread::spawn(move || {
                let shard = format!("{i}/2");
                let policy = collectord::RetryPolicy {
                    base: std::time::Duration::from_millis(50),
                    cap: std::time::Duration::from_millis(800),
                    max_attempts: 3,
                    // The final push must outlast a daemon restart; a
                    // mid-run push can afford to be dropped instead.
                    max_final_attempts: 100,
                    seed: chaos_seed ^ i,
                };
                // Cut each connection only after it could have carried
                // at least one full cumulative state frame (roughly
                // 1 KB/device): resets then land between or inside
                // *later* pushes, so reconnect/resend is exercised
                // constantly but delivery always stays possible.
                let min_cut = 4096 + spec.devices * 1024;
                let client = collectord::ResilientPushClient::new(&addr, &shard, policy)
                    .with_chaos(chaos_seed.wrapping_add(i * 1000), min_cut, min_cut);
                let client = std::sync::Arc::new(std::sync::Mutex::new(client));
                let cb = client.clone();
                let run_opts = fleet::RunOptions {
                    progress: Some(fleet::ProgressSink {
                        every: push_every,
                        f: std::sync::Arc::new(move |collector, _progress, done| {
                            if done {
                                return;
                            }
                            // Dropped is fine (degraded mode); only a
                            // non-retryable rejection fails the soak.
                            if let Err(e) = cb.lock().unwrap().push(collector, false) {
                                panic!("chaos shard: non-retryable rejection: {e}");
                            }
                        }),
                    }),
                    ..fleet::RunOptions::default()
                };
                let (collector, _) = fleet::run_partition_opts(&spec, 1, i, 2, &run_opts);
                match client.lock().unwrap().push(&collector, true) {
                    Ok(collectord::Delivery::Delivered(_)) => {}
                    Ok(collectord::Delivery::Dropped { .. }) => {
                        unreachable!("final pushes never drop")
                    }
                    Err(e) => panic!("chaos shard {shard}: final push failed: {e}"),
                }
                let stats = client.lock().unwrap().stats();
                stats
            })
        })
        .collect();

    // Kill schedule: SIGKILL + restart each time the daemon's live view
    // crosses devices·j/(kills+1) — progress-based, so the schedule is
    // the same shape regardless of machine speed.
    let devices = spec.devices;
    let kills = opts.chaos_kills as u64;
    let mut next_kill = 1u64;
    while !shards.iter().all(|h| h.is_finished()) {
        if next_kill <= kills {
            let threshold = devices * next_kill / (kills + 1);
            let view = http_get(&opts.http, "/status")
                .and_then(|b| obs::Json::parse(&b).ok())
                .and_then(|j| j.get("devices_view").and_then(|v| v.as_f64()))
                .map(|v| v as u64);
            if let Some(v) = view.filter(|&v| v >= threshold) {
                info!(
                    "chaos: kill #{next_kill}/{kills} at view {v} (threshold {threshold}) \
                     — SIGKILL + restart"
                );
                let _ = child.kill();
                let _ = child.wait();
                child = spawn_daemon();
                wait_healthy();
                next_kill += 1;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let mut stats = Vec::new();
    for h in shards {
        match h.join() {
            Ok(s) => stats.push(s),
            Err(_) => die("chaos: a shard thread failed (see panic above)"),
        }
    }

    // One more kill *after* completion: the verified snapshot must come
    // purely from journal recovery, with no shard left to re-push.
    info!("chaos: campaign pushed; final SIGKILL + restart to verify pure-journal recovery ...");
    let _ = child.kill();
    let _ = child.wait();
    child = spawn_daemon();
    wait_healthy();
    let status = http_get(&opts.http, "/status")
        .and_then(|b| obs::Json::parse(&b).ok())
        .unwrap_or_else(|| die("chaos: /status unreachable after the final restart"));
    let complete = matches!(status.get("complete"), Some(obs::Json::Bool(true)));
    let recovered = status
        .get("recovery")
        .and_then(|r| r.get("merged_devices"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0) as u64;
    let snapshot = http_get(&opts.http, "/snapshot")
        .unwrap_or_else(|| die("chaos: /snapshot unreachable after the final restart"));
    write_raw(&opts.out, "chaos_snapshot.json", snapshot.clone());
    let _ = child.kill();
    let _ = child.wait();

    for (i, s) in stats.iter().enumerate() {
        println!(
            "chaos: shard {i}/2: {} pushes delivered, {} dropped (degraded), {} reconnects",
            s.delivered, s.dropped, s.reconnects
        );
    }
    println!(
        "chaos: {} kill/restart cycles; final recovery restored {recovered} merged devices",
        kills + 1
    );
    if !complete {
        error!("chaos: recovered daemon does not report a complete campaign");
        std::process::exit(1);
    }
    if snapshot != expected {
        error!(
            "chaos: recovered /snapshot differs from the single-process fleet.json \
             (saved as {})",
            opts.out.join("chaos_snapshot.json").display()
        );
        std::process::exit(1);
    }
    println!("chaos: recovered /snapshot is byte-identical to the single-process fleet.json.");
    std::process::exit(0);
}

/// Run a self-profiled fleet campaign and report where the engine's
/// wall-clock time and allocations went. Exits non-zero when less than
/// 95% of the thread-time budget lands in named phases — the
/// profiler's own accounting has to stay honest before its numbers
/// mean anything.
fn run_profile(opts: &Options) {
    let workers = opts
        .fleet_workers
        .unwrap_or_else(fleet::available_parallelism);
    let spec = fleet::CampaignSpec::heterogeneous(opts.seed, opts.fleet_devices);
    info!(
        "profiling fleet campaign: {} devices × {} probes on {workers} workers \
         ({} queue, multiplex {}) ...",
        spec.devices,
        spec.probes_per_device,
        opts.queue,
        opts.multiplex.unwrap_or(1)
    );
    let run_opts = fleet::RunOptions {
        profiler: obs::Profiler::new(),
        queue: opts.queue,
        cross_per_packet: opts.cross_per_packet,
        multiplex: opts.multiplex,
        ..fleet::RunOptions::default()
    };
    let (report, mut stats) = fleet::run_campaign_opts(&spec, workers, &run_opts);
    assert!(report.is_some(), "no halt hook configured");
    let profile = stats.profile.take().expect("profiler was enabled");
    println!("\n{}", profile.render());
    println!(
        "throughput: {:.1} devices/s on {} workers ({:.2} s wall)",
        stats.devices_per_sec(),
        stats.workers,
        stats.wall.as_secs_f64(),
    );
    write_json(&opts.out, "profile", &profile);
    write_raw(&opts.out, "profile.folded", profile.folded());
    write_raw(
        &opts.out,
        "profile_trace.json",
        profile.chrome_trace().to_string_pretty(),
    );
    let frac = profile.attributed_fraction();
    if frac < 0.95 {
        error!(
            "profile: only {:.1}% of the thread-time budget attributed \
             (need >= 95%) — the profiler is losing time somewhere",
            100.0 * frac
        );
        std::process::exit(1);
    }
    println!(
        "profile: {:.1}% of the thread-time budget attributed.",
        100.0 * frac
    );
}

/// Read a `BENCH_*.json` snapshot into `(name, p50_ns)` pairs.
fn read_bench(path: &Path) -> Vec<(String, f64)> {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("bench-gate {}: {e}", path.display())));
    let json = obs::Json::parse(&body)
        .unwrap_or_else(|e| die(&format!("bench-gate {}: {e}", path.display())));
    let obs::Json::Arr(rows) = json else {
        die(&format!(
            "bench-gate {}: expected a JSON array of bench results",
            path.display()
        ));
    };
    rows.iter()
        .filter_map(|r| {
            let name = r.get("name")?.as_str()?.to_string();
            let p50 = r.get("p50_ns")?.as_f64()?;
            Some((name, p50))
        })
        .collect()
}

/// Compare candidate bench medians against the committed baseline. The
/// `obs_tracer_*`, `obs_prof_*`, `simcore_queue_*`,
/// `simcore_dispatch_*`, and `netem_crosstraffic_*` scenarios gate
/// (they are tight, allocation-free inner loops whose cost is what the
/// tracer, profiler, scheduler, and dispatch budgets promised);
/// everything else is reported informationally — full experiments vary
/// too much across machines to gate on.
///
/// Rows whose name ends in `_allocs` are not timings but absolute
/// steady-state allocation counts (see bench-snapshot); they gate
/// without the factor: any candidate above its baseline fails. With a
/// committed baseline of zero, a single steady-state allocation on the
/// dispatch or batched cross-traffic hot path is a gate failure.
fn run_bench_gate(opts: &Options) {
    let candidate_path = opts.bench_candidate.clone().unwrap_or_else(|| {
        die("bench-gate needs --bench-candidate FILE (from a bench-snapshot run)")
    });
    let baseline = read_bench(&opts.bench_baseline);
    let candidate = read_bench(&candidate_path);
    info!(
        "bench-gate: {} vs baseline {} (factor {}x on obs_tracer_* / obs_prof_* / \
         simcore_queue_* / simcore_dispatch_* / netem_crosstraffic_*; \
         *_allocs rows gate absolutely)",
        candidate_path.display(),
        opts.bench_baseline.display(),
        opts.bench_factor
    );
    println!(
        "\n{:<28} {:>14} {:>14} {:>8}  gate",
        "scenario", "baseline p50", "candidate p50", "ratio"
    );
    let mut regressed = Vec::new();
    for (name, base_p50) in &baseline {
        let Some((_, cand_p50)) = candidate.iter().find(|(n, _)| n == name) else {
            regressed.push(format!("scenario `{name}` missing from candidate"));
            continue;
        };
        let ratio = if *base_p50 > 0.0 {
            cand_p50 / base_p50
        } else {
            1.0
        };
        let gated = name.starts_with("obs_tracer_")
            || name.starts_with("obs_prof_")
            || name.starts_with("simcore_queue_")
            || name.starts_with("simcore_dispatch_")
            || name.starts_with("netem_crosstraffic_");
        // `_allocs` rows are absolute counters, not timings: no factor.
        let fails = if name.ends_with("_allocs") {
            gated && cand_p50 > base_p50
        } else {
            gated && ratio > opts.bench_factor
        };
        println!(
            "{:<28} {:>12.0}ns {:>12.0}ns {:>7.2}x  {}",
            name,
            base_p50,
            cand_p50,
            ratio,
            match (gated, fails) {
                (false, _) => "info",
                (true, false) => "ok",
                (true, true) => "FAIL",
            }
        );
        if fails {
            if name.ends_with("_allocs") {
                regressed.push(format!(
                    "`{name}` counted {cand_p50:.0} steady-state allocations vs \
                     baseline {base_p50:.0} (absolute gate: any increase fails)"
                ));
            } else {
                regressed.push(format!(
                    "`{name}` p50 {cand_p50:.0} ns vs baseline {base_p50:.0} ns \
                     ({ratio:.2}x > {}x budget)",
                    opts.bench_factor
                ));
            }
        }
    }
    if !regressed.is_empty() {
        for r in &regressed {
            error!("bench-gate: {r}");
        }
        std::process::exit(1);
    }
    println!("\nbench-gate: tracer, profiler, scheduler, and dispatch budgets hold.");
}

fn main() {
    let opts = parse_args();
    let wants = |name: &str| opts.experiments.iter().any(|e| e == name || e == "all");

    if opts.experiments.iter().any(|e| e == "collectord") {
        run_collectord(&opts);
    }
    if opts.experiments.iter().any(|e| e == "chaos") {
        run_chaos(&opts);
    }
    if wants("table1") {
        let t = table1::run();
        println!("\n{}", t.render());
        write_json(&opts.out, "table1", &t);
    }
    // Table 2 and Fig. 3 come from the same ping matrix: run it once.
    if wants("table2") || wants("fig3") {
        info!("running ping matrix (Table 2 + Fig 3), k={} ...", opts.k);
        let m = ping_matrix::run(opts.k, opts.seed);
        if wants("table2") {
            println!("\n{}", m.render_table2());
        }
        if wants("fig3") {
            println!("\n{}", m.render_fig3());
        }
        write_json(&opts.out, "ping_matrix", &m);
    }
    if wants("table3") {
        info!("running Table 3, k={} ...", opts.k);
        let t = table3::run(opts.k, opts.seed);
        println!("\n{}", t.render());
        write_json(&opts.out, "table3", &t);
    }
    if wants("table4") {
        info!("running Table 4 ...");
        let t = table4::run(12, opts.seed);
        println!("\n{}", t.render());
        write_json(&opts.out, "table4", &t);
    }
    if wants("table5") {
        info!("running Table 5, k={} ...", opts.k);
        let t = table5::run(opts.k, opts.seed);
        println!("\n{}", t.render());
        write_json(&opts.out, "table5", &t);
    }
    if wants("fig7") {
        info!("running Fig 7, k={} ...", opts.k);
        let f = fig7::run(opts.k, opts.seed);
        println!("\n{}", f.render());
        write_json(&opts.out, "fig7", &f);
    }
    if wants("fig8") {
        info!("running Fig 8, k={} ...", opts.k);
        let f = fig8::run(opts.k, opts.seed);
        println!("\n{}", f.render());
        write_json(&opts.out, "fig8", &f);
    }
    if wants("fig9") {
        info!("running Fig 9, k={} ...", opts.k);
        let f = fig9::run(opts.k, opts.seed);
        println!("\n{}", f.render());
        write_json(&opts.out, "fig9", &f);
    }
    if wants("seeds") {
        info!("running seed sweep ...");
        let s = seeds::run(20, opts.k.min(50));
        println!("\n{}", s.render());
        write_json(&opts.out, "seed_sweep", &s);
    }
    if wants("ablations") {
        info!("running ablations ...");
        let db = ablations::db_sweep(opts.k.min(50), opts.seed);
        println!(
            "\n{}",
            ablations::render("Ablation: db sweep (Nexus 4, 50 ms path)", &db)
        );
        write_json(&opts.out, "ablate_db", &db);
        let ttl = ablations::ttl_ablation(opts.k.min(50), opts.seed);
        println!(
            "{}",
            ablations::render("Ablation: warm-up TTL (Nexus 5, 85 ms path)", &ttl)
        );
        write_json(&opts.out, "ablate_ttl", &ttl);
        let p2 = ablations::ping2_comparison(opts.k.min(30), opts.seed);
        println!("{}", ablations::render("Ablation: ping2 vs AcuteMon", &p2));
        write_json(&opts.out, "ablate_ping2", &p2);
        let sp = ablations::static_psm(opts.k.min(40), opts.seed);
        println!(
            "{}",
            ablations::render(
                "Ablation: static vs adaptive PSM (Nexus 4, 30 ms path)",
                &sp
            )
        );
        write_json(&opts.out, "ablate_static_psm", &sp);
        let li = ablations::listen_interval_sweep(8, opts.seed);
        println!(
            "{}",
            ablations::render("Ablation: listen-interval sweep (Nexus 5)", &li)
        );
        write_json(&opts.out, "ablate_listen_interval", &li);
        let fer = ablations::fer_robustness(opts.k.min(60), opts.seed);
        println!(
            "{}",
            ablations::render("Fault injection: WiFi frame errors (Nexus 5, 50 ms)", &fer)
        );
        write_json(&opts.out, "ablate_fer", &fer);
        let up = ablations::uapsd(opts.k.min(40), opts.seed);
        println!(
            "{}",
            ablations::render("Ablation: legacy PSM vs U-APSD (Nexus 4, 60 ms path)", &up)
        );
        write_json(&opts.out, "ablate_uapsd", &up);
        let loss = ablations::loss_robustness(opts.k.min(60), opts.seed);
        println!(
            "{}",
            ablations::render("Fault injection: lossy path (Nexus 5, 50 ms)", &loss)
        );
        write_json(&opts.out, "ablate_loss", &loss);
        let energy = ablations::energy_cost(opts.k.min(50), opts.seed);
        println!(
            "{}",
            ablations::render("Extension: energy/path cost (Nexus 5, 50 ms path)", &energy)
        );
        write_json(&opts.out, "ablate_energy", &energy);
        let cell = ablations::cellular(opts.k.min(30), opts.seed);
        println!(
            "{}",
            ablations::render("Extension: cellular RRC (LTE/UMTS, 40 ms core path)", &cell)
        );
        write_json(&opts.out, "ablate_cellular", &cell);
    }
    if wants("faults") {
        info!("running fault sweep (loss × burstiness), k={} ...", opts.k);
        let f = faults::run(opts.k.min(40), opts.seed);
        println!("\n{}", f.render());
        write_json(&opts.out, "faults", &f);
    }
    if wants("telemetry") {
        for (label, tool) in [
            ("slow ping", telemetry::TelemetryTool::SlowPing),
            ("acutemon", telemetry::TelemetryTool::AcuteMon),
        ] {
            info!("running instrumented {label} session, 300 ms path ...");
            let reg = Registry::new();
            telemetry::run(tool, opts.k.min(30), opts.seed, 300, &reg);
            let snap = reg.snapshot();
            let slug = label.replace(' ', "_");
            println!("\nTelemetry snapshot ({label}, Nexus 5, 300 ms path):");
            if opts.metrics_json {
                print!("{}", obs::export::json_lines(&snap));
            } else {
                print!("{}", obs::export::prometheus(&snap));
            }
            write_raw(
                &opts.out,
                &format!("telemetry_{slug}.jsonl"),
                obs::export::json_lines(&snap),
            );
        }
    }
    if wants("waterfall") {
        let k = opts.k.min(20);
        info!("running traced slow-ping session, k={k}, 300 ms path ...");
        let reg = Registry::new();
        let tracer = Tracer::new();
        let r = waterfall::run(k, opts.seed, 300, &reg, &tracer);
        let report = r.render(60);
        // Show the first few probes; the full report goes to a file.
        let shown: Vec<&str> = report.split("\n\n").take(3).collect();
        println!(
            "\nPer-probe waterfalls (slow ping, Nexus 5, 300 ms path; \
             first {} of {} probes):\n",
            shown.len(),
            r.waterfalls.len()
        );
        println!("{}", shown.join("\n\n"));
        write_raw(&opts.out, "waterfall.txt", report);
        let chrome = obs::export::chrome_trace(&r.spans).to_string_pretty();
        let lines = obs::export::span_json_lines(&r.spans);
        write_raw(&opts.out, "waterfall_trace.json", chrome.clone());
        write_raw(&opts.out, "waterfall_spans.jsonl", lines.clone());
        if let Some(p) = &opts.trace_out {
            std::fs::write(p, chrome).expect("write --trace-out");
            info!("[saved {}]", p.display());
        }
        if let Some(p) = &opts.trace_spans {
            std::fs::write(p, lines).expect("write --trace-spans");
            info!("[saved {}]", p.display());
        }
    }
    // Explicit-only: a 10k-device campaign is deliberately big for the
    // default `all` bundle, but CI runs a scaled-down one.
    if opts.experiments.iter().any(|e| e == "fleet") {
        let workers = opts
            .fleet_workers
            .unwrap_or_else(fleet::available_parallelism);
        let spec = fleet::CampaignSpec::heterogeneous(opts.seed, opts.fleet_devices);
        let run_opts = fleet::RunOptions {
            checkpoint: opts.checkpoint.clone().map(|path| fleet::CheckpointPolicy {
                path,
                every: opts.checkpoint_every,
            }),
            halt_after_devices: opts.fleet_halt_after,
            queue: opts.queue,
            cross_per_packet: opts.cross_per_packet,
            multiplex: opts.multiplex,
            ..fleet::RunOptions::default()
        };

        if opts.partition.is_some() || opts.push_to.is_some() {
            // One contiguous device slice (all of them for a plain
            // --push-to run); the partial merges back into the
            // single-process report via `repro fleet-merge` or streams
            // into a collectord daemon.
            run_fleet_partition(&opts, &spec, workers);
        } else {
            info!(
                "running fleet campaign: {} devices × {} probes on {workers} workers ...",
                spec.devices, spec.probes_per_device
            );
            let (report, stats) = match &opts.resume {
                Some(path) => {
                    let body = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| die(&format!("--resume {}: {e}", path.display())));
                    let state = obs::Json::parse(&body)
                        .unwrap_or_else(|e| die(&format!("--resume {}: {e}", path.display())));
                    info!("resuming from checkpoint {} ...", path.display());
                    fleet::resume_campaign(&spec, workers, &state, &run_opts)
                        .unwrap_or_else(|e| die(&e.to_string()))
                }
                None => fleet::run_campaign_opts(&spec, workers, &run_opts),
            };
            let Some(report) = report else {
                // The --fleet-halt-after hook fired: behave like a kill.
                println!(
                    "fleet: halted after {} devices (simulated kill){}",
                    stats.devices,
                    match &opts.checkpoint {
                        Some(p) => format!("; resume with --resume {}", p.display()),
                        None => String::new(),
                    }
                );
                std::process::exit(0);
            };
            println!("\n{}", report.render());
            println!(
                "throughput: {:.1} devices/s, {:.1} probes/s on {} workers \
                 ({:.2} s wall, reorder peak {})",
                stats.devices_per_sec(),
                stats.probes_per_sec(),
                stats.workers,
                stats.wall.as_secs_f64(),
                stats.reorder_peak
            );
            write_json(&opts.out, "fleet", &report);
            // Worker scaling on a sub-campaign: same population law,
            // fewer devices, so the table costs a fraction of the main
            // run. Skipped on resumed runs — the table re-runs the
            // whole sub-campaign anyway, so a resume benchmark would
            // measure nothing new.
            if opts.resume.is_none() {
                let sub = fleet::CampaignSpec::heterogeneous(
                    opts.seed,
                    (opts.fleet_devices / 12).max(48),
                );
                info!(
                    "running worker-scaling table ({} devices per row) ...",
                    sub.devices
                );
                let rows = fleet::scaling_table(&sub, &[1, 2, 4, 8]);
                println!("\nWorker scaling ({} devices per row):", sub.devices);
                println!("{}", fleet::render_scaling(&rows));
                if rows.iter().any(|r| !r.json_identical) {
                    error!("fleet: merged JSON diverged across worker counts");
                    std::process::exit(1);
                }
                // A speedup sanity check only means something when the
                // host actually has the cores: single-core CI runners
                // legitimately print ~1.0x across the board. With >= 4
                // cores, a 4-worker run that is no faster than 1 worker
                // means the engine serialised somewhere — fail loudly.
                let cores = fleet::available_parallelism();
                if cores >= 4 {
                    if let Some(r4) = rows.iter().find(|r| r.workers == 4) {
                        if r4.speedup <= 1.0 {
                            error!(
                                "fleet: 4-worker speedup {:.2}x on a {cores}-core host \
                                 (expected > 1x)",
                                r4.speedup
                            );
                            std::process::exit(1);
                        }
                    }
                } else {
                    info!("fleet: speedup check skipped ({cores} core(s) available)");
                }
            }
        }
    }
    // Explicit-only like fleet: a profiled campaign is the same size.
    if opts.experiments.iter().any(|e| e == "profile") {
        run_profile(&opts);
    }
    if opts.experiments.iter().any(|e| e == "fleet-merge") {
        if opts.merge_inputs.is_empty() {
            die("fleet-merge needs at least one partial-report path");
        }
        let spec = fleet::CampaignSpec::heterogeneous(opts.seed, opts.fleet_devices);
        let mut parts = Vec::with_capacity(opts.merge_inputs.len());
        for p in &opts.merge_inputs {
            let body = std::fs::read_to_string(p)
                .unwrap_or_else(|e| die(&format!("fleet-merge {}: {e}", p.display())));
            let json = obs::Json::parse(&body)
                .unwrap_or_else(|e| die(&format!("fleet-merge {}: {e}", p.display())));
            parts.push(json);
        }
        info!(
            "merging {} partial reports into a {}-device campaign ...",
            parts.len(),
            spec.devices
        );
        let report = fleet::merge_partials(&spec, &parts).unwrap_or_else(|e| die(&e.to_string()));
        println!("\n{}", report.render());
        write_json(&opts.out, "fleet", &report);
    }
    // Explicit-only: a timing smoke run is too machine-dependent for the
    // default `all` bundle, but CI runs it to catch harness bit-rot.
    if opts.experiments.iter().any(|e| e == "bench-snapshot") {
        use am_stats::bench::{Harness, BENCH_K, BENCH_SEED};
        info!("running bench snapshot (reduced budget) ...");
        let mut h =
            Harness::new("repro bench-snapshot").with_budget(std::time::Duration::from_millis(150));
        h.bench("ping_matrix", || ping_matrix::run(BENCH_K, BENCH_SEED));
        h.bench("table3", || table3::run(BENCH_K, BENCH_SEED));
        h.bench("table5", || table5::run(BENCH_K, BENCH_SEED));
        h.bench("telemetry_slow_ping", || {
            let reg = Registry::new();
            telemetry::run(
                telemetry::TelemetryTool::SlowPing,
                BENCH_K,
                BENCH_SEED,
                300,
                &reg,
            )
        });
        h.bench("waterfall", || {
            let reg = Registry::new();
            let tracer = Tracer::new();
            waterfall::run(BENCH_K, BENCH_SEED, 300, &reg, &tracer)
        });
        h.bench("fleet_campaign_8dev", || {
            let spec = fleet::CampaignSpec::heterogeneous(BENCH_SEED, 8).with_probes(2);
            fleet::run_campaign(&spec, 2)
        });
        h.bench("fleet_campaign_8dev_mux4", || {
            let spec = fleet::CampaignSpec::heterogeneous(BENCH_SEED, 8).with_probes(2);
            let run = fleet::RunOptions {
                multiplex: Some(4),
                ..fleet::RunOptions::default()
            };
            fleet::run_campaign_opts(&spec, 2, &run)
        });
        // The scheduler's raw push/pop cost, heap vs. wheel: bursts of
        // 64 timers with mixed sub-window offsets, fully drained each
        // iteration. `base` advances monotonically across iterations so
        // the wheel exercises its real cursor-advance path instead of
        // the behind-cursor fast path.
        {
            use simcore::sched::{EventQueue, HeapQueue, WheelQueue};
            fn queue_churn<Q: EventQueue<u64>>(q: &mut Q, base: &mut u64) -> u64 {
                let mut acc = 0u64;
                for i in 0..64u64 {
                    q.push(
                        simcore::SimTime::from_nanos(*base + i * 3_000 + (i % 7) * 11),
                        i,
                    );
                }
                while let Some((t, v)) = q.pop() {
                    acc ^= t.as_nanos().wrapping_add(v);
                }
                *base += 64 * 3_000;
                acc
            }
            let mut heap_q: HeapQueue<u64> = HeapQueue::new();
            let mut heap_base = 0u64;
            h.bench("simcore_queue_push_pop_heap", || {
                queue_churn(&mut heap_q, &mut heap_base)
            });
            let mut wheel_q: WheelQueue<u64> = WheelQueue::new();
            let mut wheel_base = 0u64;
            h.bench("simcore_queue_push_pop_wheel", || {
                queue_churn(&mut wheel_q, &mut wheel_base)
            });
        }
        // The dispatch hot path through the public engine API: one
        // `Sim::step()` per iteration on a warmed ping-pong + timer-churn
        // sim (the `simcore/tests/zero_alloc.rs` workload). Each
        // scenario gets a companion `_allocs` row: the literal
        // allocation count over 10 000 steady-state events, stored in
        // the ns fields of a pseudo-result. Those rows gate absolutely —
        // any increase over the committed baseline (zero) fails the
        // bench gate, which is what keeps the arena discipline honest
        // between the zero-alloc test and production binaries.
        let mut alloc_rows: Vec<am_stats::bench::BenchResult> = Vec::new();
        {
            #[derive(Default)]
            struct Pinger {
                peer: Option<simcore::NodeId>,
                timer: Option<simcore::TimerId>,
            }
            impl simcore::Node<u64> for Pinger {
                fn on_message(
                    &mut self,
                    ctx: &mut simcore::Ctx<'_, u64>,
                    from: simcore::NodeId,
                    msg: u64,
                ) {
                    self.peer = Some(from);
                    ctx.send(from, simcore::SimDuration::from_micros(13), msg + 1);
                    if let Some(t) = self.timer.take() {
                        ctx.cancel_timer(t);
                    }
                    self.timer = Some(ctx.set_timer(simcore::SimDuration::from_millis(5), 0));
                }
                fn on_timer(&mut self, ctx: &mut simcore::Ctx<'_, u64>, _tag: u64) {
                    self.timer = None;
                    if let Some(peer) = self.peer {
                        ctx.send(peer, simcore::SimDuration::from_micros(13), 0);
                    }
                }
            }
            let mut sim: simcore::Sim<u64> = simcore::Sim::new(BENCH_SEED);
            let a = sim.add_node(Box::<Pinger>::default());
            let b = sim.add_node(Box::<Pinger>::default());
            for i in 0..16 {
                sim.inject(a, b, simcore::SimTime::from_micros(i), 0);
            }
            // Warm past the wheel's first coarse-level lap (~1.07 s) so
            // the measured window is genuinely steady state. The alloc
            // window runs *before* the timed bench: the bench's
            // iteration count is wall-time-budgeted and so varies per
            // machine, while the alloc count over a fixed window of a
            // deterministic sim is exactly reproducible.
            sim.run_until(simcore::SimTime::from_millis(1_120));
            let (a0, _) = obs::prof::thread_alloc_counts();
            for _ in 0..10_000 {
                sim.step();
            }
            let (a1, _) = obs::prof::thread_alloc_counts();
            alloc_rows.push(am_stats::bench::BenchResult {
                name: "simcore_dispatch_event_allocs".to_string(),
                iters: 10_000,
                min_ns: (a1 - a0) as f64,
                p50_ns: (a1 - a0) as f64,
                mean_ns: (a1 - a0) as f64,
            });
            h.bench("simcore_dispatch_event", || sim.step());
        }
        // The batched cross-traffic fast path: one engine event per
        // iteration on a warmed blaster-to-sink sim running the paper's
        // 10 × 2.5 Mbit/s load. Same `_allocs` contract as dispatch.
        {
            struct Sink;
            impl simcore::Node<wire::Msg> for Sink {
                fn on_message(
                    &mut self,
                    _ctx: &mut simcore::Ctx<'_, wire::Msg>,
                    _from: simcore::NodeId,
                    _msg: wire::Msg,
                ) {
                }
            }
            let mut sim: simcore::Sim<wire::Msg> = simcore::Sim::new(BENCH_SEED);
            let sink = sim.add_node(Box::new(Sink));
            let cfg = netem::LoadConfig::paper_cross_traffic(
                wire::Ip::new(10, 0, 0, 2),
                wire::Ip::new(10, 0, 0, 1),
                simcore::SimTime::from_secs(3_600),
            )
            .batched();
            let blaster = Box::new(netem::UdpBlasterNode::new(7, cfg, sink));
            sim.add_node(blaster);
            // This workload needs a longer warm-up than the dispatch
            // scenario: its 4.704 ms emission grid aliases against the
            // wheel's coarse-level slot boundaries, so boundary-crossing
            // buckets keep growing past pooled capacity for the first
            // few simulated seconds. 6 s is past the amortisation knee;
            // the fixed 10 000-step window after it is deterministically
            // allocation-free (and runs before the wall-time-budgeted
            // bench for the same reproducibility reason as above).
            sim.run_until(simcore::SimTime::from_secs(6));
            let (a0, _) = obs::prof::thread_alloc_counts();
            for _ in 0..10_000 {
                sim.step();
            }
            let (a1, _) = obs::prof::thread_alloc_counts();
            alloc_rows.push(am_stats::bench::BenchResult {
                name: "netem_crosstraffic_batch_allocs".to_string(),
                iters: 10_000,
                min_ns: (a1 - a0) as f64,
                p50_ns: (a1 - a0) as f64,
                mean_ns: (a1 - a0) as f64,
            });
            h.bench("netem_crosstraffic_batch", || sim.step());
        }
        // The tracer's enabled-path cost, next to the no-op guard in
        // crates/obs/tests/noop_alloc.rs: a 3-span probe workload with
        // sampling on (kept) and off (sampled out).
        h.bench("obs_tracer_enabled_probe", || {
            let t = Tracer::new();
            let trace = t.begin_trace();
            let root = t.start_span(trace, None, "probe", "app", 0);
            t.span(trace, Some(root), "kernel_tx", "kernel", 0, 10_000);
            t.span(trace, Some(root), "sdio_wake", "driver", 10_000, 200_000);
            t.end_span(root, 1_000_000);
            t.spans().len()
        });
        h.bench("obs_tracer_sampled_out_probe", || {
            let t = Tracer::with_policy(obs::SamplePolicy::one_in(u64::MAX));
            let _ = t.begin_trace(); // probe 0 is always sampled in; burn it
            let trace = t.begin_trace();
            let root = t.start_span(trace, None, "probe", "app", 0);
            t.end_span(root, 1_000_000);
            t.sampling_stats().sampled_out
        });
        // The profiler's guard cost, mirroring the tracer pair: a
        // 3-deep phase chain with the profiler on (interned, timed)
        // and off (one branch per guard). Profilers built outside the
        // closure so the bench measures guards, not setup.
        let prof_on = obs::Profiler::new();
        {
            // Warm the intern table + timeline so the steady state is
            // what gets measured.
            let _a = prof_on.phase("probe");
            let _b = prof_on.phase("des");
            let _c = prof_on.phase("fold");
        }
        h.bench("obs_prof_enabled_phase", || {
            let _a = prof_on.phase("probe");
            let _b = prof_on.phase("des");
            let _c = prof_on.phase("fold");
        });
        let prof_off = obs::Profiler::disabled();
        h.bench("obs_prof_disabled_phase", || {
            let _a = prof_off.phase("probe");
            let _b = prof_off.phase("des");
            let _c = prof_off.phase("fold");
        });
        let mut results = h.results().to_vec();
        results.extend(alloc_rows);
        write_json(&opts.out, "BENCH_2", &results);
        h.finish();
    }
    if opts.experiments.iter().any(|e| e == "bench-gate") {
        run_bench_gate(&opts);
    }
    info!("done.");
}
