//! The shard-side push client: connect once, push cumulative campaign
//! state, read the typed ack. Used by `repro fleet --push-to` (via the
//! reconnecting [`crate::resilient`] wrapper) and by the end-to-end
//! tests.

use std::io::{Read, Write};
use std::net::TcpStream;

use fleet::Collector;
use obs::Json;
use wire::framing::{read_frame, write_frame, FrameError};
use wire::telemetry::ShardTelemetry;

use crate::protocol::{push_doc_with_telemetry, Ack, PushOutcome};

/// A failed push, as seen by the client.
#[derive(Debug)]
pub enum PushError {
    /// The TCP connection could not be established or died mid-push.
    Io(std::io::Error),
    /// Framing broke (torn frame, oversized reply).
    Frame(FrameError),
    /// The daemon answered with something that is not an ack or error.
    BadReply(String),
    /// The daemon rejected the push with a typed error.
    Rejected {
        /// Stable wire code ([`crate::protocol::IngestError::code`]).
        code: String,
        /// Human-readable rejection message.
        message: String,
    },
}

impl PushError {
    /// Whether retrying the same push (after reconnecting) can
    /// plausibly succeed.
    ///
    /// Transport failures — a dead connection, a torn frame, an
    /// unintelligible reply — are transient: pushes are cumulative and
    /// the daemon's ingest is idempotent, so a blind re-send is always
    /// safe. Typed daemon rejections are permanent *unless* the daemon
    /// itself says otherwise: `storage` (journal write failed) and
    /// `conn-timeout` clear on their own, while `spec-mismatch`,
    /// `overlap`, `range-out-of-bounds`, `bad-state`, and `bad-frame`
    /// mean the push is wrong and every retry would fail identically.
    pub fn is_retryable(&self) -> bool {
        match self {
            PushError::Io(_) | PushError::Frame(_) | PushError::BadReply(_) => true,
            PushError::Rejected { code, .. } => code == "storage" || code == "conn-timeout",
        }
    }
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Io(e) => write!(f, "push connection failed: {e}"),
            PushError::Frame(e) => write!(f, "push framing failed: {e}"),
            PushError::BadReply(m) => write!(f, "unintelligible daemon reply: {m}"),
            PushError::Rejected { code, message } => {
                write!(f, "daemon rejected push ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for PushError {}

impl From<std::io::Error> for PushError {
    fn from(e: std::io::Error) -> PushError {
        PushError::Io(e)
    }
}

impl From<FrameError> for PushError {
    fn from(e: FrameError) -> PushError {
        PushError::Frame(e)
    }
}

/// One persistent push connection to a collector daemon.
///
/// Generic over the byte stream so tests (and the chaos harness) can
/// splice a fault-injecting [`wire::chaos::ChaosStream`] between the
/// protocol and the socket; production code uses the [`TcpStream`]
/// default.
pub struct PushClient<S: Read + Write = TcpStream> {
    stream: S,
    shard: String,
}

impl PushClient<TcpStream> {
    /// Connect to the daemon's ingest listener at `addr`
    /// (`host:port`), identifying as `shard` (conventionally `"i/k"`).
    pub fn connect(addr: &str, shard: &str) -> Result<PushClient, PushError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PushClient::from_stream(stream, shard))
    }
}

impl<S: Read + Write> PushClient<S> {
    /// Wrap an already-established byte stream as a push client.
    pub fn from_stream(stream: S, shard: &str) -> PushClient<S> {
        PushClient {
            stream,
            shard: shard.to_string(),
        }
    }

    /// Push one cumulative campaign-state partial. `done` marks the
    /// shard's slice complete; the last push of a shard must set it.
    pub fn push(&mut self, collector: &Collector, done: bool) -> Result<Ack, PushError> {
        self.push_with_telemetry(collector, done, None)
    }

    /// Like [`PushClient::push`], attaching live engine telemetry
    /// (worker rates, queue depth, phase split) for the daemon's
    /// `/metrics` and dashboard. Daemons that predate telemetry ignore
    /// the extra field.
    pub fn push_with_telemetry(
        &mut self,
        collector: &Collector,
        done: bool,
        telemetry: Option<&ShardTelemetry>,
    ) -> Result<Ack, PushError> {
        let doc = push_doc_with_telemetry(&self.shard, done, &collector.state_json(), telemetry);
        write_frame(&mut self.stream, doc.to_string().as_bytes())?;
        let reply = read_frame(&mut self.stream)?;
        parse_reply(&reply)
    }
}

fn parse_reply(payload: &[u8]) -> Result<Ack, PushError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| PushError::BadReply("reply is not UTF-8".to_string()))?;
    let doc =
        Json::parse(text).map_err(|e| PushError::BadReply(format!("reply is not JSON: {e}")))?;
    match doc.get("type").and_then(Json::as_str) {
        Some("ack") => {}
        Some("error") => {
            return Err(PushError::Rejected {
                code: doc
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                message: doc
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            })
        }
        other => {
            return Err(PushError::BadReply(format!(
                "expected ack or error, got type {other:?}"
            )))
        }
    }
    let outcome = match doc.get("status").and_then(Json::as_str) {
        Some("absorbed") => PushOutcome::Absorbed,
        Some("buffered") => PushOutcome::Buffered,
        Some("duplicate") => PushOutcome::Duplicate,
        Some("stale") => PushOutcome::Stale,
        other => return Err(PushError::BadReply(format!("unknown ack status {other:?}"))),
    };
    let num = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    Ok(Ack {
        outcome,
        devices_absorbed: num("devices_absorbed"),
        devices_view: num("devices_view"),
        complete: matches!(doc.get("complete"), Some(Json::Bool(true))),
    })
}
