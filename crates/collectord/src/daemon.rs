//! The collector daemon: a push listener (length-prefixed JSON frames)
//! and an HTTP listener (`/`, `/snapshot`, `/status`, `/metrics`,
//! `/healthz`), both thread-per-connection over one shared
//! [`Ingest`].

use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fleet::CampaignSpec;
use obs::{info, warn, Json, Registry};
use wire::framing::{read_frame, write_frame, FrameError};

use crate::dashboard;
use crate::http::{read_request, respond};
use crate::ingest::{Ingest, ShardInfo};
use crate::protocol::{ack_doc, error_doc, parse_push, IngestError, PushOutcome};
use crate::store::{Store, StoreError};

/// Default ingest-connection read/write timeout: generous enough for a
/// slow shard's largest state push, small enough that half-open or
/// stalled connections don't pin daemon threads forever.
pub const DEFAULT_INGEST_TIMEOUT: Duration = Duration::from_secs(60);

struct Inner {
    ingest: Mutex<Ingest>,
    registry: Registry,
    started: Instant,
}

/// A running (or ready-to-run) collector daemon. Cheap to clone; all
/// clones share the same campaign state and metrics registry.
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<Inner>,
    ingest_timeout: Duration,
}

impl Daemon {
    /// A daemon expecting campaign `spec`.
    pub fn new(spec: CampaignSpec) -> Daemon {
        Daemon::from_ingest(Ingest::new(spec))
    }

    /// A daemon journaling to (and recovered from) `store`: whatever
    /// state the journal holds for `spec` is restored before the first
    /// push, and every accepted push is persisted before it is acked.
    pub fn with_store(spec: CampaignSpec, store: Store) -> Result<Daemon, StoreError> {
        Ok(Daemon::from_ingest(Ingest::with_store(spec, store)?))
    }

    fn from_ingest(ingest: Ingest) -> Daemon {
        let registry = Registry::new();
        registry
            .gauge("collectord.devices.expected")
            .set(ingest.spec().devices as i64);
        if let Some(rec) = ingest.recovery() {
            registry
                .gauge("collectord.recovered.devices")
                .set(rec.merged_devices as i64);
            registry
                .gauge("collectord.recovered.slices")
                .set(rec.slices_loaded as i64);
        }
        Daemon {
            inner: Arc::new(Inner {
                ingest: Mutex::new(ingest),
                registry,
                started: Instant::now(),
            }),
            ingest_timeout: DEFAULT_INGEST_TIMEOUT,
        }
    }

    /// Override the per-connection ingest read/write timeout
    /// ([`DEFAULT_INGEST_TIMEOUT`]). A connection that stalls past it —
    /// idle, half-open, or torn mid-frame — is counted
    /// (`collectord_conn_timeout_total`) and dropped; resilient clients
    /// reconnect and re-push.
    pub fn with_ingest_timeout(mut self, timeout: Duration) -> Daemon {
        self.ingest_timeout = timeout;
        self
    }

    /// Flush the full ingest state (merged prefix, buffered slices, a
    /// rendered `snapshot.json`) to the journal — the SIGTERM/SIGINT
    /// shutdown path. A no-op without a store.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.inner.ingest.lock().unwrap().flush_to_store()
    }

    /// The daemon's own metrics registry (ingest counters, batch
    /// latency, device gauges). Exported on `/metrics` alongside the
    /// per-shard labelled series.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Whether the whole campaign population has been absorbed.
    pub fn complete(&self) -> bool {
        self.inner.ingest.lock().unwrap().complete()
    }

    /// Accept push connections forever. Each connection carries any
    /// number of `push` frames; every frame is answered with an `ack`
    /// or a typed `error` frame.
    pub fn serve_ingest(&self, listener: TcpListener) {
        info!(
            "collectord: ingest listening on {}",
            listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string())
        );
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let daemon = self.clone();
                    std::thread::spawn(move || daemon.handle_push_conn(stream));
                }
                Err(e) => warn!("collectord: accept failed: {e}"),
            }
        }
    }

    /// Accept HTTP connections forever (one GET per connection).
    pub fn serve_http(&self, listener: TcpListener) {
        info!(
            "collectord: http listening on {}",
            listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string())
        );
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let daemon = self.clone();
                    std::thread::spawn(move || daemon.handle_http_conn(stream));
                }
                Err(e) => warn!("collectord: accept failed: {e}"),
            }
        }
    }

    fn handle_push_conn(&self, mut stream: TcpStream) {
        let reg = &self.inner.registry;
        // A shard that stalls mid-frame (or a half-open connection that
        // will never send another byte) must not pin this thread
        // forever: bound every read and write.
        let _ = stream.set_read_timeout(Some(self.ingest_timeout));
        let _ = stream.set_write_timeout(Some(self.ingest_timeout));
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(p) => p,
                Err(FrameError::Closed) => return,
                Err(FrameError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
                {
                    // Tell the peer why before hanging up, best-effort
                    // (it may be long gone).
                    warn!("collectord: ingest connection timed out; dropping it");
                    reg.counter("collectord.conn_timeout").inc();
                    let doc = error_doc(&IngestError::ConnTimeout);
                    let _ = write_frame(&mut stream, doc.to_string().as_bytes());
                    return;
                }
                Err(e) => {
                    warn!("collectord: dropping push connection: {e}");
                    reg.counter("collectord.ingest.errors").inc();
                    return;
                }
            };
            reg.counter("collectord.ingest.bytes")
                .add(payload.len() as u64);
            let reply = self.ingest_frame(&payload);
            if write_frame(&mut stream, reply.to_string().as_bytes()).is_err() {
                return;
            }
        }
    }

    /// Process one push frame and build the reply document. Split out
    /// from the socket loop so tests can drive it without a network.
    pub fn ingest_frame(&self, payload: &[u8]) -> Json {
        let reg = &self.inner.registry;
        reg.counter("collectord.ingest.pushes").inc();
        let started = Instant::now();
        let result: Result<_, IngestError> = (|| {
            let push = parse_push(payload)?;
            let mut ingest = self.inner.ingest.lock().unwrap();
            let ack = ingest.push(&push.shard, &push.state, push.done, payload.len() as u64)?;
            if let Some(t) = push.telemetry {
                ingest.note_telemetry(&push.shard, t);
            }
            Ok(ack)
        })();
        match result {
            Ok(ack) => {
                reg.histogram_ms("collectord.ingest.batch_ms")
                    .observe(started.elapsed().as_secs_f64() * 1e3);
                match ack.outcome {
                    PushOutcome::Duplicate | PushOutcome::Stale => {
                        reg.counter("collectord.ingest.duplicates").inc()
                    }
                    _ => {}
                }
                reg.gauge("collectord.devices.absorbed")
                    .set(ack.devices_absorbed as i64);
                reg.gauge("collectord.devices.view")
                    .set(ack.devices_view as i64);
                if ack.complete {
                    reg.gauge("collectord.campaign.complete").set(1);
                }
                ack_doc(&ack)
            }
            Err(e) => {
                reg.counter("collectord.ingest.errors").inc();
                reg.counter(&format!("collectord.ingest.rejected.{}", e.code()))
                    .inc();
                warn!("collectord: rejected push: {e}");
                error_doc(&e)
            }
        }
    }

    fn handle_http_conn(&self, mut stream: TcpStream) {
        let Some(req) = read_request(&mut stream) else {
            return;
        };
        self.inner
            .registry
            .counter("collectord.http.requests")
            .inc();
        if req.method != "GET" {
            let _ = respond(&mut stream, 405, "text/plain", "only GET is served\n");
            return;
        }
        let _ = match req.path.as_str() {
            "/healthz" => {
                // First line stays exactly "ok" (probe compatibility);
                // recovery provenance rides the following lines.
                let body = {
                    let ingest = self.inner.ingest.lock().unwrap();
                    match ingest.recovery() {
                        Some(rec) if rec.recovered_anything() => format!(
                            "ok\nrecovered merged_devices={} slices_loaded={} \
                             slices_discarded={}\n",
                            rec.merged_devices, rec.slices_loaded, rec.slices_discarded
                        ),
                        Some(_) => "ok\nrecovered nothing (journal was empty)\n".to_string(),
                        None => "ok\n".to_string(),
                    }
                };
                respond(&mut stream, 200, "text/plain", &body)
            }
            "/snapshot" => {
                let body = self.inner.ingest.lock().unwrap().snapshot_pretty();
                respond(&mut stream, 200, "application/json", &body)
            }
            "/status" => {
                let body = self.status_json().to_string_pretty();
                respond(&mut stream, 200, "application/json", &body)
            }
            "/metrics" => {
                let body = self.metrics_text();
                respond(
                    &mut stream,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                )
            }
            "/" => {
                let ingest = self.inner.ingest.lock().unwrap();
                let view = ingest.view().report();
                let shards = shard_rows(&ingest);
                let body = dashboard::render(
                    ingest.spec(),
                    &view,
                    &shards,
                    ingest.devices_absorbed(),
                    ingest.complete(),
                    ingest.throughput_dps(),
                    ingest.eta_secs(),
                );
                respond(&mut stream, 200, "text/html; charset=utf-8", &body)
            }
            _ => respond(&mut stream, 404, "text/plain", "not found\n"),
        };
    }

    /// The `/status` document: campaign identity, progress, and
    /// per-shard heartbeats.
    pub fn status_json(&self) -> Json {
        let ingest = self.inner.ingest.lock().unwrap();
        let spec = ingest.spec();
        let mut campaign = Json::object();
        campaign.set("seed", spec.seed.to_string());
        campaign.set("devices", spec.devices);
        campaign.set("probes_per_device", spec.probes_per_device);
        campaign.set("fingerprint", format!("{:016x}", spec.fingerprint()));
        let mut shards = Json::array();
        for (label, info, age) in shard_rows(&ingest) {
            let mut s = Json::object();
            s.set("shard", label);
            s.set("range_start", info.range_start);
            s.set("devices_pushed", info.devices_pushed);
            s.set("pushes", info.pushes);
            s.set("bytes", info.bytes);
            s.set("final", info.done);
            s.set("heartbeat_age_ms", (age * 1e3).round());
            if let Some(rate) = info.best_rate_dps() {
                s.set("devices_per_sec", rate);
            }
            if let Some(t) = &info.telemetry {
                s.set("workers", t.workers);
                s.set("queue_depth", t.queue_depth);
            }
            shards.push(s);
        }
        let mut doc = Json::object();
        doc.set("service", "collectord");
        doc.set("campaign", campaign);
        doc.set("devices_absorbed", ingest.devices_absorbed());
        doc.set("devices_view", ingest.devices_view());
        doc.set("complete", ingest.complete());
        doc.set(
            "uptime_secs",
            self.inner.started.elapsed().as_secs_f64().round(),
        );
        doc.set("devices_per_sec", ingest.throughput_dps());
        if let Some(eta) = ingest.eta_secs() {
            doc.set("eta_secs", eta);
        }
        if let Some(rec) = ingest.recovery() {
            doc.set("recovery", rec.to_json());
        }
        doc.set("shards", shards);
        doc
    }

    /// The `/metrics` body: the obs Prometheus exporter over the
    /// daemon registry, extended with per-shard labelled series
    /// (ingest counters, devices, final flag, and heartbeat age for
    /// stall detection).
    pub fn metrics_text(&self) -> String {
        use obs::export::{escape_label_value, prometheus};
        use std::fmt::Write as _;

        let mut out = prometheus(&self.inner.registry.snapshot());
        let ingest = self.inner.ingest.lock().unwrap();
        let shards = shard_rows(&ingest);
        if shards.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "# HELP collectord_campaign_devices_per_sec summed live-shard throughput"
        );
        let _ = writeln!(out, "# TYPE collectord_campaign_devices_per_sec gauge");
        let _ = writeln!(
            out,
            "collectord_campaign_devices_per_sec {:.3}",
            ingest.throughput_dps()
        );
        if let Some(eta) = ingest.eta_secs() {
            let _ = writeln!(
                out,
                "# HELP collectord_campaign_eta_seconds estimated seconds to completion"
            );
            let _ = writeln!(out, "# TYPE collectord_campaign_eta_seconds gauge");
            let _ = writeln!(out, "collectord_campaign_eta_seconds {eta:.3}");
        }
        type SeriesValue<'a> = &'a dyn Fn(&ShardInfo, f64) -> String;
        let series: [(&str, &str, &str, SeriesValue); 5] = [
            (
                "collectord_shard_pushes_total",
                "counter",
                "pushes accepted per shard",
                &|i, _| i.pushes.to_string(),
            ),
            (
                "collectord_shard_devices",
                "gauge",
                "devices covered by the shard's latest cumulative push",
                &|i, _| i.devices_pushed.to_string(),
            ),
            (
                "collectord_shard_bytes_total",
                "counter",
                "payload bytes received per shard",
                &|i, _| i.bytes.to_string(),
            ),
            (
                "collectord_shard_final",
                "gauge",
                "1 once the shard declared its slice complete",
                &|i, _| (i.done as u8).to_string(),
            ),
            (
                "collectord_shard_heartbeat_age_seconds",
                "gauge",
                "seconds since the shard's last push (stall detection)",
                &|_, age| format!("{age:.3}"),
            ),
        ];
        for (name, kind, help, value) in series {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (label, info, age) in &shards {
                let _ = writeln!(
                    out,
                    "{name}{{shard=\"{}\"}} {}",
                    escape_label_value(label),
                    value(info, *age)
                );
            }
        }
        // Sparse series: only shards with a usable rate / telemetry
        // emit samples, so a fresh or telemetry-less shard contributes
        // nothing rather than a fake zero.
        let rated: Vec<_> = shards
            .iter()
            .filter_map(|(l, i, _)| i.best_rate_dps().map(|r| (l, r)))
            .collect();
        if !rated.is_empty() {
            let _ = writeln!(
                out,
                "# HELP collectord_shard_devices_per_sec devices/sec per shard \
                 (push-delta derived, falling back to self-reported)"
            );
            let _ = writeln!(out, "# TYPE collectord_shard_devices_per_sec gauge");
            for (label, rate) in rated {
                let _ = writeln!(
                    out,
                    "collectord_shard_devices_per_sec{{shard=\"{}\"}} {rate:.3}",
                    escape_label_value(label)
                );
            }
        }
        let telemetered: Vec<_> = shards
            .iter()
            .filter_map(|(l, i, _)| i.telemetry.as_ref().map(|t| (l, t)))
            .collect();
        if !telemetered.is_empty() {
            let _ = writeln!(
                out,
                "# HELP collectord_shard_queue_depth reorder-buffer depth self-reported by the shard"
            );
            let _ = writeln!(out, "# TYPE collectord_shard_queue_depth gauge");
            for (label, t) in &telemetered {
                let _ = writeln!(
                    out,
                    "collectord_shard_queue_depth{{shard=\"{}\"}} {}",
                    escape_label_value(label),
                    t.queue_depth
                );
            }
            if telemetered.iter().any(|(_, t)| !t.phase_self_ns.is_empty()) {
                let _ = writeln!(
                    out,
                    "# HELP collectord_shard_phase_self_ns self time per engine phase, nanoseconds"
                );
                let _ = writeln!(out, "# TYPE collectord_shard_phase_self_ns gauge");
                for (label, t) in &telemetered {
                    for (phase, ns) in &t.phase_self_ns {
                        let _ = writeln!(
                            out,
                            "collectord_shard_phase_self_ns{{shard=\"{}\",phase=\"{}\"}} {ns}",
                            escape_label_value(label),
                            escape_label_value(phase)
                        );
                    }
                }
            }
        }
        out
    }
}

fn shard_rows(ingest: &Ingest) -> Vec<(String, ShardInfo, f64)> {
    ingest
        .shards()
        .iter()
        .map(|(label, info)| {
            (
                label.clone(),
                info.clone(),
                info.last_push.elapsed().as_secs_f64(),
            )
        })
        .collect()
}
