//! The `/` status dashboard: one self-contained HTML page (inline CSS,
//! zero JavaScript beyond a meta-refresh) showing campaign progress,
//! per-shard ingest state, and per-stratum delay quantiles from the
//! live view.

use fleet::{CampaignReport, CampaignSpec};

use crate::ingest::ShardInfo;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_q(s: &am_stats::QuantileSketch, p: f64) -> String {
    match s.quantile(p) {
        Some(v) => format!("{v:.2}"),
        None => "—".to_string(),
    }
}

fn fmt_eta(secs: f64) -> String {
    if secs >= 3600.0 {
        format!(
            "{:.0}h{:02.0}m",
            (secs / 3600.0).floor(),
            (secs % 3600.0) / 60.0
        )
    } else if secs >= 60.0 {
        format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else {
        format!("{secs:.0}s")
    }
}

/// Render the dashboard for the current ingest state. `view` is the
/// live campaign report, `shards` the per-shard bookkeeping with
/// heartbeat ages already computed (label, info, age in seconds).
/// `throughput_dps` and `eta_secs` come from the ingest's push-delta
/// rate derivation; `eta_secs == None` renders as "—" (no live shard
/// has a usable rate yet).
pub fn render(
    spec: &CampaignSpec,
    view: &CampaignReport,
    shards: &[(String, ShardInfo, f64)],
    devices_absorbed: u64,
    complete: bool,
    throughput_dps: f64,
    eta_secs: Option<f64>,
) -> String {
    let devices_view: u64 = view.devices;
    let pct = |n: u64| {
        if spec.devices == 0 {
            100.0
        } else {
            100.0 * n as f64 / spec.devices as f64
        }
    };

    let mut shard_rows = String::new();
    for (label, info, age) in shards {
        let end = info.range_start + info.devices_pushed;
        let rate = match info.best_rate_dps() {
            Some(r) => format!("{r:.0}"),
            None => "—".to_string(),
        };
        let queue = match &info.telemetry {
            Some(t) => t.queue_depth.to_string(),
            None => "—".to_string(),
        };
        shard_rows.push_str(&format!(
            "<tr><td><code>{}</code></td><td>{}..{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{:.1}&nbsp;s</td><td>{}</td></tr>\n",
            esc(label),
            info.range_start,
            end,
            info.devices_pushed,
            rate,
            queue,
            info.pushes,
            if info.done { "final" } else { "running" },
            age,
            info.bytes,
        ));
    }
    if shard_rows.is_empty() {
        shard_rows.push_str("<tr><td colspan=\"9\"><em>no shards have pushed yet</em></td></tr>\n");
    }

    let mut stratum_rows = String::new();
    for s in &view.strata {
        stratum_rows.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.1}%</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            esc(&s.name),
            s.devices,
            s.probes_sent,
            100.0 * s.du.completion(),
            fmt_q(&s.du, 0.5),
            fmt_q(&s.du, 0.9),
            fmt_q(&s.du, 0.99),
            fmt_q(&s.dn, 0.5),
            fmt_q(&s.overhead, 0.5),
        ));
    }

    format!(
        r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>collectord — campaign {seed}</title>
<style>
body {{ font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 70rem;
       color: #1a1a2e; padding: 0 1rem; }}
h1 {{ font-size: 1.3rem; }} h2 {{ font-size: 1.05rem; margin-top: 1.6rem; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ text-align: right; padding: .25rem .6rem; border-bottom: 1px solid #ddd; }}
th:first-child, td:first-child {{ text-align: left; }}
th {{ background: #f4f4f8; }}
.bar {{ background: #e8e8ef; border-radius: 4px; height: 1.1rem; overflow: hidden; }}
.bar > div {{ background: {bar_color}; height: 100%; }}
.meta {{ color: #666; }}
code {{ background: #f4f4f8; padding: 0 .25rem; border-radius: 3px; }}
</style>
</head>
<body>
<h1>collectord — campaign seed {seed}, {devices} devices × {k} probes</h1>
<p class="meta">spec fingerprint <code>{fp:016x}</code> ·
{absorbed} absorbed gap-free ({apct:.1}%) · {viewed} in view ({vpct:.1}%) ·
{rate} devices/s · ETA {eta} ·
state: <strong>{state}</strong> · auto-refreshes every 2&nbsp;s</p>
<div class="bar"><div style="width:{vpct:.2}%"></div></div>
<h2>Shards</h2>
<table>
<tr><th>shard</th><th>range</th><th>devices</th><th>dev/s</th><th>queue</th>
<th>pushes</th><th>state</th><th>heartbeat age</th><th>bytes</th></tr>
{shard_rows}</table>
<h2>Per-stratum quantiles (live view, ms)</h2>
<table>
<tr><th>stratum</th><th>devices</th><th>probes</th><th>compl</th>
<th>du p50</th><th>du p90</th><th>du p99</th><th>dn p50</th><th>ovh p50</th></tr>
{stratum_rows}<tr><th>population</th><th>{viewed}</th>
<th>{probes}</th><th>{compl:.1}%</th>
<th>{dup50}</th><th>{dup90}</th><th>{dup99}</th><th></th><th>{ovhp50}</th></tr>
</table>
<p class="meta">endpoints: <a href="/snapshot">/snapshot</a> ·
<a href="/status">/status</a> · <a href="/metrics">/metrics</a> ·
<a href="/healthz">/healthz</a></p>
</body>
</html>
"#,
        seed = spec.seed,
        devices = spec.devices,
        k = spec.probes_per_device,
        fp = spec.fingerprint(),
        absorbed = devices_absorbed,
        apct = pct(devices_absorbed),
        viewed = devices_view,
        vpct = pct(devices_view),
        state = if complete { "complete" } else { "collecting" },
        rate = if throughput_dps > 0.0 {
            format!("{throughput_dps:.0}")
        } else {
            "—".to_string()
        },
        eta = if complete {
            "done".to_string()
        } else {
            match eta_secs {
                Some(s) => fmt_eta(s),
                None => "—".to_string(),
            }
        },
        bar_color = if complete { "#2e9e5b" } else { "#4a6fd4" },
        shard_rows = shard_rows,
        stratum_rows = stratum_rows,
        probes = view.strata.iter().map(|s| s.probes_sent).sum::<u64>(),
        compl = 100.0 * view.du_all.completion(),
        dup50 = fmt_q(&view.du_all, 0.5),
        dup90 = fmt_q(&view.du_all, 0.9),
        dup99 = fmt_q(&view.du_all, 0.99),
        ovhp50 = fmt_q(&view.overhead_all, 0.5),
    )
}
