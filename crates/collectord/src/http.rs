//! A hand-rolled, dependency-free HTTP/1.1 sliver — just enough to
//! serve `GET` endpoints from the daemon: request-line parsing, a
//! bounded header read, and `Content-Length`/`Connection: close`
//! responses. In the same spirit as `obs`'s own JSON parser: the
//! container has no HTTP crate, and the daemon needs four read-only
//! routes, not a framework.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + headers). Anything larger
/// is rejected with `431` — the daemon only serves tiny GETs.
pub const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET`, `HEAD`, …).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
}

/// Read and parse one request head from `stream`. Returns `None` when
/// the peer closed without sending a full request or the request is
/// malformed/oversized (the caller just drops the connection or has
/// already had an error response written).
pub fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_REQUEST_BYTES {
            let _ = respond(stream, 431, "text/plain", "request head too large\n");
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let path = target.split('?').next().unwrap_or("/").to_string();
    Some(Request { method, path })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write one complete response and flush. `Connection: close` — the
/// daemon serves one response per connection, which keeps the handler
/// loop trivial and is exactly what `curl` and Prometheus scrapers do.
pub fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        code,
        status_text(code),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_a_get_request_and_strips_query() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /snapshot?pretty=1 HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/snapshot");
        respond(&mut stream, 200, "text/plain", "hi").unwrap();
        drop(stream);
        let out = client.join().unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Length: 2\r\n"), "{out}");
        assert!(out.ends_with("\r\n\r\nhi"), "{out}");
    }

    #[test]
    fn garbage_request_line_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
        });
        let (mut stream, _) = listener.accept().unwrap();
        assert!(read_request(&mut stream).is_none());
        drop(stream);
        client.join().unwrap();
    }
}
