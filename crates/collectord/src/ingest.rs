//! The ingest state machine: cumulative shard partials in, a gap-free
//! merged campaign out.
//!
//! Shards push *cumulative* state — each push for a given
//! `range_start` supersedes the previous one — so the protocol is
//! naturally idempotent under loss, duplication, and reordering:
//!
//! * a re-sent push is a [`PushOutcome::Duplicate`] no-op,
//! * a reordered older cumulative push is [`PushOutcome::Stale`] and
//!   dropped,
//! * a push for a slice that collides with a different shard's slice is
//!   a typed [`IngestError::Overlap`] rejection.
//!
//! Only **final** slices (`final: true`, the shard's range complete)
//! fold into the merged collector, and only in device-index order —
//! the same fingerprint-validated [`fleet::Collector::absorb_state`]
//! algebra `repro fleet-merge` uses — so once every partition lands,
//! [`Ingest::snapshot_pretty`] is byte-identical to the one-shot merge
//! and to an uninterrupted single-process run. Mid-campaign, a *view*
//! overlays the buffered (non-final or out-of-order) slices on the
//! merged prefix so `/snapshot` and the dashboard always show current
//! totals.

use std::collections::BTreeMap;
use std::time::Instant;

use fleet::{CampaignSpec, Collector};
use obs::Json;
use wire::telemetry::ShardTelemetry;

use crate::protocol::{Ack, IngestError, PushOutcome};
use crate::store::{RecoveryInfo, Store, StoreError};

/// Shards whose last heartbeat is older than this are excluded from
/// throughput and ETA math: a stalled shard's historical rate says
/// nothing about when the campaign will finish.
pub const STALE_AFTER_SECS: f64 = 30.0;

/// Per-shard ingest bookkeeping, surfaced on `/metrics` (labelled
/// series) and the dashboard.
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// First device index of the shard's slice.
    pub range_start: u64,
    /// Devices covered by the shard's latest cumulative push.
    pub devices_pushed: u64,
    /// Pushes accepted from this shard (including duplicates/stale).
    pub pushes: u64,
    /// Payload bytes received from this shard.
    pub bytes: u64,
    /// Whether the shard declared its slice complete.
    pub done: bool,
    /// When the last push arrived (heartbeat for stall detection).
    pub last_push: Instant,
    /// Devices/sec derived from consecutive push deltas (`None` until
    /// two device-advancing pushes arrive far enough apart to divide
    /// safely).
    pub rate_dps: Option<f64>,
    /// The shard's self-reported live telemetry, when its engine sent
    /// any (worker rates, queue depth, profiling phase split).
    pub telemetry: Option<ShardTelemetry>,
}

impl ShardInfo {
    /// Best devices/sec estimate: the daemon-derived push-delta rate,
    /// falling back to the shard's self-reported figure.
    pub fn best_rate_dps(&self) -> Option<f64> {
        self.rate_dps.or_else(|| {
            self.telemetry
                .as_ref()
                .map(|t| t.devices_per_sec)
                .filter(|r| *r > 0.0)
        })
    }
}

struct Pending {
    collector: Collector,
    done: bool,
}

/// The daemon's campaign state. One `Ingest` per expected campaign;
/// pushes are validated against the campaign's
/// [`CampaignSpec::fingerprint`] before anything is merged.
pub struct Ingest {
    spec: CampaignSpec,
    /// Gap-free merged prefix: only final slices, in device order.
    merged: Collector,
    /// `(range_start, devices)` of every final slice already folded.
    absorbed: Vec<(u64, u64)>,
    /// Buffered cumulative slices keyed by `range_start`.
    pending: BTreeMap<u64, Pending>,
    /// Per-shard-label bookkeeping.
    shards: BTreeMap<String, ShardInfo>,
    /// Optional on-disk journal: accepted pushes persist here *before*
    /// they are acked, so an acked push survives a daemon kill.
    store: Option<Store>,
    /// What recovery restored, when this ingest came from a journal.
    recovery: Option<RecoveryInfo>,
    /// Set when a journal write failed after in-memory state already
    /// changed. While set, *every* push (even an idempotent duplicate)
    /// must first re-sync the full journal before it may be acked —
    /// otherwise a duplicate's ack would claim durability the disk
    /// never delivered.
    dirty: bool,
}

impl Ingest {
    /// An empty ingest for `spec`.
    pub fn new(spec: CampaignSpec) -> Ingest {
        let merged = Collector::new(&spec);
        Ingest {
            spec,
            merged,
            absorbed: Vec::new(),
            pending: BTreeMap::new(),
            shards: BTreeMap::new(),
            store: None,
            recovery: None,
            dirty: false,
        }
    }

    /// An ingest journaling to (and recovered from) `store`. Whatever
    /// the journal holds for `spec` — the merged prefix, its
    /// absorbed-slice ledger, buffered slices — is restored first;
    /// contiguous final slices that became foldable are compacted
    /// immediately. Every subsequent accepted push is persisted before
    /// it is acked.
    pub fn with_store(spec: CampaignSpec, store: Store) -> Result<Ingest, StoreError> {
        let recovered = store.recover(&spec)?;
        let merged = recovered.merged.unwrap_or_else(|| Collector::new(&spec));
        let mut pending = BTreeMap::new();
        for s in recovered.slices {
            pending.insert(
                s.start,
                Pending {
                    collector: s.collector,
                    done: s.done,
                },
            );
        }
        let mut ingest = Ingest {
            spec,
            merged,
            absorbed: recovered.absorbed,
            pending,
            shards: BTreeMap::new(),
            store: Some(store),
            recovery: Some(recovered.info),
            dirty: false,
        };
        // Buffered finals that are contiguous with the restored prefix
        // fold now, exactly as they would have on the next push.
        let folded = ingest.drain();
        ingest.persist(None, &folded)?;
        Ok(ingest)
    }

    /// Recovery provenance, when this ingest was restored from a
    /// journal (surfaced on `/status` and `/healthz`).
    pub fn recovery(&self) -> Option<&RecoveryInfo> {
        self.recovery.as_ref()
    }

    /// Persist the journal side of one accepted push (or of recovery
    /// compaction, with `pushed_start = None`): the merged prefix when
    /// the frontier advanced, the pushed slice if it is still buffered,
    /// and the removal of every slice file the drain folded.
    fn persist(&self, pushed_start: Option<u64>, folded: &[u64]) -> Result<(), StoreError> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        if !folded.is_empty() {
            store.write_merged(&self.merged, &self.absorbed)?;
        }
        if let Some(start) = pushed_start {
            if let Some(p) = self.pending.get(&start) {
                store.write_slice(&p.collector, p.done)?;
            }
        }
        for &s in folded {
            store.remove_slice(s)?;
        }
        Ok(())
    }

    /// Rewrite the whole journal from in-memory state — the recovery
    /// path for a previously failed incremental write. Slice files for
    /// slices that folded since are left behind; restart-recovery
    /// discards anything behind the merged frontier anyway.
    fn resync_store(&mut self) -> Result<(), StoreError> {
        if let Some(store) = &self.store {
            store.write_merged(&self.merged, &self.absorbed)?;
            for p in self.pending.values() {
                store.write_slice(&p.collector, p.done)?;
            }
        }
        self.dirty = false;
        Ok(())
    }

    /// Flush everything to the journal (merged prefix, every buffered
    /// slice, and a rendered `snapshot.json`) — the SIGTERM/SIGINT
    /// shutdown path. A no-op without a store.
    pub fn flush_to_store(&self) -> Result<(), StoreError> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        store.write_merged(&self.merged, &self.absorbed)?;
        for p in self.pending.values() {
            store.write_slice(&p.collector, p.done)?;
        }
        store.write_raw("snapshot.json", &self.snapshot_pretty())?;
        Ok(())
    }

    /// The campaign this ingest expects.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Devices folded into the gap-free merged prefix.
    pub fn devices_absorbed(&self) -> u64 {
        self.merged.devices_seen()
    }

    /// Devices in the live view: merged prefix plus buffered slices.
    pub fn devices_view(&self) -> u64 {
        self.merged.devices_seen()
            + self
                .pending
                .values()
                .map(|p| p.collector.devices_seen())
                .sum::<u64>()
    }

    /// Whether the whole population has been absorbed gap-free.
    pub fn complete(&self) -> bool {
        self.merged.devices_seen() == self.spec.devices
    }

    /// Per-shard bookkeeping, label-sorted.
    pub fn shards(&self) -> &BTreeMap<String, ShardInfo> {
        &self.shards
    }

    /// Ingest one push: validate, buffer or fold, and answer. `bytes`
    /// is the frame payload size (bookkeeping only). Rejected pushes
    /// leave every piece of campaign state untouched.
    pub fn push(
        &mut self,
        shard: &str,
        state: &Json,
        done: bool,
        bytes: u64,
    ) -> Result<Ack, IngestError> {
        // A previous journal write failed *after* in-memory state had
        // already changed. Until the journal is whole again no push may
        // be acked — not even an idempotent Duplicate, whose ack would
        // otherwise claim a durability the disk never delivered.
        if self.dirty {
            self.resync_store()
                .map_err(|e| IngestError::Storage(e.to_string()))?;
        }
        let c = Collector::from_state_json(state).map_err(|e| IngestError::BadState(e.0))?;
        c.verify_spec(&self.spec)
            .map_err(|e| IngestError::SpecMismatch(e.0))?;
        let (start, count) = (c.range_start(), c.devices_seen());
        let end = start + count;
        if end > self.spec.devices {
            return Err(IngestError::RangeOutOfBounds {
                start,
                end,
                devices: self.spec.devices,
            });
        }

        let outcome = self.classify_and_store(start, count, c, done)?;
        if matches!(outcome, PushOutcome::Absorbed | PushOutcome::Buffered) {
            let folded = self.drain();
            // Durability before acknowledgement: if the journal cannot
            // hold the push, the shard gets a retryable `storage` error
            // and re-sends its cumulative state later.
            if let Err(e) = self.persist(Some(start), &folded) {
                self.dirty = true;
                return Err(IngestError::Storage(e.to_string()));
            }
        }
        self.note_shard(shard, start, count, done, bytes);

        // `Absorbed` only if the drain actually advanced past this
        // slice; a buffered-behind-a-gap final stays `Buffered`.
        let outcome = match outcome {
            PushOutcome::Buffered if self.merged.next_index() >= end && count > 0 => {
                PushOutcome::Absorbed
            }
            o => o,
        };
        Ok(Ack {
            outcome,
            devices_absorbed: self.devices_absorbed(),
            devices_view: self.devices_view(),
            complete: self.complete(),
        })
    }

    /// Decide what to do with a validated slice and stash it if it is
    /// new. Returns `Buffered` for anything that may drain, or the
    /// idempotent outcomes.
    fn classify_and_store(
        &mut self,
        start: u64,
        count: u64,
        c: Collector,
        done: bool,
    ) -> Result<PushOutcome, IngestError> {
        // Slices at or behind the merged frontier: either a re-send of
        // a folded final (idempotent) or a genuine collision.
        if start < self.merged.next_index() {
            if let Some(&(_, folded)) = self.absorbed.iter().find(|&&(s, _)| s == start) {
                if count <= folded {
                    return Ok(if count == folded && done {
                        PushOutcome::Duplicate
                    } else {
                        PushOutcome::Stale
                    });
                }
                // Claims more devices than the final slice we folded —
                // two shards disagree about this range.
                return Err(IngestError::Overlap {
                    start,
                    devices: count,
                });
            }
            return Err(IngestError::Overlap {
                start,
                devices: count,
            });
        }

        // Collision checks against buffered neighbours (other shards'
        // slices are disjoint; same-start pushes supersede each other).
        if let Some((&ps, prev)) = self.pending.range(..start).next_back() {
            if ps + prev.collector.devices_seen() > start {
                return Err(IngestError::Overlap {
                    start,
                    devices: count,
                });
            }
        }
        if let Some((&ns, _)) = self.pending.range(start + 1..).next() {
            if start + count > ns {
                return Err(IngestError::Overlap {
                    start,
                    devices: count,
                });
            }
        }

        match self.pending.get(&start) {
            Some(prev) if count < prev.collector.devices_seen() => Ok(PushOutcome::Stale),
            Some(prev) if count == prev.collector.devices_seen() => {
                // Same coverage: keep the final flag if either push had
                // it (a reordered non-final after the final must not
                // un-finalize the slice).
                let keep_done = prev.done || done;
                self.pending.insert(
                    start,
                    Pending {
                        collector: c,
                        done: keep_done,
                    },
                );
                Ok(if done {
                    PushOutcome::Duplicate
                } else {
                    PushOutcome::Stale
                })
            }
            _ => {
                self.pending.insert(start, Pending { collector: c, done });
                Ok(PushOutcome::Buffered)
            }
        }
    }

    /// Fold every contiguous final slice at the merged frontier.
    /// Returns the `range_start` of each slice folded, so the journal
    /// can compact them (rewrite `merged.json`, drop their slice
    /// files).
    fn drain(&mut self) -> Vec<u64> {
        let mut folded = Vec::new();
        while let Some(p) = self.pending.get(&self.merged.next_index()) {
            if !p.done {
                break;
            }
            let start = self.merged.next_index();
            let p = self.pending.remove(&start).expect("checked above");
            let count = p.collector.devices_seen();
            self.merged
                .absorb_state(&p.collector)
                .expect("contiguous final slice always folds");
            self.absorbed.push((start, count));
            folded.push(start);
        }
        folded
    }

    fn note_shard(&mut self, shard: &str, start: u64, count: u64, done: bool, bytes: u64) {
        let now = Instant::now();
        let info = self.shards.entry(shard.to_string()).or_insert(ShardInfo {
            range_start: start,
            devices_pushed: 0,
            pushes: 0,
            bytes: 0,
            done: false,
            last_push: now,
            rate_dps: None,
            telemetry: None,
        });
        // Devices/sec from consecutive push deltas. Guard the division:
        // a burst of pushes in the same instant (dt ≈ 0) or a push that
        // advances nothing keeps the previous estimate instead of
        // producing ∞/NaN from a stale heartbeat delta.
        if count > info.devices_pushed {
            let dt = now.duration_since(info.last_push).as_secs_f64();
            if dt > 1e-3 && info.pushes > 0 {
                info.rate_dps = Some((count - info.devices_pushed) as f64 / dt);
            }
        }
        info.range_start = start;
        info.devices_pushed = info.devices_pushed.max(count);
        info.pushes += 1;
        info.bytes += bytes;
        info.done |= done;
        info.last_push = now;
    }

    /// Attach a shard's self-reported telemetry (the optional
    /// `telemetry` field of a push). Bookkeeping only — never touches
    /// campaign state.
    pub fn note_telemetry(&mut self, shard: &str, telemetry: ShardTelemetry) {
        if let Some(info) = self.shards.get_mut(shard) {
            info.telemetry = Some(telemetry);
        }
    }

    /// Campaign-wide devices/sec: the sum of every live (not done, not
    /// stale) shard's best rate estimate.
    pub fn throughput_dps(&self) -> f64 {
        // fold, not sum: f64's Sum identity is -0.0, which would print
        // as "-0.000" on /metrics when no shard is live.
        self.shards
            .values()
            .filter(|i| !i.done && i.last_push.elapsed().as_secs_f64() < STALE_AFTER_SECS)
            .filter_map(ShardInfo::best_rate_dps)
            .fold(0.0, |acc, r| acc + r)
    }

    /// Estimated seconds until the whole population is covered, from
    /// the live view and the current throughput. `None` when no live
    /// shard has a usable rate (all stalled, done, or too young) — the
    /// caller renders "unknown" instead of dividing by zero.
    pub fn eta_secs(&self) -> Option<f64> {
        if self.complete() {
            return Some(0.0);
        }
        let rate = self.throughput_dps();
        if rate <= 1e-9 {
            return None;
        }
        let remaining = self.spec.devices.saturating_sub(self.devices_view());
        Some(remaining as f64 / rate)
    }

    /// The live view: the merged prefix plus every buffered slice, in
    /// device order. Exact in every count/sketch/histogram; only the
    /// registry sample reservoirs can differ from a gap-free run while
    /// gaps remain (see [`Collector::absorb_state_for_view`]). Once
    /// [`Ingest::complete`], the view *is* the merged collector.
    pub fn view(&self) -> Collector {
        let mut v = Collector::from_state_json(&self.merged.state_json())
            .expect("collector state round-trips");
        for p in self.pending.values() {
            v.absorb_state_for_view(&p.collector)
                .expect("buffered slices are validated disjoint");
        }
        v
    }

    /// The `/snapshot` body: the live campaign report, pretty-printed.
    /// Byte-identical to `repro fleet-merge` output (and to an
    /// uninterrupted single-process `fleet.json`) once all partitions
    /// have landed.
    pub fn snapshot_pretty(&self) -> String {
        use obs::ToJson;
        self.view().report().to_json().to_string_pretty()
    }
}
