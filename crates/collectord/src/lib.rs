//! `collectord` — the campaign control plane: a streaming collector
//! daemon for sharded fleet campaigns.
//!
//! Shards (separate processes, potentially separate machines) push
//! cumulative campaign-state partials over a length-prefixed JSON wire
//! protocol ([`wire::framing`] + [`protocol`]); the daemon validates
//! every push against the expected [`fleet::CampaignSpec`] fingerprint
//! and folds final slices through the same merge algebra as
//! `repro fleet-merge` ([`ingest`]). HTTP endpoints serve the live
//! state ([`daemon`]):
//!
//! | endpoint    | body |
//! |-------------|------|
//! | `/`         | self-contained HTML status dashboard |
//! | `/snapshot` | live campaign JSON — byte-identical to a single-process `fleet.json` once all partitions land |
//! | `/status`   | machine-readable progress + per-shard heartbeats |
//! | `/metrics`  | Prometheus text exposition (daemon registry + per-shard labelled series) |
//! | `/healthz`  | liveness probe |
//!
//! Everything is `std`-only: hand-rolled HTTP ([`http`]), the obs JSON
//! tree on the wire, `TcpListener` + thread-per-connection serving.

#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod dashboard;
pub mod http;
pub mod ingest;
pub mod protocol;

pub use client::{PushClient, PushError};
pub use daemon::Daemon;
pub use ingest::{Ingest, ShardInfo};
pub use protocol::{Ack, IngestError, Push, PushOutcome};
