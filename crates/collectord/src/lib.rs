//! `collectord` — the campaign control plane: a streaming collector
//! daemon for sharded fleet campaigns.
//!
//! Shards (separate processes, potentially separate machines) push
//! cumulative campaign-state partials over a length-prefixed JSON wire
//! protocol ([`wire::framing`] + [`protocol`]); the daemon validates
//! every push against the expected [`fleet::CampaignSpec`] fingerprint
//! and folds final slices through the same merge algebra as
//! `repro fleet-merge` ([`ingest`]). HTTP endpoints serve the live
//! state ([`daemon`]):
//!
//! | endpoint    | body |
//! |-------------|------|
//! | `/`         | self-contained HTML status dashboard |
//! | `/snapshot` | live campaign JSON — byte-identical to a single-process `fleet.json` once all partitions land |
//! | `/status`   | machine-readable progress + per-shard heartbeats |
//! | `/metrics`  | Prometheus text exposition (daemon registry + per-shard labelled series) |
//! | `/healthz`  | liveness probe |
//!
//! Everything is `std`-only: hand-rolled HTTP ([`http`]), the obs JSON
//! tree on the wire, `TcpListener` + thread-per-connection serving.
//!
//! The control plane is **crash-safe**: with `--state-dir` the daemon
//! journals every accepted push to disk *before* acking it ([`store`])
//! and recovers the full ingest state machine on restart; push clients
//! wrap the wire protocol in seeded reconnect/backoff loops
//! ([`resilient`]); and [`wire::chaos`] + `repro chaos` exercise the
//! whole loop under injected faults and daemon kills.

#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod dashboard;
pub mod http;
pub mod ingest;
pub mod protocol;
pub mod resilient;
pub mod signals;
pub mod store;

pub use client::{PushClient, PushError};
pub use daemon::Daemon;
pub use ingest::{Ingest, ShardInfo};
pub use protocol::{Ack, IngestError, Push, PushOutcome};
pub use resilient::{Delivery, PushStats, ResilientPushClient, RetryPolicy};
pub use store::{RecoveryInfo, Store, StoreError};
