//! The push protocol: JSON documents in length-prefixed frames
//! ([`wire::framing`]).
//!
//! One message per frame, tagged by a `type` field:
//!
//! * `push` (client → daemon): a cumulative campaign-state partial for
//!   one shard — `{"type":"push","shard":"0/2","final":false,"state":{…}}`
//!   where `state` is a full [`fleet::Collector::state_json`] document
//!   covering the shard's contiguous prefix so far. `final: true` marks
//!   the shard's slice complete.
//! * `ack` (daemon → client): the push was accepted —
//!   `{"type":"ack","status":"absorbed","devices_absorbed":100,
//!   "devices_view":150,"complete":false}`.
//! * `error` (daemon → client): the push was rejected with a typed
//!   [`IngestError`] — `{"type":"error","code":"spec-mismatch",
//!   "message":"…"}`.
//!
//! The daemon never trusts the frame: every failure mode (non-JSON
//! payload, missing fields, a state document from the wrong campaign,
//! out-of-range or overlapping device slices) maps to a distinct
//! [`IngestError`] variant whose `code` travels back on the wire.

use obs::Json;
use wire::telemetry::ShardTelemetry;

/// A typed rejection of one push. The daemon answers with the
/// [`IngestError::code`] and message; the campaign state it holds is
/// untouched by a rejected push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The frame payload is not a well-formed `push` document.
    BadFrame(String),
    /// The embedded campaign-state document does not parse.
    BadState(String),
    /// The state belongs to a different campaign (seed or
    /// [`fleet::CampaignSpec::fingerprint`] mismatch).
    SpecMismatch(String),
    /// The state's device slice falls outside the campaign population.
    RangeOutOfBounds {
        /// First device index of the pushed slice.
        start: u64,
        /// One past the last device index of the pushed slice.
        end: u64,
        /// Campaign population size.
        devices: u64,
    },
    /// The state's device slice overlaps a slice already absorbed or
    /// buffered from a different shard.
    Overlap {
        /// First device index of the pushed slice.
        start: u64,
        /// Devices the pushed slice covers.
        devices: u64,
    },
    /// The daemon could not journal the push durably (`--state-dir`
    /// write failed). Retryable: the shard's next cumulative push
    /// covers the same devices.
    Storage(String),
    /// The connection sat idle (or mid-frame) past the daemon's ingest
    /// read/write timeout and was dropped. Retryable: reconnect and
    /// re-push.
    ConnTimeout,
}

impl IngestError {
    /// Stable wire code for this error variant.
    pub fn code(&self) -> &'static str {
        match self {
            IngestError::BadFrame(_) => "bad-frame",
            IngestError::BadState(_) => "bad-state",
            IngestError::SpecMismatch(_) => "spec-mismatch",
            IngestError::RangeOutOfBounds { .. } => "range-out-of-bounds",
            IngestError::Overlap { .. } => "overlap",
            IngestError::Storage(_) => "storage",
            IngestError::ConnTimeout => "conn-timeout",
        }
    }

    /// Whether a client should retry after this rejection. Transient
    /// daemon-side conditions (journal write failure, idle-timeout
    /// disconnect) clear on their own; everything else means the push
    /// itself is wrong and a re-send can only fail identically.
    pub fn is_retryable(&self) -> bool {
        matches!(self, IngestError::Storage(_) | IngestError::ConnTimeout)
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::BadFrame(m) => write!(f, "bad push frame: {m}"),
            IngestError::BadState(m) => write!(f, "bad campaign state: {m}"),
            IngestError::SpecMismatch(m) => write!(f, "campaign spec mismatch: {m}"),
            IngestError::RangeOutOfBounds {
                start,
                end,
                devices,
            } => write!(
                f,
                "device slice {start}..{end} is out of bounds for a {devices}-device campaign"
            ),
            IngestError::Overlap { start, devices } => write!(
                f,
                "device slice starting at {start} ({devices} devices) overlaps \
                 an already-ingested slice"
            ),
            IngestError::Storage(m) => write!(f, "ingest journal write failed: {m}"),
            IngestError::ConnTimeout => {
                write!(f, "ingest connection timed out waiting for a frame")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// What the daemon did with an accepted push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The slice (and possibly queued successors) folded into the
    /// merged campaign state.
    Absorbed,
    /// The slice is buffered until the slices before it land.
    Buffered,
    /// The exact slice was already ingested — idempotent no-op.
    Duplicate,
    /// A cumulative push older than what the daemon already holds for
    /// that shard — dropped, the newer state wins.
    Stale,
}

impl PushOutcome {
    /// Stable wire status for this outcome.
    pub fn status(&self) -> &'static str {
        match self {
            PushOutcome::Absorbed => "absorbed",
            PushOutcome::Buffered => "buffered",
            PushOutcome::Duplicate => "duplicate",
            PushOutcome::Stale => "stale",
        }
    }
}

/// The daemon's answer to an accepted push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// What happened to the pushed slice.
    pub outcome: PushOutcome,
    /// Devices folded into the merged (gap-free, byte-exact) state.
    pub devices_absorbed: u64,
    /// Devices in the live view (merged + buffered slices).
    pub devices_view: u64,
    /// Whether the whole campaign population has been absorbed.
    pub complete: bool,
}

/// One parsed `push` message.
#[derive(Debug, Clone)]
pub struct Push {
    /// Shard label (free-form; conventionally `"i/k"`).
    pub shard: String,
    /// Whether the shard's slice is complete.
    pub done: bool,
    /// The embedded campaign-state document.
    pub state: Json,
    /// Live engine telemetry riding this push, if the shard sent any.
    /// Optional on the wire: pushes from older clients parse with
    /// `None` and are handled identically.
    pub telemetry: Option<ShardTelemetry>,
}

/// Build the wire document for one push.
pub fn push_doc(shard: &str, done: bool, state: &Json) -> Json {
    let mut doc = Json::object();
    doc.set("type", "push");
    doc.set("shard", shard);
    doc.set("final", done);
    doc.set("state", state.clone());
    doc
}

/// Build the wire document for one push carrying live telemetry.
pub fn push_doc_with_telemetry(
    shard: &str,
    done: bool,
    state: &Json,
    telemetry: Option<&ShardTelemetry>,
) -> Json {
    let mut doc = push_doc(shard, done, state);
    if let Some(t) = telemetry {
        doc.set("telemetry", t.to_json());
    }
    doc
}

/// Parse a frame payload as a `push` message.
pub fn parse_push(payload: &[u8]) -> Result<Push, IngestError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| IngestError::BadFrame("payload is not UTF-8".to_string()))?;
    let doc = Json::parse(text)
        .map_err(|e| IngestError::BadFrame(format!("payload is not JSON: {e}")))?;
    match doc.get("type").and_then(Json::as_str) {
        Some("push") => {}
        Some(other) => {
            return Err(IngestError::BadFrame(format!(
                "expected a push message, got type `{other}`"
            )))
        }
        None => return Err(IngestError::BadFrame("missing `type` field".to_string())),
    }
    let shard = doc
        .get("shard")
        .and_then(Json::as_str)
        .ok_or_else(|| IngestError::BadFrame("missing `shard` field".to_string()))?
        .to_string();
    let done = match doc.get("final") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(IngestError::BadFrame("missing `final` field".to_string())),
    };
    let state = doc
        .get("state")
        .cloned()
        .ok_or_else(|| IngestError::BadFrame("missing `state` field".to_string()))?;
    // Telemetry is advisory; anything malformed degrades to defaults
    // rather than rejecting the push (the state is what matters).
    let telemetry = doc.get("telemetry").map(ShardTelemetry::from_json);
    Ok(Push {
        shard,
        done,
        state,
        telemetry,
    })
}

/// Build the wire document for an ack.
pub fn ack_doc(ack: &Ack) -> Json {
    let mut doc = Json::object();
    doc.set("type", "ack");
    doc.set("status", ack.outcome.status());
    doc.set("devices_absorbed", ack.devices_absorbed);
    doc.set("devices_view", ack.devices_view);
    doc.set("complete", ack.complete);
    doc
}

/// Build the wire document for a typed rejection.
pub fn error_doc(err: &IngestError) -> Json {
    let mut doc = Json::object();
    doc.set("type", "error");
    doc.set("code", err.code());
    doc.set("message", err.to_string());
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_round_trips() {
        let mut state = Json::object();
        state.set("format", "acutemon-fleet-campaign-state");
        let doc = push_doc("1/2", true, &state);
        let p = parse_push(doc.to_string().as_bytes()).unwrap();
        assert_eq!(p.shard, "1/2");
        assert!(p.done);
        assert_eq!(
            p.state.get("format").and_then(Json::as_str),
            Some("acutemon-fleet-campaign-state")
        );
        assert!(p.telemetry.is_none(), "no telemetry field → None");
    }

    #[test]
    fn telemetry_rides_the_push_optionally() {
        let state = Json::object();
        let t = ShardTelemetry {
            devices_per_sec: 123.5,
            workers: 2,
            per_worker_devices: vec![7, 5],
            queue_depth: 3,
            phase_self_ns: vec![("des".to_string(), 42)],
        };
        let doc = push_doc_with_telemetry("0/2", false, &state, Some(&t));
        let p = parse_push(doc.to_string().as_bytes()).unwrap();
        assert_eq!(p.telemetry, Some(t));

        // Without telemetry the document is byte-compatible with the
        // old protocol.
        let plain = push_doc_with_telemetry("0/2", false, &state, None);
        assert_eq!(
            plain.to_string(),
            push_doc("0/2", false, &state).to_string()
        );
    }

    #[test]
    fn bad_frames_are_typed() {
        assert_eq!(parse_push(&[0xFF, 0xFE]).unwrap_err().code(), "bad-frame");
        assert_eq!(parse_push(b"not json").unwrap_err().code(), "bad-frame");
        assert_eq!(parse_push(b"{}").unwrap_err().code(), "bad-frame");
        assert_eq!(
            parse_push(br#"{"type":"ack"}"#).unwrap_err().code(),
            "bad-frame"
        );
        assert_eq!(
            parse_push(br#"{"type":"push","shard":"0/1"}"#)
                .unwrap_err()
                .code(),
            "bad-frame"
        );
    }

    #[test]
    fn error_docs_carry_code_and_message() {
        let e = IngestError::Overlap {
            start: 10,
            devices: 5,
        };
        let doc = error_doc(&e);
        assert_eq!(doc.get("code").and_then(Json::as_str), Some("overlap"));
        assert!(doc
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("overlaps"));
    }
}
