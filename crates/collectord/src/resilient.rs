//! The reconnecting push client: capped exponential backoff with
//! deterministic jitter, automatic re-dial and re-send, and a degraded
//! mode that keeps a campaign running when the daemon is unreachable.
//!
//! Re-sending after a lost ack is *safe by construction*: pushes carry
//! cumulative shard state and the daemon's ingest is idempotent (a
//! re-send classifies as `duplicate`, an older reordered push as
//! `stale`), so the client never needs to know whether a failed push
//! was applied before the connection died — it just pushes the latest
//! cumulative state again.
//!
//! Failure handling is split by what a retry can fix
//! ([`crate::PushError::is_retryable`]):
//!
//! * transient transport failures (dead socket, torn frame, daemon
//!   restart, `storage`/`conn-timeout` rejections) → reconnect and
//!   retry with backoff; mid-run pushes that exhaust their attempts are
//!   **dropped** (the campaign keeps running, the next push covers the
//!   same devices), final pushes get a larger budget and fail the shard
//!   only when it is truly exhausted;
//! * typed daemon rejections (`spec-mismatch`, `overlap`,
//!   `range-out-of-bounds`, …) → fail immediately; every retry would be
//!   rejected identically.
//!
//! Backoff is the PR-3 retry shape — `base × 2^(attempt−1)` capped,
//! plus `uniform(0, backoff/2)` jitter — driven by
//! [`fleet::splitmix64`] from a caller-provided seed, so two runs of
//! the same campaign sleep the same schedule.

use std::net::TcpStream;
use std::time::Duration;

use fleet::Collector;
use wire::chaos::{ChaosPlan, ChaosStream};
use wire::telemetry::ShardTelemetry;

use crate::client::{PushClient, PushError};
use crate::protocol::Ack;

/// When and how long to back off between push attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First-retry backoff; attempt *n* waits `base × 2^(n−1)` plus
    /// jitter, capped at [`RetryPolicy::cap`].
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Attempts per mid-run push before it is dropped (degraded mode).
    pub max_attempts: u32,
    /// Attempts for a shard's **final** push before the shard fails —
    /// larger than [`RetryPolicy::max_attempts`] because a dropped
    /// final push has no later push to supersede it.
    pub max_final_attempts: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// The production defaults: 200 ms base, 5 s cap, 4 mid-run
    /// attempts, 20 final attempts.
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(200),
            cap: Duration::from_secs(5),
            max_attempts: 4,
            max_final_attempts: 20,
            seed,
        }
    }

    /// The backoff before retry number `attempt` (1-based: the sleep
    /// after the first failure is `attempt = 1`), threading the jitter
    /// rng state through. Pure — same `(policy, attempt, rng)` in, same
    /// `(delay, rng)` out — so retry schedules are reproducible.
    pub fn delay(&self, attempt: u32, rng: u64) -> (Duration, u64) {
        let exp = attempt.saturating_sub(1).min(16);
        let backoff = self.base.saturating_mul(1u32 << exp).min(self.cap);
        let rng = fleet::splitmix64(rng);
        let half = (backoff.as_nanos() as u64 / 2).max(1);
        let jitter = Duration::from_nanos(rng % half);
        (backoff.saturating_add(jitter).min(self.cap), rng)
    }
}

/// What happened to one push, from the campaign's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The daemon acked the push (possibly after reconnects).
    Delivered(Ack),
    /// Degraded mode: every attempt failed on a *mid-run* push, so it
    /// was dropped. Safe — the shard's next cumulative push covers the
    /// same devices — but counted and logged.
    Dropped {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

/// Push-path bookkeeping, for operator logs and the chaos soak's
/// accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushStats {
    /// Pushes acked by the daemon.
    pub delivered: u64,
    /// Mid-run pushes dropped in degraded mode.
    pub dropped: u64,
    /// Re-dials after the first connection (includes reconnects after
    /// injected chaos resets and daemon restarts).
    pub reconnects: u64,
    /// Non-retryable typed rejections (each one also returned `Err`).
    pub rejected: u64,
}

/// A [`PushClient`] wrapped in reconnect/backoff/degraded-mode logic.
///
/// The underlying socket is always wrapped in a
/// [`wire::chaos::ChaosStream`]; without [`ResilientPushClient::with_chaos`]
/// the plan is [`ChaosPlan::none`] and bytes pass through untouched.
pub struct ResilientPushClient {
    addr: String,
    shard: String,
    policy: RetryPolicy,
    /// `(seed, min_bytes, spread)`: each new connection gets
    /// `ChaosPlan::seeded_reset(seed + connection_index, …)`.
    chaos: Option<(u64, u64, u64)>,
    conn: Option<PushClient<ChaosStream<TcpStream>>>,
    conns_opened: u64,
    rng: u64,
    stats: PushStats,
}

impl ResilientPushClient {
    /// A client for the daemon ingest listener at `addr`, identifying
    /// as `shard`. Connects lazily on the first push.
    pub fn new(addr: &str, shard: &str, policy: RetryPolicy) -> ResilientPushClient {
        let rng = fleet::splitmix64(policy.seed ^ 0xC011_EC7D);
        ResilientPushClient {
            addr: addr.to_string(),
            shard: shard.to_string(),
            policy,
            chaos: None,
            conn: None,
            conns_opened: 0,
            rng,
            stats: PushStats::default(),
        }
    }

    /// Inject seeded write-side connection resets: connection *i* dies
    /// somewhere in `min_bytes..min_bytes + spread` written bytes. The
    /// chaos soak uses this to sever live push connections on a
    /// deterministic schedule.
    pub fn with_chaos(mut self, seed: u64, min_bytes: u64, spread: u64) -> ResilientPushClient {
        self.chaos = Some((seed, min_bytes, spread));
        self
    }

    /// Push-path counters so far.
    pub fn stats(&self) -> PushStats {
        self.stats
    }

    /// Push one cumulative partial; see
    /// [`ResilientPushClient::push_with_telemetry`].
    pub fn push(&mut self, collector: &Collector, done: bool) -> Result<Delivery, PushError> {
        self.push_with_telemetry(collector, done, None)
    }

    /// Push one cumulative campaign-state partial, retrying through
    /// reconnects. Returns:
    ///
    /// * `Ok(Delivered)` — the daemon acked (maybe after retries);
    /// * `Ok(Dropped)` — mid-run push exhausted its attempts; degraded
    ///   mode, campaign continues;
    /// * `Err` — a non-retryable typed rejection, or a **final** push
    ///   that exhausted [`RetryPolicy::max_final_attempts`].
    pub fn push_with_telemetry(
        &mut self,
        collector: &Collector,
        done: bool,
        telemetry: Option<&ShardTelemetry>,
    ) -> Result<Delivery, PushError> {
        let budget = if done {
            self.policy.max_final_attempts
        } else {
            self.policy.max_attempts
        };
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let r = self
                .ensure_conn()
                .and_then(|c| c.push_with_telemetry(collector, done, telemetry));
            match r {
                Ok(ack) => {
                    self.stats.delivered += 1;
                    return Ok(Delivery::Delivered(ack));
                }
                Err(e) if !e.is_retryable() => {
                    // The push itself is wrong; retrying cannot help and
                    // the daemon said so in a typed way. Surface it.
                    self.stats.rejected += 1;
                    self.conn = None;
                    return Err(e);
                }
                Err(e) => {
                    // Transient: drop the (possibly half-dead) socket so
                    // the next attempt re-dials, then back off.
                    self.conn = None;
                    if attempts >= budget {
                        if done {
                            return Err(e);
                        }
                        self.stats.dropped += 1;
                        return Ok(Delivery::Dropped { attempts });
                    }
                    let (delay, rng) = self.policy.delay(attempts, self.rng);
                    self.rng = rng;
                    std::thread::sleep(delay);
                }
            }
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut PushClient<ChaosStream<TcpStream>>, PushError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            let plan = match self.chaos {
                Some((seed, min, spread)) => {
                    ChaosPlan::seeded_reset(seed.wrapping_add(self.conns_opened), min, spread)
                }
                None => ChaosPlan::none(),
            };
            if self.conns_opened > 0 {
                self.stats.reconnects += 1;
            }
            self.conns_opened += 1;
            self.conn = Some(PushClient::from_stream(
                ChaosStream::new(stream, plan),
                &self.shard,
            ));
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(900),
            max_attempts: 4,
            max_final_attempts: 8,
            seed: 1,
        };
        let mut rng = 7;
        let mut raw = Vec::new();
        for attempt in 1..=5 {
            let (d, next) = p.delay(attempt, rng);
            rng = next;
            raw.push(d);
        }
        // Jitter adds at most backoff/2, so attempt n's delay lives in
        // [base·2^(n−1), min(cap, 1.5·base·2^(n−1))] — and never over
        // the cap.
        assert!(raw[0] >= Duration::from_millis(100) && raw[0] <= Duration::from_millis(150));
        assert!(raw[1] >= Duration::from_millis(200) && raw[1] <= Duration::from_millis(300));
        assert!(raw[4] <= Duration::from_millis(900), "capped");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let p = RetryPolicy::new(42);
        let (a1, r1) = p.delay(1, 1000);
        let (a2, _) = p.delay(2, r1);
        let (b1, s1) = p.delay(1, 1000);
        let (b2, _) = p.delay(2, s1);
        assert_eq!((a1, a2), (b1, b2), "same rng state, same schedule");
        let (c1, _) = p.delay(1, 1001);
        assert_ne!(a1, c1, "different rng state, different jitter");
    }
}
