//! Minimal SIGTERM/SIGINT notification for the daemon's shutdown
//! flush, with no dependencies: a raw `signal(2)` handler that sets an
//! atomic flag, polled by a watcher thread.
//!
//! Only async-signal-safe work happens in the handler (one relaxed
//! atomic store); everything interesting — flushing the ingest journal,
//! writing the final `snapshot.json`, exiting — runs on the polling
//! thread. On non-Unix targets [`install`] is a no-op and the flag
//! simply never fires, so callers need no platform gates.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERMINATED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TERMINATED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install SIGTERM/SIGINT handlers that set the [`terminated`] flag.
/// Idempotent; a no-op on non-Unix targets.
pub fn install() {
    imp::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn terminated() -> bool {
    TERMINATED.load(Ordering::Relaxed)
}

/// Reset the flag — test support only (signals are process-global).
pub fn reset_for_test() {
    TERMINATED.store(false, Ordering::Relaxed);
}
