//! The on-disk ingest journal: durable campaign state across daemon
//! restarts.
//!
//! The store keeps one directory (`--state-dir`) holding:
//!
//! * `merged.json` — the gap-free merged prefix, wrapped in a
//!   versioned header that also records the `(range_start, devices)`
//!   list of every final slice already folded (so a re-sent final is
//!   still classified as a duplicate, not an overlap, after a
//!   restart). The embedded `state` document is the PR-5
//!   `acutemon-fleet-campaign-state` format, unchanged.
//! * `slice-<start>.json` — one file per buffered cumulative slice,
//!   wrapped with the same header plus the slice's `final` flag. A
//!   newer cumulative push for the same `range_start` atomically
//!   replaces the file; folding a slice into the merged prefix
//!   *compacts* it (writes `merged.json`, then deletes the slice
//!   file).
//!
//! Every write goes through [`fleet::atomic_write_json`] — write
//! `.tmp`, fsync, rename — and the daemon persists **before acking**,
//! so an acked push is a durable push. Crash ordering is safe at every
//! point: a kill between writing `merged.json` and deleting a folded
//! slice file leaves a slice behind the merged frontier, which
//! recovery detects (the header's `range_start` is behind the merged
//! `next_index`) and discards.

use std::path::{Path, PathBuf};

use fleet::{CampaignSpec, Collector};
use obs::Json;

/// `format` tag of the `merged.json` wrapper document.
pub const INGEST_STATE_FORMAT: &str = "collectord-ingest-state";

/// `format` tag of the `slice-<start>.json` wrapper documents.
pub const INGEST_SLICE_FORMAT: &str = "collectord-ingest-slice";

/// Version of the journal wrapper schema; recovery rejects anything
/// newer.
pub const INGEST_STATE_VERSION: u64 = 1;

/// A failure to persist or recover journal state.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem failed underneath the journal.
    Io(std::io::Error),
    /// A journal file exists but does not parse or fails validation.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        message: String,
    },
    /// The journal belongs to a different campaign than the daemon was
    /// started for (fingerprint mismatch) — refusing to merge two
    /// campaigns into one snapshot.
    SpecMismatch(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "ingest journal i/o error: {e}"),
            StoreError::Corrupt { path, message } => {
                write!(f, "corrupt journal file {}: {message}", path.display())
            }
            StoreError::SpecMismatch(m) => write!(f, "journal campaign mismatch: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// What recovery found in the state directory — surfaced on `/status`
/// and `/healthz` so an operator can tell a recovered daemon from a
/// fresh one.
#[derive(Debug, Clone, Default)]
pub struct RecoveryInfo {
    /// Devices restored into the gap-free merged prefix.
    pub merged_devices: u64,
    /// Final slices that had already been folded before the restart.
    pub absorbed_slices: u64,
    /// Buffered slices restored from `slice-*.json` files.
    pub slices_loaded: u64,
    /// Stale slice files discarded (already compacted into the merged
    /// prefix before the crash; the delete never happened).
    pub slices_discarded: u64,
}

impl RecoveryInfo {
    /// Whether recovery restored any state at all.
    pub fn recovered_anything(&self) -> bool {
        self.merged_devices > 0 || self.slices_loaded > 0 || self.slices_discarded > 0
    }

    /// The provenance object embedded in `/status`.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.set("merged_devices", self.merged_devices);
        doc.set("absorbed_slices", self.absorbed_slices);
        doc.set("slices_loaded", self.slices_loaded);
        doc.set("slices_discarded", self.slices_discarded);
        doc
    }
}

/// One buffered slice recovered from disk.
pub struct RecoveredSlice {
    /// First device index of the slice.
    pub start: u64,
    /// Whether the shard had declared the slice complete.
    pub done: bool,
    /// The restored cumulative collector state.
    pub collector: Collector,
}

/// Everything recovery found, before the ingest state machine folds it
/// back together.
#[derive(Default)]
pub struct Recovered {
    /// The merged prefix, when `merged.json` existed.
    pub merged: Option<Collector>,
    /// `(range_start, devices)` of every final slice already folded.
    pub absorbed: Vec<(u64, u64)>,
    /// Buffered slices, any order.
    pub slices: Vec<RecoveredSlice>,
    /// Provenance counters for `/status`.
    pub info: RecoveryInfo,
}

/// A handle on one ingest state directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Open (creating if needed) the state directory at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// The state directory this store journals into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn merged_path(&self) -> PathBuf {
        self.dir.join("merged.json")
    }

    fn slice_path(&self, start: u64) -> PathBuf {
        self.dir.join(format!("slice-{start}.json"))
    }

    fn header(&self, format: &str, fingerprint: u64) -> Json {
        let mut doc = Json::object();
        doc.set("format", format);
        doc.set("version", INGEST_STATE_VERSION);
        doc.set("spec_fingerprint", format!("{fingerprint:016x}"));
        doc
    }

    /// Atomically persist the merged prefix and its absorbed-slice
    /// ledger.
    pub fn write_merged(
        &self,
        merged: &Collector,
        absorbed: &[(u64, u64)],
    ) -> Result<(), StoreError> {
        let mut doc = self.header(INGEST_STATE_FORMAT, merged.fingerprint());
        let mut ledger = Json::array();
        for &(s, c) in absorbed {
            let mut row = Json::array();
            row.push(s);
            row.push(c);
            ledger.push(row);
        }
        doc.set("absorbed", ledger);
        doc.set("state", merged.state_json());
        fleet::atomic_write_json(&self.merged_path(), &doc)?;
        Ok(())
    }

    /// Atomically persist one buffered cumulative slice (replacing any
    /// previous push for the same `range_start`).
    pub fn write_slice(&self, slice: &Collector, done: bool) -> Result<(), StoreError> {
        let mut doc = self.header(INGEST_SLICE_FORMAT, slice.fingerprint());
        doc.set("range_start", slice.range_start());
        doc.set("final", done);
        doc.set("state", slice.state_json());
        fleet::atomic_write_json(&self.slice_path(slice.range_start()), &doc)?;
        Ok(())
    }

    /// Atomically write an arbitrary rendered document (e.g. the final
    /// `snapshot.json` the shutdown flush leaves behind) into the state
    /// directory, with the same `.tmp` → fsync → rename discipline as
    /// the journal files.
    pub fn write_raw(&self, name: &str, body: &str) -> Result<(), StoreError> {
        use std::io::Write;
        let path = self.dir.join(name);
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Remove a compacted slice file (folded into `merged.json`). A
    /// missing file is fine — compaction is idempotent.
    pub fn remove_slice(&self, start: u64) -> Result<(), StoreError> {
        match std::fs::remove_file(self.slice_path(start)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Load everything the journal holds for `spec`, validating every
    /// file's format, version, and campaign fingerprint. Stale slice
    /// files (compacted before a crash deleted them) are discarded and
    /// counted; anything unparseable is a hard [`StoreError::Corrupt`]
    /// — recovery never silently drops campaign data.
    pub fn recover(&self, spec: &CampaignSpec) -> Result<Recovered, StoreError> {
        let mut out = Recovered::default();
        let merged_path = self.merged_path();
        if merged_path.exists() {
            let doc = self.read_doc(&merged_path)?;
            self.check_header(&merged_path, &doc, INGEST_STATE_FORMAT, spec)?;
            let state = doc.get("state").ok_or_else(|| StoreError::Corrupt {
                path: merged_path.clone(),
                message: "missing `state` field".to_string(),
            })?;
            let merged = Collector::from_state_json(state).map_err(|e| StoreError::Corrupt {
                path: merged_path.clone(),
                message: e.0,
            })?;
            merged
                .verify_spec(spec)
                .map_err(|e| StoreError::SpecMismatch(e.0))?;
            let ledger =
                doc.get("absorbed")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| StoreError::Corrupt {
                        path: merged_path.clone(),
                        message: "missing or non-array `absorbed` ledger".to_string(),
                    })?;
            for row in ledger {
                let pair =
                    row.as_arr()
                        .filter(|r| r.len() == 2)
                        .ok_or_else(|| StoreError::Corrupt {
                            path: merged_path.clone(),
                            message: "absorbed ledger rows must be [start, devices] pairs"
                                .to_string(),
                        })?;
                let num = |j: &Json| j.as_f64().map(|v| v as u64);
                match (num(&pair[0]), num(&pair[1])) {
                    (Some(s), Some(c)) => out.absorbed.push((s, c)),
                    _ => {
                        return Err(StoreError::Corrupt {
                            path: merged_path,
                            message: "absorbed ledger rows must be numeric".to_string(),
                        })
                    }
                }
            }
            out.info.merged_devices = merged.devices_seen();
            out.info.absorbed_slices = out.absorbed.len() as u64;
            out.merged = Some(merged);
        }

        let frontier = out.merged.as_ref().map(Collector::next_index).unwrap_or(0);
        let mut slice_paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("slice-") && n.ends_with(".json"))
            })
            .collect();
        slice_paths.sort();
        for path in slice_paths {
            let doc = self.read_doc(&path)?;
            self.check_header(&path, &doc, INGEST_SLICE_FORMAT, spec)?;
            let done = matches!(doc.get("final"), Some(Json::Bool(true)));
            let state = doc.get("state").ok_or_else(|| StoreError::Corrupt {
                path: path.clone(),
                message: "missing `state` field".to_string(),
            })?;
            let collector = Collector::from_state_json(state).map_err(|e| StoreError::Corrupt {
                path: path.clone(),
                message: e.0,
            })?;
            collector
                .verify_spec(spec)
                .map_err(|e| StoreError::SpecMismatch(e.0))?;
            let start = collector.range_start();
            if start < frontier {
                // Compacted into merged.json before the crash; only the
                // delete was lost. Finish the compaction now.
                self.remove_slice(start)?;
                out.info.slices_discarded += 1;
                continue;
            }
            out.info.slices_loaded += 1;
            out.slices.push(RecoveredSlice {
                start,
                done,
                collector,
            });
        }
        Ok(out)
    }

    fn read_doc(&self, path: &Path) -> Result<Json, StoreError> {
        let body = std::fs::read_to_string(path)?;
        Json::parse(&body).map_err(|e| StoreError::Corrupt {
            path: path.to_path_buf(),
            message: format!("not JSON: {e}"),
        })
    }

    fn check_header(
        &self,
        path: &Path,
        doc: &Json,
        format: &str,
        spec: &CampaignSpec,
    ) -> Result<(), StoreError> {
        let corrupt = |message: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            message,
        };
        match doc.get("format").and_then(Json::as_str) {
            Some(f) if f == format => {}
            other => {
                return Err(corrupt(format!(
                    "expected format `{format}`, got {other:?}"
                )))
            }
        }
        let version = doc
            .get("version")
            .and_then(Json::as_f64)
            .ok_or_else(|| corrupt("missing `version`".to_string()))? as u64;
        if version > INGEST_STATE_VERSION {
            return Err(corrupt(format!(
                "journal version {version} is newer than supported {INGEST_STATE_VERSION}"
            )));
        }
        let fp = doc
            .get("spec_fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| corrupt("missing or non-hex `spec_fingerprint`".to_string()))?;
        if fp != spec.fingerprint() {
            return Err(StoreError::SpecMismatch(format!(
                "journal {} was written for campaign fingerprint {fp:016x}, daemon expects \
                 {:016x}",
                path.display(),
                spec.fingerprint()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("collectord-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn merged_state_round_trips_with_ledger() {
        let spec = CampaignSpec::heterogeneous(5, 12).with_probes(1);
        let dir = tmpdir("merged");
        let store = Store::open(&dir).unwrap();
        let (c, _) = fleet::run_partition(&spec, 1, 0, 2);
        store.write_merged(&c, &[(0, c.devices_seen())]).unwrap();
        let rec = store.recover(&spec).unwrap();
        let merged = rec.merged.expect("merged restored");
        assert_eq!(merged.devices_seen(), c.devices_seen());
        assert_eq!(rec.absorbed, vec![(0, c.devices_seen())]);
        assert_eq!(rec.info.merged_devices, c.devices_seen());
        assert_eq!(
            merged.state_json().to_string_pretty(),
            c.state_json().to_string_pretty(),
            "journal round-trip must be byte-exact"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_slice_behind_the_frontier_is_discarded() {
        let spec = CampaignSpec::heterogeneous(5, 12).with_probes(1);
        let dir = tmpdir("stale");
        let store = Store::open(&dir).unwrap();
        let (c0, _) = fleet::run_partition(&spec, 1, 0, 2);
        store.write_merged(&c0, &[(0, c0.devices_seen())]).unwrap();
        // The same slice also exists as a slice file — as if the crash
        // landed between compaction's write and its delete.
        store.write_slice(&c0, true).unwrap();
        let rec = store.recover(&spec).unwrap();
        assert_eq!(rec.info.slices_discarded, 1);
        assert_eq!(rec.info.slices_loaded, 0);
        assert!(rec.slices.is_empty());
        assert!(!dir.join("slice-0.json").exists(), "finished the delete");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_campaign_journal_is_a_spec_mismatch() {
        let spec = CampaignSpec::heterogeneous(5, 12).with_probes(1);
        let other = CampaignSpec::heterogeneous(6, 12).with_probes(1);
        let dir = tmpdir("mismatch");
        let store = Store::open(&dir).unwrap();
        let (c, _) = fleet::run_partition(&spec, 1, 0, 2);
        store.write_slice(&c, false).unwrap();
        assert!(matches!(
            store.recover(&other),
            Err(StoreError::SpecMismatch(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_journal_is_a_typed_error_not_a_panic() {
        let spec = CampaignSpec::heterogeneous(5, 12).with_probes(1);
        let dir = tmpdir("corrupt");
        let store = Store::open(&dir).unwrap();
        std::fs::write(dir.join("slice-0.json"), b"{not json").unwrap();
        assert!(matches!(
            store.recover(&spec),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
