//! End-to-end daemon test: a real `Daemon` on ephemeral ports, real
//! `PushClient` connections pushing two partitions from the fleet
//! engine, and raw HTTP GETs against every endpoint. The `/snapshot`
//! body must be byte-identical to the single-process campaign JSON.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use collectord::{Daemon, PushClient, PushError, PushOutcome};
use fleet::{run_campaign, run_partition, CampaignSpec};
use obs::ToJson;

fn spec() -> CampaignSpec {
    CampaignSpec::heterogeneous(7, 40).with_probes(2)
}

/// Spawn a daemon on ephemeral ports; returns (daemon, push addr, http addr).
fn start_daemon(spec: CampaignSpec) -> (Daemon, String, String) {
    let ingest = TcpListener::bind("127.0.0.1:0").unwrap();
    let http = TcpListener::bind("127.0.0.1:0").unwrap();
    let push_addr = ingest.local_addr().unwrap().to_string();
    let http_addr = http.local_addr().unwrap().to_string();
    let daemon = Daemon::new(spec);
    let d = daemon.clone();
    std::thread::spawn(move || d.serve_ingest(ingest));
    let d = daemon.clone();
    std::thread::spawn(move || d.serve_http(http));
    (daemon, push_addr, http_addr)
}

/// Minimal HTTP GET: returns (status line, body).
fn get(addr: &str, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    (head.lines().next().unwrap().to_string(), body.to_string())
}

#[test]
fn two_partition_push_yields_byte_identical_snapshot() {
    let spec = spec();
    let (expected, _) = run_campaign(&spec, 2);
    let expected = expected.to_json().to_string_pretty();

    let (daemon, push_addr, http_addr) = start_daemon(spec.clone());

    let (status, body) = get(&http_addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    // Push partition 1/2 first (out of order), then 0/2.
    let (c1, _) = run_partition(&spec, 2, 1, 2);
    let mut client = PushClient::connect(&push_addr, "1/2").unwrap();
    let ack = client.push(&c1, true).unwrap();
    assert_eq!(ack.outcome, PushOutcome::Buffered);
    assert!(!ack.complete);

    // Mid-campaign, /snapshot already reflects the buffered slice.
    let (_, body) = get(&http_addr, "/snapshot");
    assert!(body.contains("\"devices\": 20"), "view covers 1/2: {body}");

    let (c0, _) = run_partition(&spec, 2, 0, 2);
    let mut client = PushClient::connect(&push_addr, "0/2").unwrap();
    let ack = client.push(&c0, true).unwrap();
    assert_eq!(ack.outcome, PushOutcome::Absorbed);
    assert!(ack.complete);
    assert_eq!(ack.devices_absorbed, spec.devices);
    assert!(daemon.complete());

    let (status, body) = get(&http_addr, "/snapshot");
    assert!(status.contains("200"), "{status}");
    assert_eq!(
        body, expected,
        "daemon snapshot must be byte-identical to the single-process report"
    );

    // /metrics: conformant exposition plus per-shard labelled series.
    let (_, metrics) = get(&http_addr, "/metrics");
    assert!(metrics.contains("# TYPE collectord_ingest_pushes_total counter"));
    assert!(metrics.contains("collectord_ingest_pushes_total 2"));
    assert!(metrics.contains("collectord_devices_absorbed 40"));
    assert!(metrics.contains("collectord_devices_expected 40"));
    assert!(metrics.contains("# TYPE collectord_ingest_batch_ms histogram"));
    assert!(metrics.contains("collectord_shard_pushes_total{shard=\"0/2\"} 1"));
    assert!(metrics.contains("collectord_shard_pushes_total{shard=\"1/2\"} 1"));
    assert!(metrics.contains("collectord_shard_final{shard=\"0/2\"} 1"));
    assert!(metrics.contains("collectord_shard_heartbeat_age_seconds{shard=\"1/2\"}"));

    // /status: machine-readable progress.
    let (_, status_body) = get(&http_addr, "/status");
    let doc = obs::Json::parse(&status_body).unwrap();
    assert_eq!(
        doc.get("complete"),
        Some(&obs::Json::Bool(true)),
        "{status_body}"
    );
    assert_eq!(
        doc.get("devices_absorbed").and_then(obs::Json::as_f64),
        Some(40.0)
    );

    // Dashboard renders and carries both shards.
    let (status, html) = get(&http_addr, "/");
    assert!(status.contains("200"), "{status}");
    assert!(html.contains("<!DOCTYPE html>"));
    assert!(html.contains("0/2") && html.contains("1/2"));
    assert!(html.contains("complete"));

    let (status, _) = get(&http_addr, "/nope");
    assert!(status.contains("404"), "{status}");
}

#[test]
fn wrong_campaign_push_is_rejected_over_the_wire() {
    let spec = spec();
    let (_daemon, push_addr, http_addr) = start_daemon(spec);

    // A shard running a different campaign (other seed) connects.
    let other = CampaignSpec::heterogeneous(8, 40).with_probes(2);
    let (c, _) = run_partition(&other, 2, 0, 2);
    let mut client = PushClient::connect(&push_addr, "0/2").unwrap();
    let err = client.push(&c, true).unwrap_err();
    match err {
        PushError::Rejected { code, message } => {
            assert_eq!(code, "spec-mismatch");
            assert!(!message.is_empty());
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    // The daemon holds no state from the rejected push...
    let (_, body) = get(&http_addr, "/snapshot");
    assert!(body.contains("\"devices\": 0"), "{body}");
    // ...and the connection survives for a corrected retry.
    let spec = CampaignSpec::heterogeneous(7, 40).with_probes(2);
    let (c, _) = run_partition(&spec, 2, 0, 2);
    let ack = client.push(&c, true).unwrap();
    assert_eq!(ack.outcome, PushOutcome::Absorbed);
}

/// Telemetry rides the push: the daemon surfaces per-shard devices/sec,
/// queue depth, and phase split on /metrics, /status, and the
/// dashboard, and derives the campaign ETA.
#[test]
fn telemetry_surfaces_on_metrics_status_and_dashboard() {
    let spec = spec();
    let (_daemon, push_addr, http_addr) = start_daemon(spec.clone());

    let telemetry = wire::telemetry::ShardTelemetry {
        devices_per_sec: 321.5,
        workers: 2,
        per_worker_devices: vec![6, 4],
        queue_depth: 3,
        phase_self_ns: vec![("des".to_string(), 1_234_567), ("fold".to_string(), 89_012)],
    };

    // A mid-run push for the first half of the 0/1 slice...
    let mut c = fleet::Collector::new_range(&spec, 0);
    for i in 0..spec.devices / 2 {
        c.absorb(&fleet::run_device(&spec, i));
    }
    let mut client = PushClient::connect(&push_addr, "0/1").unwrap();
    client
        .push_with_telemetry(&c, false, Some(&telemetry))
        .unwrap();
    // ...then an advancing one after measurable time, so the daemon can
    // delta a rate.
    std::thread::sleep(std::time::Duration::from_millis(25));
    for i in spec.devices / 2..spec.devices - 5 {
        c.absorb(&fleet::run_device(&spec, i));
    }
    client
        .push_with_telemetry(&c, false, Some(&telemetry))
        .unwrap();

    let (_, metrics) = get(&http_addr, "/metrics");
    assert!(
        metrics.contains("collectord_shard_devices_per_sec{shard=\"0/1\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("collectord_shard_queue_depth{shard=\"0/1\"} 3"));
    assert!(metrics.contains("collectord_shard_phase_self_ns{shard=\"0/1\",phase=\"des\"} 1234567"));
    assert!(metrics.contains("collectord_campaign_devices_per_sec"));
    assert!(metrics.contains("collectord_campaign_eta_seconds"));

    let (_, status_body) = get(&http_addr, "/status");
    let doc = obs::Json::parse(&status_body).unwrap();
    assert!(
        doc.get("devices_per_sec")
            .and_then(obs::Json::as_f64)
            .unwrap()
            > 0.0,
        "{status_body}"
    );
    assert!(
        doc.get("eta_secs").and_then(obs::Json::as_f64).unwrap() > 0.0,
        "{status_body}"
    );

    let (_, html) = get(&http_addr, "/");
    assert!(html.contains("dev/s"), "shard table gained the rate column");
    assert!(html.contains("ETA"), "{html}");
    // Queue depth from self-reported telemetry.
    assert!(html.contains("<th>queue</th>"), "{html}");
}

/// A client that connects and then goes silent mid-frame must not pin
/// an ingest thread forever: the configured read timeout fires, the
/// connection is dropped, and the `collectord_conn_timeout_total`
/// counter records it.
#[test]
fn stalled_ingest_connection_times_out_and_is_counted() {
    let spec = spec();
    let ingest = TcpListener::bind("127.0.0.1:0").unwrap();
    let http = TcpListener::bind("127.0.0.1:0").unwrap();
    let push_addr = ingest.local_addr().unwrap().to_string();
    let http_addr = http.local_addr().unwrap().to_string();
    let daemon = Daemon::new(spec).with_ingest_timeout(std::time::Duration::from_millis(100));
    let d = daemon.clone();
    std::thread::spawn(move || d.serve_ingest(ingest));
    let d = daemon.clone();
    std::thread::spawn(move || d.serve_http(http));

    // Half a length prefix, then silence: the daemon is now blocked in
    // the middle of a frame read until its timeout rescues the thread.
    let mut s = TcpStream::connect(&push_addr).unwrap();
    s.write_all(&[0x00, 0x00]).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let (_, metrics) = get(&http_addr, "/metrics");
        if metrics.contains("collectord_conn_timeout_total 1") {
            assert!(metrics.contains("# TYPE collectord_conn_timeout_total counter"));
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timeout counter never appeared:\n{metrics}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}
