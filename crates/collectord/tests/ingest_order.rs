//! Ingest-order guarantees: the daemon's snapshot must be
//! byte-identical to a single-process `fleet.json` no matter how
//! partitions arrive — interleaved, re-sent, duplicated, or fully
//! reversed — and every adversarial push (wrong campaign, overlapping
//! or out-of-bounds slices) must be rejected with a typed error that
//! leaves campaign state untouched.

use collectord::{Ingest, IngestError, PushOutcome};
use fleet::{run_campaign, run_device, CampaignSpec, Collector};
use obs::{Json, ToJson};

fn spec() -> CampaignSpec {
    CampaignSpec::heterogeneous(42, 60).with_probes(2)
}

fn expected_json(spec: &CampaignSpec) -> String {
    let (report, _) = run_campaign(spec, 3);
    report.to_json().to_string_pretty()
}

/// The cumulative state of slice `start..end` after absorbing devices
/// `start..upto` in order — exactly what a shard's `--push-to` stream
/// carries mid-run (`upto < end`) and at the end (`upto == end`).
fn slice_state(spec: &CampaignSpec, start: u64, upto: u64) -> Json {
    let mut c = Collector::new_range(spec, start);
    for i in start..upto {
        c.absorb(&run_device(spec, i));
    }
    c.state_json()
}

#[test]
fn reversed_final_partitions_merge_byte_identical() {
    let spec = spec();
    let mut ingest = Ingest::new(spec.clone());
    let slices = [(40, 60, "2/3"), (20, 40, "1/3"), (0, 20, "0/3")];
    for (n, (start, end, shard)) in slices.iter().enumerate() {
        let ack = ingest
            .push(shard, &slice_state(&spec, *start, *end), true, 0)
            .unwrap();
        if n + 1 < slices.len() {
            assert_eq!(ack.outcome, PushOutcome::Buffered, "slice {start}..{end}");
            assert!(!ack.complete);
        } else {
            // The 0/3 slice unblocks the whole buffered chain.
            assert_eq!(ack.outcome, PushOutcome::Absorbed);
            assert!(ack.complete);
            assert_eq!(ack.devices_absorbed, spec.devices);
        }
    }
    assert_eq!(ingest.snapshot_pretty(), expected_json(&spec));
}

#[test]
fn interleaved_cumulative_pushes_converge_to_single_process_bytes() {
    let spec = spec();
    let mut ingest = Ingest::new(spec.clone());

    // Two shards stream cumulative prefixes, interleaved.
    let a = |upto| slice_state(&spec, 0, upto);
    let b = |upto| slice_state(&spec, 30, upto);
    assert_eq!(
        ingest.push("0/2", &a(10), false, 0).unwrap().outcome,
        PushOutcome::Buffered,
        "non-final prefixes stay buffered even at the frontier"
    );
    assert_eq!(
        ingest.push("1/2", &b(45), false, 0).unwrap().outcome,
        PushOutcome::Buffered
    );
    assert_eq!(ingest.devices_view(), 25, "10 + 15 devices in view");
    assert_eq!(ingest.devices_absorbed(), 0, "nothing final yet");

    let mid = ingest.view().report();
    assert_eq!(mid.devices, 25, "mid-run view aggregates both prefixes");

    assert_eq!(
        ingest.push("0/2", &a(20), false, 0).unwrap().outcome,
        PushOutcome::Buffered
    );
    let ack = ingest.push("1/2", &b(60), true, 0).unwrap();
    assert_eq!(ack.outcome, PushOutcome::Buffered, "final but gapped");
    assert_eq!(ack.devices_view, 50);

    let ack = ingest.push("0/2", &a(30), true, 0).unwrap();
    assert_eq!(ack.outcome, PushOutcome::Absorbed);
    assert!(ack.complete);
    assert_eq!(ingest.devices_absorbed(), 60);
    assert_eq!(ingest.snapshot_pretty(), expected_json(&spec));
}

#[test]
fn resent_and_stale_pushes_are_idempotent() {
    let spec = spec();
    let mut ingest = Ingest::new(spec.clone());
    let full = slice_state(&spec, 0, 60);
    assert_eq!(
        ingest.push("0/1", &full, true, 0).unwrap().outcome,
        PushOutcome::Absorbed
    );
    let snap = ingest.snapshot_pretty();

    // Exact re-send of the folded final: duplicate no-op.
    let ack = ingest.push("0/1", &full, true, 0).unwrap();
    assert_eq!(ack.outcome, PushOutcome::Duplicate);
    assert_eq!(ack.devices_absorbed, 60);

    // A delayed older cumulative push arriving after the final: stale.
    let ack = ingest
        .push("0/1", &slice_state(&spec, 0, 40), false, 0)
        .unwrap();
    assert_eq!(ack.outcome, PushOutcome::Stale);

    assert_eq!(
        ingest.snapshot_pretty(),
        snap,
        "idempotent pushes must not move a single byte"
    );
    assert_eq!(ingest.snapshot_pretty(), expected_json(&spec));
}

#[test]
fn stale_cumulative_push_on_a_buffered_slice_is_dropped() {
    let spec = spec();
    let mut ingest = Ingest::new(spec.clone());
    ingest
        .push("1/2", &slice_state(&spec, 30, 50), false, 0)
        .unwrap();
    let ack = ingest
        .push("1/2", &slice_state(&spec, 30, 40), false, 0)
        .unwrap();
    assert_eq!(ack.outcome, PushOutcome::Stale);
    assert_eq!(ingest.devices_view(), 20, "newer cumulative state wins");
}

#[test]
fn wrong_fingerprint_push_is_rejected_with_typed_error() {
    let spec = spec();
    let mut ingest = Ingest::new(spec.clone());

    // Same shape, different seed: a state document from a different
    // campaign must bounce off the fingerprint check.
    let other = CampaignSpec::heterogeneous(43, 60).with_probes(2);
    let err = ingest
        .push("0/1", &slice_state(&other, 0, 10), false, 0)
        .unwrap_err();
    assert!(matches!(err, IngestError::SpecMismatch(_)), "{err:?}");
    assert_eq!(err.code(), "spec-mismatch");

    // Same seed, different probe count: still a different campaign.
    let other = CampaignSpec::heterogeneous(42, 60).with_probes(3);
    let err = ingest
        .push("0/1", &slice_state(&other, 0, 10), false, 0)
        .unwrap_err();
    assert_eq!(err.code(), "spec-mismatch");

    // Garbage state document.
    let err = ingest
        .push("0/1", &Json::parse("{\"a\": 1}").unwrap(), false, 0)
        .unwrap_err();
    assert_eq!(err.code(), "bad-state");

    assert_eq!(ingest.devices_view(), 0, "rejections leave state untouched");
    assert!(ingest.shards().is_empty());
}

#[test]
fn overlapping_and_out_of_bounds_slices_are_rejected() {
    let spec = spec();
    let mut ingest = Ingest::new(spec.clone());
    ingest
        .push("0/3", &slice_state(&spec, 0, 20), true, 0)
        .unwrap();
    ingest
        .push("2/3", &slice_state(&spec, 40, 55), false, 0)
        .unwrap();

    // Collides with the already-folded 0..20 final.
    let err = ingest
        .push("rogue", &slice_state(&spec, 10, 30), true, 0)
        .unwrap_err();
    assert_eq!(err.code(), "overlap");

    // Collides with the buffered 40..55 slice from behind...
    let err = ingest
        .push("rogue", &slice_state(&spec, 35, 45), false, 0)
        .unwrap_err();
    assert_eq!(err.code(), "overlap");
    // ...and a slice starting inside it collides too.
    let err = ingest
        .push("rogue", &slice_state(&spec, 50, 60), false, 0)
        .unwrap_err();
    assert_eq!(err.code(), "overlap");

    // A slice past the population end never validates.
    let big = CampaignSpec::heterogeneous(42, 80).with_probes(2);
    let err = ingest
        .push("rogue", &slice_state(&big, 60, 70), false, 0)
        .unwrap_err();
    // Same generator, larger population: fingerprint differs, so either
    // rejection is acceptable — but it must be typed, not a merge panic.
    assert!(
        matches!(
            err,
            IngestError::SpecMismatch(_) | IngestError::RangeOutOfBounds { .. }
        ),
        "{err:?}"
    );

    // The survivors still converge byte-identically.
    ingest
        .push("1/3", &slice_state(&spec, 20, 40), true, 0)
        .unwrap();
    let ack = ingest
        .push("2/3", &slice_state(&spec, 40, 60), true, 0)
        .unwrap();
    assert!(ack.complete);
    assert_eq!(ingest.snapshot_pretty(), expected_json(&spec));
}

/// Devices/sec derives from consecutive push deltas, the ~zero-Δt and
/// non-advancing cases keep the previous estimate instead of dividing
/// by a stale heartbeat delta, and the campaign ETA follows the summed
/// live-shard rate.
#[test]
fn push_delta_rate_drives_eta_and_guards_division_by_zero() {
    let spec = spec();
    let mut ingest = Ingest::new(spec.clone());

    // First push: nothing to delta against yet.
    ingest
        .push("0/1", &slice_state(&spec, 0, 10), false, 0)
        .unwrap();
    assert!(ingest.shards()["0/1"].rate_dps.is_none());
    assert!(ingest.eta_secs().is_none(), "no usable rate yet");
    assert_eq!(ingest.throughput_dps(), 0.0);

    // A duplicate in (effectively) the same instant advances nothing;
    // the guard keeps the estimate rather than producing inf/NaN.
    ingest
        .push("0/1", &slice_state(&spec, 0, 10), false, 0)
        .unwrap();
    assert!(ingest.shards()["0/1"].rate_dps.is_none());

    // An advancing push after measurable time yields a finite rate,
    // which makes the campaign ETA computable.
    std::thread::sleep(std::time::Duration::from_millis(25));
    ingest
        .push("0/1", &slice_state(&spec, 0, 30), false, 0)
        .unwrap();
    let rate = ingest.shards()["0/1"].rate_dps.expect("delta-derived rate");
    assert!(rate.is_finite() && rate > 0.0, "{rate}");
    let eta = ingest.eta_secs().expect("live shard with a rate");
    assert!(eta.is_finite() && eta > 0.0, "{eta}");

    // Self-reported telemetry attaches to the shard and acts as the
    // rate fallback for shards the daemon has not yet delta'd.
    let t = wire::telemetry::ShardTelemetry {
        devices_per_sec: 500.0,
        queue_depth: 2,
        ..Default::default()
    };
    ingest.note_telemetry("0/1", t);
    assert_eq!(
        ingest.shards()["0/1"]
            .telemetry
            .as_ref()
            .unwrap()
            .queue_depth,
        2
    );

    // Completion: done shards leave the throughput sum and the ETA
    // pins to zero.
    ingest
        .push("0/1", &slice_state(&spec, 0, 60), true, 0)
        .unwrap();
    assert!(ingest.complete());
    assert_eq!(ingest.eta_secs(), Some(0.0));
    assert_eq!(ingest.throughput_dps(), 0.0, "done shards don't count");
}
