//! End-to-end behaviour of [`ResilientPushClient`]: reconnect-and-
//! resend across severed connections, degraded mode for mid-run pushes
//! when the daemon is unreachable, immediate short-circuit on typed
//! non-retryable rejections, and delivery straight through injected
//! wire chaos.

use std::net::TcpListener;
use std::time::Duration;

use collectord::{Daemon, Delivery, ResilientPushClient, RetryPolicy};
use fleet::{run_partition, CampaignSpec};

fn spec() -> CampaignSpec {
    CampaignSpec::heterogeneous(7, 40).with_probes(2)
}

/// A retry policy tuned for tests: near-instant backoff, few attempts.
fn fast_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        max_attempts: 2,
        max_final_attempts: 6,
        seed,
    }
}

/// The client survives a connection the server accepts and immediately
/// drops: it reconnects and resends, and the push still lands.
#[test]
fn reconnects_after_severed_connection() {
    let spec = spec();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let daemon = Daemon::new(spec.clone());
    let d = daemon.clone();
    std::thread::spawn(move || {
        // First connection: accepted, then slammed shut mid-handshake.
        let (conn, _) = listener.accept().unwrap();
        drop(conn);
        // Every later connection is served normally.
        d.serve_ingest(listener);
    });

    let (c0, _) = run_partition(&spec, 1, 0, 1);
    let mut client = ResilientPushClient::new(&addr, "0/1", fast_policy(11));
    match client.push(&c0, true).unwrap() {
        Delivery::Delivered(ack) => assert!(ack.complete),
        Delivery::Dropped { .. } => panic!("final push must not be dropped"),
    }
    let stats = client.stats();
    assert_eq!(stats.delivered, 1);
    assert!(
        stats.reconnects >= 1,
        "severed first connection must force a reconnect: {stats:?}"
    );
}

/// With no daemon listening at all, a mid-run push degrades (dropped
/// after the mid-run budget, campaign continues) while a final push
/// exhausts its larger budget and surfaces a retryable error.
#[test]
fn degraded_mode_drops_midrun_pushes_but_fails_finals() {
    let spec = spec();
    // Grab an ephemeral port, then release it: nothing listens there.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };

    let (c0, _) = run_partition(&spec, 1, 0, 1);
    let mut client = ResilientPushClient::new(&dead_addr, "0/1", fast_policy(12));

    match client.push(&c0, false).unwrap() {
        Delivery::Dropped { attempts } => assert_eq!(attempts, 2, "mid-run budget"),
        Delivery::Delivered(_) => panic!("nothing is listening"),
    }
    assert_eq!(client.stats().dropped, 1);

    let err = client.push(&c0, true).unwrap_err();
    assert!(
        err.is_retryable(),
        "pure I/O failure stays retryable: {err}"
    );
    assert_eq!(client.stats().delivered, 0);
}

/// A typed daemon rejection (spec fingerprint mismatch) is not
/// retryable: the client short-circuits on the first attempt instead of
/// burning its backoff budget against a deterministic refusal.
#[test]
fn typed_rejection_short_circuits_without_retries() {
    let spec = spec();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let daemon = Daemon::new(spec.clone());
    let d = daemon.clone();
    std::thread::spawn(move || d.serve_ingest(listener));

    // A collector from a *different* campaign: wrong fingerprint.
    let other = CampaignSpec::heterogeneous(99, 40).with_probes(2);
    let (alien, _) = run_partition(&other, 1, 0, 1);
    let mut client = ResilientPushClient::new(&addr, "0/1", fast_policy(13));
    let err = client.push(&alien, true).unwrap_err();
    assert!(
        !err.is_retryable(),
        "spec mismatch must not be retried: {err}"
    );
    let stats = client.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.reconnects, 0, "no reconnect loop on a typed refusal");
}

/// Chaos splice: every connection the client opens is wrapped in a
/// seeded [`wire::chaos::ChaosStream`] that tears it down after a bounded
/// byte budget. Repeated pushes through the churn all deliver, and the
/// schedule forces at least one real reconnect.
#[test]
fn delivers_through_seeded_connection_chaos() {
    let spec = spec();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let daemon = Daemon::new(spec.clone());
    let d = daemon.clone();
    std::thread::spawn(move || d.serve_ingest(listener));

    let (c0, _) = run_partition(&spec, 1, 0, 1);
    // Cut floor comfortably above one 40-device state frame, so each
    // connection can always carry at least one full push before dying.
    let policy = RetryPolicy {
        max_final_attempts: 20,
        ..fast_policy(14)
    };
    let mut client =
        ResilientPushClient::new(&addr, "0/1", policy).with_chaos(99, 64 * 1024, 64 * 1024);

    let mut delivered = 0;
    for _ in 0..10 {
        match client.push(&c0, true).unwrap() {
            Delivery::Delivered(ack) => {
                assert!(ack.complete);
                delivered += 1;
            }
            Delivery::Dropped { .. } => panic!("final pushes must deliver"),
        }
        if client.stats().reconnects >= 1 && delivered >= 2 {
            break;
        }
    }
    let stats = client.stats();
    assert!(delivered >= 2, "{stats:?}");
    assert!(
        stats.reconnects >= 1,
        "chaos cuts must have severed at least one connection: {stats:?}"
    );
}
