//! Crash-safety end-to-end: a journaling daemon killed (dropped
//! without any flush) and restarted over the same `--state-dir` must
//! recover to a `/snapshot` byte-identical to a never-killed run, keep
//! classifying re-sent finals as duplicates, and compact slice files
//! into the merged prefix with the documented file lifecycle.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use collectord::{Daemon, Ingest, PushClient, PushOutcome, Store};
use fleet::{run_campaign, run_partition, CampaignSpec};
use obs::ToJson;

fn spec() -> CampaignSpec {
    CampaignSpec::heterogeneous(7, 40).with_probes(2)
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("collectord-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Spawn a journaling daemon on ephemeral ports; returns
/// (daemon, push addr, http addr).
fn start_daemon(spec: CampaignSpec, dir: &PathBuf) -> (Daemon, String, String) {
    let ingest = TcpListener::bind("127.0.0.1:0").unwrap();
    let http = TcpListener::bind("127.0.0.1:0").unwrap();
    let push_addr = ingest.local_addr().unwrap().to_string();
    let http_addr = http.local_addr().unwrap().to_string();
    let daemon = Daemon::with_store(spec, Store::open(dir).unwrap()).unwrap();
    let d = daemon.clone();
    std::thread::spawn(move || d.serve_ingest(ingest));
    let d = daemon.clone();
    std::thread::spawn(move || d.serve_http(http));
    (daemon, push_addr, http_addr)
}

/// Minimal HTTP GET: returns (status line, body).
fn get(addr: &str, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    (head.lines().next().unwrap().to_string(), body.to_string())
}

/// The tentpole guarantee: kill the daemon mid-campaign (after acked
/// pushes, with *no* shutdown flush — every acked push must already be
/// durable), restart over the same state dir, finish the campaign, and
/// the `/snapshot` is byte-identical to an uninterrupted run.
#[test]
fn kill_and_restart_recovers_to_byte_identical_snapshot() {
    let spec = spec();
    let (expected, _) = run_campaign(&spec, 2);
    let expected = expected.to_json().to_string_pretty();
    let dir = tmpdir("kill-restart");

    // Daemon #1: an out-of-order final (buffered behind the gap at 0)
    // and a mid-run non-final half of slice 0.
    let (daemon1, push1, _http1) = start_daemon(spec.clone(), &dir);
    let (c1, _) = run_partition(&spec, 2, 1, 2);
    let mut client = PushClient::connect(&push1, "1/2").unwrap();
    assert_eq!(
        client.push(&c1, true).unwrap().outcome,
        PushOutcome::Buffered
    );
    let mut c0_half = fleet::Collector::new_range(&spec, 0);
    for i in 0..10 {
        c0_half.absorb(&fleet::run_device(&spec, i));
    }
    let mut client = PushClient::connect(&push1, "0/2").unwrap();
    assert_eq!(
        client.push(&c0_half, false).unwrap().outcome,
        PushOutcome::Buffered
    );
    // SIGKILL stand-in: no flush, no goodbye. Acked pushes must already
    // be on disk.
    drop(client);
    drop(daemon1);

    // Daemon #2 over the same journal.
    let (_daemon2, push2, http2) = start_daemon(spec.clone(), &dir);

    // Recovery provenance is visible to operators.
    let (_, health) = get(&http2, "/healthz");
    assert!(health.starts_with("ok\n"), "{health}");
    assert!(health.contains("recovered merged_devices=0"), "{health}");
    let (_, status) = get(&http2, "/status");
    let doc = obs::Json::parse(&status).unwrap();
    let rec = doc.get("recovery").expect("recovery object on /status");
    assert_eq!(
        rec.get("slices_loaded").and_then(obs::Json::as_f64),
        Some(2.0),
        "{status}"
    );

    // The view already reflects the recovered slices (20 final + 10).
    assert_eq!(
        doc.get("devices_view").and_then(obs::Json::as_f64),
        Some(30.0),
        "{status}"
    );

    // A duplicate of the recovered final classifies as duplicate, not
    // overlap — the ledger survived too (idempotent resend-after-kill).
    let mut client = PushClient::connect(&push2, "1/2").unwrap();
    assert_eq!(
        client.push(&c1, true).unwrap().outcome,
        PushOutcome::Duplicate
    );

    // Finish slice 0; the campaign completes and the snapshot matches
    // the never-killed run byte for byte.
    let (c0, _) = run_partition(&spec, 2, 0, 2);
    let mut client = PushClient::connect(&push2, "0/2").unwrap();
    let ack = client.push(&c0, true).unwrap();
    assert_eq!(ack.outcome, PushOutcome::Absorbed);
    assert!(ack.complete);
    let (_, snapshot) = get(&http2, "/snapshot");
    assert_eq!(
        snapshot, expected,
        "recovered snapshot must be byte-identical"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A second kill after the frontier advanced: the merged prefix and its
/// absorbed-slice ledger recover, so a shard blindly re-sending its
/// folded final (it never saw the ack) still gets the idempotent
/// answer.
#[test]
fn absorbed_ledger_survives_restart() {
    let spec = spec();
    let dir = tmpdir("ledger");

    let (daemon1, push1, _) = start_daemon(spec.clone(), &dir);
    let (c0, _) = run_partition(&spec, 2, 0, 2);
    let mut client = PushClient::connect(&push1, "0/2").unwrap();
    assert_eq!(
        client.push(&c0, true).unwrap().outcome,
        PushOutcome::Absorbed
    );
    drop(client);
    drop(daemon1);

    let (_daemon2, push2, http2) = start_daemon(spec.clone(), &dir);
    let (_, health) = get(&http2, "/healthz");
    assert!(health.contains("recovered merged_devices=20"), "{health}");

    let mut client = PushClient::connect(&push2, "0/2").unwrap();
    assert_eq!(
        client.push(&c0, true).unwrap().outcome,
        PushOutcome::Duplicate,
        "re-sent folded final must be a duplicate, not an overlap"
    );
    // An older cumulative resend is stale, same as before the kill.
    let mut c0_half = fleet::Collector::new_range(&spec, 0);
    for i in 0..10 {
        c0_half.absorb(&fleet::run_device(&spec, i));
    }
    assert_eq!(
        client.push(&c0_half, false).unwrap().outcome,
        PushOutcome::Stale
    );

    let (c1, _) = run_partition(&spec, 2, 1, 2);
    let ack = client.push(&c1, true).unwrap();
    assert!(ack.complete);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The journal's file lifecycle: buffered slices live as
/// `slice-<start>.json`, folding compacts them into `merged.json` and
/// deletes the slice files, and the shutdown flush leaves a rendered
/// `snapshot.json` behind.
#[test]
fn compaction_and_flush_file_lifecycle() {
    let spec = spec();
    let dir = tmpdir("lifecycle");
    let store = Store::open(&dir).unwrap();
    let mut ingest = Ingest::with_store(spec.clone(), store).unwrap();

    // An out-of-order final buffers: slice file exists, no merged yet.
    let (c1, _) = run_partition(&spec, 2, 1, 2);
    ingest.push("1/2", &c1.state_json(), true, 0).unwrap();
    assert!(dir.join("slice-20.json").exists());
    assert!(!dir.join("merged.json").exists());

    // The gap fills: both slices fold, merged.json appears, slice
    // files are compacted away.
    let (c0, _) = run_partition(&spec, 2, 0, 2);
    let ack = ingest.push("0/2", &c0.state_json(), true, 0).unwrap();
    assert!(ack.complete);
    assert!(dir.join("merged.json").exists());
    assert!(!dir.join("slice-0.json").exists(), "compacted");
    assert!(!dir.join("slice-20.json").exists(), "compacted");

    // The shutdown flush renders the final snapshot next to the
    // journal, byte-identical to what /snapshot would serve.
    ingest.flush_to_store().unwrap();
    let snapshot = std::fs::read_to_string(dir.join("snapshot.json")).unwrap();
    assert_eq!(snapshot, ingest.snapshot_pretty());

    std::fs::remove_dir_all(&dir).unwrap();
}
