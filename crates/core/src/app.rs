//! The AcuteMon app: background-traffic thread (BT) + measurement thread
//! (MT), per Fig. 6 of the paper.
//!
//! * **BT**: sends one warm-up packet at `start`, then keep-awake
//!   background packets every `db` for the duration of the measurement.
//!   All carry TTL `warmup_ttl` (1 by default) so the first-hop gateway
//!   drops them; the responses (ICMP Time Exceeded) are ignored.
//! * **MT**: `dpre` after the warm-up packet, sends `K` probes
//!   sequentially (each fired when the previous completes or times out) —
//!   this is why a K=5 run over a 100 ms path costs only ~25 background
//!   packets (§4.1).
//!
//! In the paper the MT is a pre-compiled native binary to avoid DVM
//! overhead; install this app with [`phone::RuntimeKind::Native`] for the
//! same effect.

use phone::{App, AppCtx};
use simcore::SimTime;
use wire::{IcmpKind, Packet, PacketTag, TcpFlags, L4};

use crate::config::{AcuteMonConfig, ProbeKind};
use measure::{ProbeError, ProbeMetrics, RttRecord};
use obs::{Counter, Registry};

const TAG_MT_START: u32 = 1;
const TAG_BG: u32 = 2;
const TAG_TIMEOUT_BASE: u32 = 1000;
/// Timer tags `TAG_RETRY_BASE + n` fire the scheduled resend of probe `n`
/// after its backoff (disjoint from the timeout tag space).
const TAG_RETRY_BASE: u32 = 0x4000_0000;

/// Background-traffic accounting (battery-cost proxy, §4.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct BtStats {
    /// Warm-up packets sent (normally 1).
    pub warmup_sent: u64,
    /// Background keep-awake packets sent.
    pub background_sent: u64,
    /// Fresh warm-ups sent to re-warm the path before a probe retry.
    pub rewarms_sent: u64,
}

/// Telemetry handles for one AcuteMon session (`acutemon.*`).
/// Defaults to disabled no-op handles.
#[derive(Default)]
struct AmMetrics {
    probes: ProbeMetrics,
    warmup_sent: Counter,
    background_sent: Counter,
}

impl AmMetrics {
    fn from_registry(reg: &Registry) -> AmMetrics {
        AmMetrics {
            probes: ProbeMetrics::from_registry(reg, "acutemon"),
            warmup_sent: reg.counter("acutemon.warmup_sent"),
            background_sent: reg.counter("acutemon.background_sent"),
        }
    }
}

/// The AcuteMon app.
pub struct AcuteMonApp {
    cfg: AcuteMonConfig,
    /// Per-probe user-level records.
    pub records: Vec<RttRecord>,
    /// BT accounting.
    pub bt: BtStats,
    sent: u32,
    bt_active: bool,
    finished_at: Option<SimTime>,
    metrics: AmMetrics,
}

impl AcuteMonApp {
    /// Create an AcuteMon session.
    pub fn new(cfg: AcuteMonConfig) -> AcuteMonApp {
        AcuteMonApp {
            cfg,
            records: Vec::new(),
            bt: BtStats::default(),
            sent: 0,
            bt_active: false,
            finished_at: None,
            metrics: AmMetrics::default(),
        }
    }

    /// Register this session's telemetry (`measure.acutemon.*` probe
    /// counters plus `acutemon.{warmup,background}_sent`) in `reg`.
    pub fn attach_metrics(&mut self, reg: &Registry) {
        self.metrics = AmMetrics::from_registry(reg);
    }

    /// The configuration.
    pub fn config(&self) -> &AcuteMonConfig {
        &self.cfg
    }

    /// When the K-th probe completed (None while running).
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    fn src_port(&self, probe: u32) -> u16 {
        self.cfg.session.wrapping_add(probe as u16)
    }

    fn send_background(&mut self, ctx: &mut AppCtx<'_, '_>, warmup: bool) {
        ctx.send(
            self.cfg.warmup_dst,
            self.cfg.warmup_ttl,
            L4::Udp {
                src_port: self.cfg.session,
                dst_port: 33434, // traceroute-style throwaway port
            },
            8,
            if warmup {
                PacketTag::WarmUp
            } else {
                PacketTag::Background
            },
        );
        if warmup {
            self.bt.warmup_sent += 1;
            self.metrics.warmup_sent.inc();
        } else {
            self.bt.background_sent += 1;
            self.metrics.background_sent.inc();
        }
    }

    /// Send one warm-up packet ahead of a retry so the resent probe rides
    /// an awake radio path (same TTL-limited shape as the BT's traffic).
    fn send_rewarm(&mut self, ctx: &mut AppCtx<'_, '_>) {
        ctx.send(
            self.cfg.warmup_dst,
            self.cfg.warmup_ttl,
            L4::Udp {
                src_port: self.cfg.session,
                dst_port: 33434,
            },
            8,
            PacketTag::WarmUp,
        );
        self.bt.rewarms_sent += 1;
        self.metrics.probes.on_rewarm();
    }

    /// Wire shape of probe `n` (identical across retries, so replies to
    /// any attempt match the same record).
    fn probe_l4(&self, n: u32) -> (L4, usize) {
        let l4 = match self.cfg.probe {
            ProbeKind::TcpConnect => L4::Tcp {
                src_port: self.src_port(n),
                dst_port: self.cfg.target_port,
                flags: TcpFlags::SYN,
                seq: 0x4000 + n,
                ack: 0,
            },
            ProbeKind::TcpData => L4::Tcp {
                src_port: self.src_port(n),
                dst_port: self.cfg.target_port,
                flags: TcpFlags::PSH | TcpFlags::ACK,
                seq: 0x4000 + n,
                ack: 1,
            },
            ProbeKind::Icmp => L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident: self.cfg.session,
                seq: n as u16,
            },
            ProbeKind::Udp => L4::Udp {
                src_port: self.src_port(n),
                dst_port: 7,
            },
        };
        let payload = match self.cfg.probe {
            ProbeKind::TcpData => 120, // HTTP GET
            ProbeKind::Icmp => 56,
            ProbeKind::Udp => 32,
            ProbeKind::TcpConnect => 0,
        };
        (l4, payload)
    }

    /// Put probe `n` on the wire and arm its timeout. Returns the packet id.
    fn fire_probe(&mut self, ctx: &mut AppCtx<'_, '_>, n: u32) -> u64 {
        let (l4, payload) = self.probe_l4(n);
        let id = ctx.send(self.cfg.target, 64, l4, payload, PacketTag::Probe(n));
        if let Some(tc) = ctx.tracer().packet_ctx(id) {
            ctx.tracer().attr(tc.root, "tool", "acutemon");
        }
        self.metrics.probes.on_send();
        ctx.set_timer(self.cfg.probe_timeout, TAG_TIMEOUT_BASE + n);
        id
    }

    fn send_probe(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let n = self.sent;
        // `sent` must advance before the send: the RX demux (`probe_for`)
        // only claims replies for idx < sent, and a zero-RTT path could
        // answer within this same event.
        self.sent += 1;
        self.records.push(RttRecord::sent(n, 0, ctx.now()));
        let now = ctx.now();
        let id = self.fire_probe(ctx, n);
        let rec = &mut self.records[n as usize];
        rec.req_id = id;
        rec.tou = now;
    }

    /// A probe timed out with retry budget left: schedule the resend
    /// after an exponential backoff (+ deterministic jitter), re-warming
    /// the path first so the retry doesn't pay the wake cost again.
    fn schedule_retry(&mut self, ctx: &mut AppCtx<'_, '_>, probe: u32) {
        let rec = self.records[probe as usize];
        let attempt = rec.attempts; // 1-based: first retry backs off 1×
        let base_ms = self.cfg.retry_backoff.as_ms_f64();
        let backoff_ms = base_ms * f64::from(1u32 << (attempt - 1).min(16));
        let jitter_ms = ctx.rng().uniform(0.0, backoff_ms * 0.5);
        let mut delay = simcore::SimDuration::from_ms_f64(backoff_ms + jitter_ms);
        let rewarm_lead = self.cfg.effective_rewarm_dpre();
        if self.cfg.rewarm_on_retry {
            // The fresh warm-up needs its lead time to take effect before
            // the resend, exactly like the initial warm-up choreography.
            // On cellular bearers the lead covers the RRC promotion
            // delay, which dwarfs the WiFi-scale `dpre`.
            delay = delay.max(rewarm_lead);
            self.send_rewarm(ctx);
        }
        self.metrics.probes.on_retry();
        let now = ctx.now();
        let tracer = ctx.tracer();
        if let Some(tc) = tracer.packet_ctx(rec.req_id) {
            // Make the recovery visible in the waterfall: a `retry` span
            // covering the backoff window (and a `rewarm` marker) under
            // the lost attempt's trace.
            let span = tracer.span(
                tc.trace,
                Some(tc.root),
                "retry",
                "fault",
                now.as_nanos(),
                (now + delay).as_nanos(),
            );
            tracer.attr(span, "attempt", attempt + 1);
            if self.cfg.rewarm_on_retry {
                let rw = tracer.span(
                    tc.trace,
                    Some(tc.root),
                    "rewarm",
                    "fault",
                    now.as_nanos(),
                    (now + rewarm_lead).as_nanos(),
                );
                tracer.attr(rw, "probe", probe);
            }
        }
        ctx.set_timer(delay, TAG_RETRY_BASE + probe);
    }

    /// The backoff elapsed: resend probe `n` (unless a late reply already
    /// closed it).
    fn resend_probe(&mut self, ctx: &mut AppCtx<'_, '_>, probe: u32) {
        if self
            .records
            .get(probe as usize)
            .is_none_or(|r| r.tiu.is_some())
        {
            return;
        }
        let now = ctx.now();
        let id = self.fire_probe(ctx, probe);
        let rec = &mut self.records[probe as usize];
        rec.req_id = id;
        rec.tou = now;
        rec.attempts += 1;
    }

    fn advance_mt(&mut self, ctx: &mut AppCtx<'_, '_>) {
        if self.sent < self.cfg.k {
            self.send_probe(ctx);
        } else if self.finished_at.is_none() {
            self.finished_at = Some(ctx.now());
            self.bt_active = false; // stop the BT: measurement is over
        }
    }

    fn probe_for(&self, packet: &Packet) -> Option<usize> {
        match (self.cfg.probe, packet.l4) {
            (
                ProbeKind::TcpConnect | ProbeKind::TcpData,
                L4::Tcp {
                    src_port, dst_port, ..
                },
            ) => {
                if src_port != self.cfg.target_port {
                    return None;
                }
                let idx = dst_port.wrapping_sub(self.cfg.session) as u32;
                (idx < self.sent).then_some(idx as usize)
            }
            (
                ProbeKind::Icmp,
                L4::Icmp {
                    kind: IcmpKind::EchoReply,
                    ident,
                    seq,
                },
            ) => (ident == self.cfg.session && u32::from(seq) < self.sent).then_some(seq as usize),
            (ProbeKind::Udp, L4::Udp { src_port, dst_port }) => {
                if src_port != 7 {
                    return None;
                }
                let idx = dst_port.wrapping_sub(self.cfg.session) as u32;
                (idx < self.sent).then_some(idx as usize)
            }
            _ => None,
        }
    }
}

impl App for AcuteMonApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let delay = self.cfg.start.saturating_since(ctx.now());
        // The warm-up/BG machinery begins at `start`; reuse the BG timer
        // with the convention that the first firing sends the warm-up.
        self.bt_active = true;
        ctx.set_timer(delay, TAG_BG);
        ctx.set_timer(delay + self.cfg.dpre, TAG_MT_START);
    }

    fn wants(&self, packet: &Packet) -> bool {
        self.probe_for(packet).is_some()
    }

    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet) {
        let Some(idx) = self.probe_for(&packet) else {
            return;
        };
        // For TcpConnect, accept SYN/ACK; for TcpData, PSH/ACK; anything
        // else (stray RST) still closes the probe — its arrival is the
        // user-level response time.
        let rec = &mut self.records[idx];
        if rec.tiu.is_some() {
            return;
        }
        let now = ctx.now();
        rec.resp_id = Some(packet.id);
        rec.tiu = Some(now);
        let rtt = now.saturating_since(rec.tou).as_ms_f64();
        rec.reported_ms = Some(rtt);
        self.metrics.probes.on_reply(rtt);
        if idx as u32 + 1 == self.sent {
            // The latest outstanding probe completed: fire the next one.
            self.advance_mt(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
        match tag {
            TAG_MT_START => self.advance_mt(ctx),
            TAG_BG => {
                if !self.bt_active {
                    return;
                }
                let warmup = self.bt.warmup_sent == 0;
                if !warmup && !self.cfg.background_enabled {
                    return; // warm-up only (Fig. 9 comparison arm)
                }
                self.send_background(ctx, warmup);
                ctx.set_timer(self.cfg.db, TAG_BG);
            }
            t if t >= TAG_RETRY_BASE => self.resend_probe(ctx, t - TAG_RETRY_BASE),
            t if t >= TAG_TIMEOUT_BASE => {
                let probe = t - TAG_TIMEOUT_BASE;
                let Some(rec) = self.records.get(probe as usize) else {
                    return;
                };
                if rec.tiu.is_some() || probe + 1 != self.sent {
                    return; // answered in time (or a stale timer)
                }
                self.metrics.probes.on_timeout();
                if rec.attempts <= self.cfg.max_retries {
                    self.schedule_retry(ctx, probe);
                    return;
                }
                // Budget exhausted (or retries disabled): record why and
                // move on — the sample stays in the set as censored.
                let attempts = rec.attempts;
                self.records[probe as usize].error = Some(if attempts > 1 {
                    ProbeError::Exhausted { attempts }
                } else {
                    ProbeError::Timeout
                });
                self.advance_mt(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::RecordSet;
    use netem::{LinkNode, LinkParams, ServerConfig, ServerNode};
    use phone::{PhoneNode, RuntimeKind};
    use simcore::{Sim, SimDuration};
    use wire::Msg;

    /// Phone ↔ link ↔ server, no WiFi: exercises BT/MT logic and the
    /// phone pipeline. (The full-testbed behaviour is verified in the
    /// `testbed` crate.)
    fn world(rtt_ms: u64, cfg: AcuteMonConfig) -> (Sim<Msg>, simcore::NodeId, usize) {
        world_with_fault(rtt_ms, cfg, None)
    }

    /// Same, with an optional fault plan installed on the single link.
    fn world_with_fault(
        rtt_ms: u64,
        cfg: AcuteMonConfig,
        fault: Option<&netem::FaultPlan>,
    ) -> (Sim<Msg>, simcore::NodeId, usize) {
        let mut sim = Sim::new(31);
        let server = sim.add_node(Box::new(ServerNode::new(
            50,
            ServerConfig::standard(phone::wired_ip(1)),
        )));
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(rtt_ms / 2))));
        let mut ph = PhoneNode::new(1, phone::nexus5(), phone::wlan_ip(100), link);
        let app = ph.install_app(Box::new(AcuteMonApp::new(cfg)), RuntimeKind::Native);
        let phone_id = sim.add_node(Box::new(ph));
        let ln = sim.node_mut::<LinkNode>(link);
        ln.connect(phone_id, server);
        if let Some(plan) = fault {
            ln.set_fault_plan(plan);
        }
        (sim, phone_id, app)
    }

    #[test]
    fn k_probes_complete_sequentially() {
        let cfg = AcuteMonConfig::new(phone::wired_ip(1), 10);
        let (mut sim, phone_id, app) = world(30, cfg);
        sim.run_until(SimTime::from_secs(5));
        let am = sim.node::<PhoneNode>(phone_id).app::<AcuteMonApp>(app);
        assert_eq!(am.records.len(), 10);
        assert!((am.records.completion() - 1.0).abs() < 1e-12);
        assert!(am.finished_at().is_some());
        // Sequential: each probe sent after the previous completed.
        for w in am.records.windows(2) {
            assert!(w[1].tou >= w[0].tiu.unwrap());
        }
    }

    #[test]
    fn warmup_removes_the_bus_wake_from_probes() {
        let cfg = AcuteMonConfig::new(phone::wired_ip(1), 20);
        let (mut sim, phone_id, app) = world(30, cfg);
        sim.run_until(SimTime::from_secs(5));
        let phone_node = sim.node::<PhoneNode>(phone_id);
        let am = phone_node.app::<AcuteMonApp>(app);
        // Probes ride a warm bus: dvsend small for every probe request.
        for rec in &am.records {
            let s = phone_node.ledger().get(rec.req_id).unwrap();
            let dvsend = s.dvsend_ms().unwrap();
            assert!(dvsend < 1.0, "probe {} dvsend={dvsend}", rec.probe);
        }
        // And du stays close to the true RTT.
        let du = am.records.du();
        let mean = du.iter().sum::<f64>() / du.len() as f64;
        assert!(mean < 30.0 + 4.0, "mean={mean}");
    }

    #[test]
    fn bt_sends_one_warmup_then_background_every_db() {
        let cfg = AcuteMonConfig::new(phone::wired_ip(1), 5);
        let (mut sim, phone_id, app) = world(100, cfg);
        sim.run_until(SimTime::from_secs(5));
        let am = sim.node::<PhoneNode>(phone_id).app::<AcuteMonApp>(app);
        assert_eq!(am.bt.warmup_sent, 1);
        // K=5 probes over a 100 ms path ≈ 500 ms of measurement; at
        // db=20ms that is ~25 background packets (§4.1's estimate).
        assert!(
            (15..=35).contains(&am.bt.background_sent),
            "bg={}",
            am.bt.background_sent
        );
    }

    #[test]
    fn bt_stops_after_measurement() {
        let cfg = AcuteMonConfig::new(phone::wired_ip(1), 3);
        let (mut sim, phone_id, app) = world(20, cfg);
        sim.run_until(SimTime::from_secs(2));
        let sent_at_2s = sim
            .node::<PhoneNode>(phone_id)
            .app::<AcuteMonApp>(app)
            .bt
            .background_sent;
        sim.run_until(SimTime::from_secs(10));
        let sent_at_10s = sim
            .node::<PhoneNode>(phone_id)
            .app::<AcuteMonApp>(app)
            .bt
            .background_sent;
        assert_eq!(sent_at_2s, sent_at_10s, "BT must stop after the run");
    }

    #[test]
    fn warmup_packets_carry_ttl_1() {
        let cfg = AcuteMonConfig::new(phone::wired_ip(1), 2);
        let (mut sim, phone_id, _app) = world(20, cfg);
        sim.run_until(SimTime::from_secs(2));
        // All WarmUp/Background-tagged packets in the ledger were sent
        // with TTL 1 — verify via stats: the server never saw them
        // (TestWorld has no gateway, so they do arrive here; the TTL
        // check happens at the AP in the full testbed). Check the tag mix
        // on the phone instead.
        let phone_node = sim.node::<PhoneNode>(phone_id);
        assert!(phone_node.core().stats.tx_pkts > 2);
    }

    #[test]
    fn probe_kinds_all_complete() {
        for kind in [
            ProbeKind::TcpConnect,
            ProbeKind::TcpData,
            ProbeKind::Icmp,
            ProbeKind::Udp,
        ] {
            let cfg = AcuteMonConfig::new(phone::wired_ip(1), 5).with_probe(kind);
            let (mut sim, phone_id, app) = world(25, cfg);
            sim.run_until(SimTime::from_secs(5));
            let am = sim.node::<PhoneNode>(phone_id).app::<AcuteMonApp>(app);
            assert!(
                (am.records.completion() - 1.0).abs() < 1e-12,
                "kind {kind:?} completion {}",
                am.records.completion()
            );
        }
    }

    #[test]
    fn retries_recover_all_probes_under_bursty_loss() {
        // 20% bursty (Gilbert–Elliott) loss on the only link, hitting
        // probes, replies, and keep-awake traffic alike. With a retry
        // budget the run must still complete every probe — no panic, no
        // silently dropped samples.
        let plan = netem::FaultPlan::gilbert_elliott(0.20, 4.0).with_seed(7);
        let mut cfg = AcuteMonConfig::new(phone::wired_ip(1), 20)
            .with_retries(8)
            .with_retry_backoff(SimDuration::from_millis(20));
        cfg.probe_timeout = SimDuration::from_millis(200);
        let (mut sim, phone_id, app) = world_with_fault(30, cfg, Some(&plan));
        sim.run_until(SimTime::from_secs(120));
        let am = sim.node::<PhoneNode>(phone_id).app::<AcuteMonApp>(app);
        assert_eq!(am.records.len(), 20);
        assert!(
            (am.records.completion() - 1.0).abs() < 1e-12,
            "completion {} with {} retries",
            am.records.completion(),
            am.records.total_retries()
        );
        assert!(am.finished_at().is_some());
        // The loss actually bit: some probes needed more than one try,
        // and each retry re-warmed the path first.
        assert!(am.records.total_retries() > 0);
        assert!(am.records.iter().any(|r| r.recovered()));
        assert_eq!(am.bt.rewarms_sent, am.records.total_retries());
        // No record carries an error — every loss was recovered.
        assert!(am.records.iter().all(|r| r.error.is_none()));
    }

    #[test]
    fn retry_emits_spans_under_original_trace() {
        // A flap window eats the first attempt of probe 0; the retry
        // lands after the window. The recovery must be visible as
        // `retry`/`rewarm` spans in the same trace as the lost attempt,
        // and the link drop as a `lost` span.
        let plan = netem::FaultPlan::none()
            .with_flap(SimTime::from_millis(10), SimTime::from_millis(150))
            .with_seed(3);
        let mut cfg = AcuteMonConfig::new(phone::wired_ip(1), 1)
            .with_retries(3)
            .with_retry_backoff(SimDuration::from_millis(50));
        cfg.probe_timeout = SimDuration::from_millis(100);
        let (mut sim, phone_id, app) = world_with_fault(30, cfg, Some(&plan));
        let tracer = obs::Tracer::new();
        sim.set_tracer(&tracer);
        sim.run_until(SimTime::from_secs(5));
        let am = sim.node::<PhoneNode>(phone_id).app::<AcuteMonApp>(app);
        assert_eq!(am.records.len(), 1);
        let rec = &am.records[0];
        assert!(rec.completed());
        assert!(rec.recovered(), "attempts={}", rec.attempts);
        assert!(am.bt.rewarms_sent >= 1);

        let spans = tracer.spans();
        let retry = spans
            .iter()
            .find(|s| s.name == "retry" && s.cat == "fault")
            .expect("retry span");
        assert!(spans.iter().any(|s| s.name == "rewarm" && s.cat == "fault"));
        let lost = spans
            .iter()
            .find(|s| s.name == "lost" && s.cat == "fault")
            .expect("lost span from the link drop");
        // The retry span hangs off the trace of the dropped attempt.
        assert_eq!(retry.trace, lost.trace);
    }

    #[test]
    fn exhausted_budget_records_probe_error() {
        // Link down for the whole run: with a budget of 2 retries the
        // probe is tried 3 times then given up as Exhausted; with no
        // budget it is a plain Timeout.
        let plan = netem::FaultPlan::none()
            .with_flap(SimTime::ZERO, SimTime::from_secs(3600))
            .with_seed(1);
        let mut cfg = AcuteMonConfig::new(phone::wired_ip(1), 1)
            .with_retries(2)
            .with_retry_backoff(SimDuration::from_millis(10));
        cfg.probe_timeout = SimDuration::from_millis(50);
        let (mut sim, phone_id, app) = world_with_fault(30, cfg.clone(), Some(&plan));
        sim.run_until(SimTime::from_secs(30));
        let am = sim.node::<PhoneNode>(phone_id).app::<AcuteMonApp>(app);
        let rec = &am.records[0];
        assert!(!rec.completed());
        assert_eq!(rec.attempts, 3);
        assert_eq!(rec.error, Some(ProbeError::Exhausted { attempts: 3 }));
        assert!(am.finished_at().is_some(), "run must still terminate");

        cfg.max_retries = 0;
        let (mut sim, phone_id, app) = world_with_fault(30, cfg, Some(&plan));
        sim.run_until(SimTime::from_secs(30));
        let am = sim.node::<PhoneNode>(phone_id).app::<AcuteMonApp>(app);
        assert_eq!(am.records[0].attempts, 1);
        assert_eq!(am.records[0].error, Some(ProbeError::Timeout));
    }

    #[test]
    fn delayed_start_respected() {
        let cfg = AcuteMonConfig::new(phone::wired_ip(1), 2).starting_at(SimTime::from_secs(1));
        let (mut sim, phone_id, app) = world(20, cfg);
        sim.run_until(SimTime::from_secs(5));
        let am = sim.node::<PhoneNode>(phone_id).app::<AcuteMonApp>(app);
        assert!(am.records[0].tou >= SimTime::from_secs(1) + SimDuration::from_millis(20));
    }
}
