//! Residual-overhead calibration (§4.2.2):
//!
//! > "the delay overheads for AcuteMon are independent of nRTTs, and the
//! > values of the overheads are much more stable. Therefore, the true
//! > value can be obtained by performing calibration."
//!
//! A [`Calibration`] is learned from one run against a path of known RTT
//! (or from the phone profile's expected driver costs) and then subtracts
//! the stable residual from subsequent user-level measurements.

use am_stats::median;

/// A learned calibration for one phone (+ runtime kind).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The stable residual overhead to subtract, ms.
    pub overhead_ms: f64,
    /// Spread of the residual in the calibration run (median absolute
    /// deviation), ms — a quality indicator.
    pub spread_ms: f64,
    /// Samples the calibration was learned from.
    pub n: usize,
}

impl Calibration {
    /// Learn from a calibration run: user-level RTTs (`du`, ms) measured
    /// against a path whose true RTT is known (e.g. from sniffers or an
    /// emulated link). Returns `None` on an empty run.
    pub fn from_run(du_ms: &[f64], true_rtt_ms: f64) -> Option<Calibration> {
        let med = median(du_ms)?;
        let overhead = med - true_rtt_ms;
        let deviations: Vec<f64> = du_ms.iter().map(|d| (d - med).abs()).collect();
        let spread = median(&deviations).unwrap_or(0.0);
        Some(Calibration {
            overhead_ms: overhead,
            spread_ms: spread,
            n: du_ms.len(),
        })
    }

    /// Apply the calibration to a measured user-level RTT.
    pub fn apply(&self, du_ms: f64) -> f64 {
        (du_ms - self.overhead_ms).max(0.0)
    }

    /// Combine calibrations from several runs (weighted by sample count).
    pub fn merge(cals: &[Calibration]) -> Option<Calibration> {
        if cals.is_empty() {
            return None;
        }
        let total: usize = cals.iter().map(|c| c.n).sum();
        if total == 0 {
            return None;
        }
        let w = |c: &Calibration| c.n as f64 / total as f64;
        Some(Calibration {
            overhead_ms: cals.iter().map(|c| c.overhead_ms * w(c)).sum(),
            spread_ms: cals.iter().map(|c| c.spread_ms * w(c)).sum(),
            n: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_median_offset() {
        let du = [32.0, 32.5, 31.8, 32.2, 40.0]; // one outlier
        let cal = Calibration::from_run(&du, 30.0).unwrap();
        assert!((cal.overhead_ms - 2.2).abs() < 1e-9);
        assert!((cal.apply(52.2) - 50.0).abs() < 1e-9);
        assert_eq!(cal.n, 5);
    }

    #[test]
    fn empty_run_is_none() {
        assert!(Calibration::from_run(&[], 30.0).is_none());
    }

    #[test]
    fn apply_never_negative() {
        let cal = Calibration {
            overhead_ms: 5.0,
            spread_ms: 0.1,
            n: 10,
        };
        assert_eq!(cal.apply(3.0), 0.0);
    }

    #[test]
    fn merge_weights_by_samples() {
        let a = Calibration {
            overhead_ms: 2.0,
            spread_ms: 0.2,
            n: 10,
        };
        let b = Calibration {
            overhead_ms: 4.0,
            spread_ms: 0.4,
            n: 30,
        };
        let m = Calibration::merge(&[a, b]).unwrap();
        assert!((m.overhead_ms - 3.5).abs() < 1e-9);
        assert_eq!(m.n, 40);
        assert!(Calibration::merge(&[]).is_none());
    }

    #[test]
    fn calibration_recovers_true_rtt_within_spread() {
        // Synthetic AcuteMon-like residual: ~2 ± 0.5 ms.
        let du: Vec<f64> = (0..50)
            .map(|i| 85.0 + 2.0 + ((i % 5) as f64 - 2.0) * 0.25)
            .collect();
        let cal = Calibration::from_run(&du, 85.0).unwrap();
        for &d in &du {
            let corrected = cal.apply(d);
            assert!((corrected - 85.0).abs() < 1.0, "corrected={corrected}");
        }
        assert!(cal.spread_ms < 0.6);
    }
}
