//! AcuteMon configuration (§4.1).

use simcore::{SimDuration, SimTime};
use wire::Ip;

/// What the measurement thread sends (§4.1: "AcuteMon uses TCP control
/// messages (TCP SYN/ACK packets) and TCP data packets (HTTP request and
/// response)… easily extended to UDP and ICMP").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// TCP control messages: SYN → SYN/ACK.
    TcpConnect,
    /// TCP data packets: HTTP request → HTTP response.
    TcpData,
    /// ICMP echo.
    Icmp,
    /// UDP echo.
    Udp,
}

/// AcuteMon configuration.
#[derive(Debug, Clone)]
pub struct AcuteMonConfig {
    /// The target server to measure.
    pub target: Ip,
    /// Target TCP port (for the TCP probe kinds).
    pub target_port: u16,
    /// Warm-up/background destination. Any routable address works: the
    /// packets carry `warmup_ttl` and die at the first hop.
    pub warmup_dst: Ip,
    /// Number of probes `K`.
    pub k: u32,
    /// Probe kind.
    pub probe: ProbeKind,
    /// Warm-up lead time `dpre`; must satisfy
    /// `Tprom < dpre < min(Tis, Tip)`. Default 20 ms (§4.1).
    pub dpre: SimDuration,
    /// Background inter-packet interval `db < min(Tis, Tip)`. Default
    /// 20 ms (§4.1).
    pub db: SimDuration,
    /// TTL of warm-up/background packets. Default 1: dropped at the
    /// first-hop gateway so they never load the measured path.
    pub warmup_ttl: u8,
    /// Per-probe timeout (lost probes are recorded and skipped).
    pub probe_timeout: SimDuration,
    /// When to begin the warm-up phase (simulation time).
    pub start: SimTime,
    /// ICMP ident / base source port discriminator for this session.
    pub session: u16,
    /// Whether the BT sends background traffic after the warm-up packet.
    /// Fig. 9 disables this (with bus sleep also disabled) to show the
    /// background traffic itself is harmless.
    pub background_enabled: bool,
    /// Bounded retries per probe after a timeout (0 = the paper's
    /// behaviour: record the loss and move on).
    pub max_retries: u32,
    /// Base retry backoff; attempt `i` waits `retry_backoff × 2^(i−1)`
    /// plus deterministic jitter before resending.
    pub retry_backoff: SimDuration,
    /// Send a fresh warm-up packet before each retry and hold the resend
    /// at least `dpre`, so the retried probe rides a re-warmed radio path
    /// instead of paying the wake cost again.
    pub rewarm_on_retry: bool,
    /// Re-warm lead time used for *retries* instead of `dpre`, when set.
    /// On WiFi the two are the same (a few ms of `Tprom` either way), but
    /// on cellular a timed-out probe plus its backoff can outlast the RRC
    /// inactivity timers — the bearer demotes, and the re-warm must cover
    /// the full *promotion delay* (`cellular::acutemon_rewarm_dpre`), not
    /// the WiFi-scale `dpre`.
    pub rewarm_dpre: Option<SimDuration>,
}

impl AcuteMonConfig {
    /// The paper's defaults: TCP connect probes, `dpre = db = 20 ms`,
    /// TTL 1.
    pub fn new(target: Ip, k: u32) -> AcuteMonConfig {
        AcuteMonConfig {
            target,
            target_port: 80,
            warmup_dst: target,
            k,
            probe: ProbeKind::TcpConnect,
            dpre: SimDuration::from_millis(20),
            db: SimDuration::from_millis(20),
            warmup_ttl: 1,
            probe_timeout: SimDuration::from_secs(2),
            start: SimTime::ZERO,
            session: 0x7A00,
            background_enabled: true,
            max_retries: 0,
            retry_backoff: SimDuration::from_millis(50),
            rewarm_on_retry: true,
            rewarm_dpre: None,
        }
    }

    /// The effective re-warm lead for a retry: `rewarm_dpre` when set
    /// (cellular), `dpre` otherwise (WiFi).
    pub fn effective_rewarm_dpre(&self) -> SimDuration {
        self.rewarm_dpre.unwrap_or(self.dpre)
    }

    /// Builder: allow up to `n` retries per probe (with exponential
    /// backoff and re-warm, unless disabled via
    /// [`AcuteMonConfig::without_rewarm`]).
    pub fn with_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Builder: set the base retry backoff.
    pub fn with_retry_backoff(mut self, backoff: SimDuration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Builder: retry without sending a fresh warm-up first (isolates the
    /// value of re-warming in ablations).
    pub fn without_rewarm(mut self) -> Self {
        self.rewarm_on_retry = false;
        self
    }

    /// Builder: hold retried probes at least `lead` behind their fresh
    /// warm-up (use `cellular::acutemon_rewarm_dpre` on RRC bearers).
    pub fn with_rewarm_dpre(mut self, lead: SimDuration) -> Self {
        self.rewarm_dpre = Some(lead);
        self
    }

    /// Builder: disable the background keep-awake traffic (warm-up packet
    /// only) — the Fig. 9 comparison arm.
    pub fn without_background(mut self) -> Self {
        self.background_enabled = false;
        self
    }

    /// Builder: set the probe kind.
    pub fn with_probe(mut self, probe: ProbeKind) -> Self {
        self.probe = probe;
        self
    }

    /// Builder: set `dpre` and `db` (the ablation sweeps these).
    pub fn with_timing(mut self, dpre: SimDuration, db: SimDuration) -> Self {
        self.dpre = dpre;
        self.db = db;
        self
    }

    /// Builder: set the warm-up TTL (the TTL ablation uses 64).
    pub fn with_warmup_ttl(mut self, ttl: u8) -> Self {
        self.warmup_ttl = ttl;
        self
    }

    /// Builder: start the measurement at `start`.
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AcuteMonConfig::new(Ip::new(10, 0, 0, 1), 100);
        assert_eq!(c.dpre, SimDuration::from_millis(20));
        assert_eq!(c.db, SimDuration::from_millis(20));
        assert_eq!(c.warmup_ttl, 1);
        assert_eq!(c.k, 100);
        assert_eq!(c.probe, ProbeKind::TcpConnect);
    }

    #[test]
    fn builders() {
        let c = AcuteMonConfig::new(Ip::new(10, 0, 0, 1), 5)
            .with_probe(ProbeKind::Icmp)
            .with_timing(SimDuration::from_millis(10), SimDuration::from_millis(40))
            .with_warmup_ttl(64)
            .starting_at(SimTime::from_secs(1));
        assert_eq!(c.probe, ProbeKind::Icmp);
        assert_eq!(c.db, SimDuration::from_millis(40));
        assert_eq!(c.warmup_ttl, 64);
        assert_eq!(c.start, SimTime::from_secs(1));
    }

    #[test]
    fn retries_default_off() {
        let c = AcuteMonConfig::new(Ip::new(10, 0, 0, 1), 5);
        assert_eq!(c.max_retries, 0);
        assert!(c.rewarm_on_retry);
        let c = c
            .with_retries(3)
            .with_retry_backoff(SimDuration::from_millis(25))
            .without_rewarm();
        assert_eq!(c.max_retries, 3);
        assert_eq!(c.retry_backoff, SimDuration::from_millis(25));
        assert!(!c.rewarm_on_retry);
    }
}
