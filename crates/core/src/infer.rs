//! Timeout inference — the paper's future-work "training" (§4.1):
//!
//! > "inferring the actual `Tis` and `Tip` of a particular smartphone is
//! > challenging. A simple solution is training the program to obtain
//! > suitable values."
//!
//! [`TimeoutInferApp`] implements that training for the host-bus timeout
//! `Tis`, entirely at app level: it primes the radio path, idles a
//! controlled gap, probes, and looks for the step in user-level RTT where
//! the bus starts paying its wake cost. The estimate then drives safe
//! `dpre`/`db` choices (`db < min(Tis, Tip)`). `Tip` needs a sniffer's
//! view (or server cooperation) and is measured by the testbed's Table-4
//! experiment instead.

use phone::{App, AppCtx};
use simcore::SimDuration;
use wire::{IcmpKind, Ip, Packet, PacketTag, L4};

/// Configuration for the training run.
#[derive(Debug, Clone)]
pub struct TimeoutInferConfig {
    /// Echo target (anything that answers ICMP).
    pub target: Ip,
    /// Idle gaps to test, in ms, ascending.
    pub gaps_ms: Vec<u64>,
    /// Probes per gap.
    pub reps: u32,
    /// ICMP ident for this session.
    pub session: u16,
}

impl TimeoutInferConfig {
    /// A standard sweep bracketing the default 50 ms `Tis`.
    pub fn standard(target: Ip) -> TimeoutInferConfig {
        TimeoutInferConfig {
            target,
            gaps_ms: vec![10, 20, 30, 40, 45, 55, 60, 70, 90, 120],
            reps: 8,
            session: 0x1F00,
        }
    }
}

/// One training sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapSample {
    /// Idle gap before the test probe, ms.
    pub gap_ms: u64,
    /// Measured user-level RTT of the test probe, ms.
    pub rtt_ms: f64,
}

const TAG_GAP_DONE: u32 = 1;

/// The training app: sweeps idle gaps and records test-probe RTTs.
pub struct TimeoutInferApp {
    cfg: TimeoutInferConfig,
    /// Collected samples.
    pub samples: Vec<GapSample>,
    /// Iteration cursor: `iter = gap_idx * reps + rep`.
    iter: u32,
    seq: u16,
    phase: Phase,
    probe_sent_at: Option<simcore::SimTime>,
    /// Set once the sweep is complete.
    pub done: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Waiting for the primer reply.
    Priming,
    /// Idling the gap.
    Gapping,
    /// Waiting for the test reply.
    Testing,
}

impl TimeoutInferApp {
    /// Create a training session.
    pub fn new(cfg: TimeoutInferConfig) -> TimeoutInferApp {
        TimeoutInferApp {
            cfg,
            samples: Vec::new(),
            iter: 0,
            seq: 0,
            phase: Phase::Priming,
            probe_sent_at: None,
            done: false,
        }
    }

    fn total_iters(&self) -> u32 {
        self.cfg.gaps_ms.len() as u32 * self.cfg.reps
    }

    fn current_gap(&self) -> Option<u64> {
        let idx = (self.iter / self.cfg.reps) as usize;
        self.cfg.gaps_ms.get(idx).copied()
    }

    fn send_echo(&mut self, ctx: &mut AppCtx<'_, '_>) -> u16 {
        let seq = self.seq;
        self.seq += 1;
        ctx.send(
            self.cfg.target,
            64,
            L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident: self.cfg.session,
                seq,
            },
            56,
            PacketTag::Probe(u32::from(seq)),
        );
        seq
    }

    fn start_iteration(&mut self, ctx: &mut AppCtx<'_, '_>) {
        if self.iter >= self.total_iters() {
            self.done = true;
            return;
        }
        self.phase = Phase::Priming;
        self.send_echo(ctx);
    }
}

impl App for TimeoutInferApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.start_iteration(ctx);
    }

    fn wants(&self, packet: &Packet) -> bool {
        matches!(
            packet.l4,
            L4::Icmp {
                kind: IcmpKind::EchoReply,
                ident,
                ..
            } if ident == self.cfg.session
        )
    }

    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, _packet: Packet) {
        match self.phase {
            Phase::Priming => {
                // Primer answered: the RX path was just active. Idle the
                // gap from *now*.
                let Some(gap) = self.current_gap() else {
                    self.done = true;
                    return;
                };
                self.phase = Phase::Gapping;
                ctx.set_timer(SimDuration::from_millis(gap), TAG_GAP_DONE);
            }
            Phase::Testing => {
                let rtt = ctx
                    .now()
                    .saturating_since(self.probe_sent_at.expect("test probe sent"))
                    .as_ms_f64();
                if let Some(gap_ms) = self.current_gap() {
                    self.samples.push(GapSample {
                        gap_ms,
                        rtt_ms: rtt,
                    });
                }
                self.iter += 1;
                self.start_iteration(ctx);
            }
            Phase::Gapping => {} // stray duplicate; ignore
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
        if tag == TAG_GAP_DONE && self.phase == Phase::Gapping {
            self.phase = Phase::Testing;
            self.probe_sent_at = Some(ctx.now());
            self.send_echo(ctx);
        }
    }
}

/// The result of analysing a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutEstimate {
    /// Estimated bus demotion timeout `Tis`, ms (midpoint between the
    /// last clean gap and the first inflated one).
    pub tis_ms: f64,
    /// Baseline (awake-path) RTT, ms.
    pub baseline_ms: f64,
    /// Recommended background interval `db` (safely under the estimate).
    pub recommended_db_ms: f64,
}

/// Estimate `Tis` from training samples. `threshold_ms` is the RTT step
/// that distinguishes a wake from noise (the Broadcom wake is ~10 ms, the
/// Qualcomm one ~5 ms; 3 ms splits both from the sub-ms awake path).
pub fn estimate_tis(samples: &[GapSample], threshold_ms: f64) -> Option<TimeoutEstimate> {
    if samples.is_empty() {
        return None;
    }
    let mut gaps: Vec<u64> = samples.iter().map(|s| s.gap_ms).collect();
    gaps.sort_unstable();
    gaps.dedup();
    let median_at = |gap: u64| -> f64 {
        let mut v: Vec<f64> = samples
            .iter()
            .filter(|s| s.gap_ms == gap)
            .map(|s| s.rtt_ms)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v[v.len() / 2]
    };
    let baseline = median_at(gaps[0]);
    let mut last_clean = gaps[0];
    for &g in &gaps {
        if median_at(g) >= baseline + threshold_ms {
            let tis = (last_clean + g) as f64 / 2.0;
            return Some(TimeoutEstimate {
                tis_ms: tis,
                baseline_ms: baseline,
                recommended_db_ms: (tis * 0.4).max(5.0),
            });
        }
        last_clean = g;
    }
    None // no step found within the sweep (e.g. bus sleep disabled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netem::{LinkNode, LinkParams, ServerConfig, ServerNode};
    use phone::{PhoneNode, RuntimeKind};
    use simcore::{Sim, SimTime};

    #[test]
    fn estimate_from_synthetic_step() {
        let mut samples = Vec::new();
        for gap in [10u64, 30, 40, 60, 80] {
            for _ in 0..5 {
                let rtt = if gap >= 60 { 42.0 } else { 31.0 };
                samples.push(GapSample {
                    gap_ms: gap,
                    rtt_ms: rtt,
                });
            }
        }
        let est = estimate_tis(&samples, 3.0).unwrap();
        assert_eq!(est.tis_ms, 50.0); // midpoint of 40 and 60
        assert_eq!(est.baseline_ms, 31.0);
        assert!(est.recommended_db_ms < est.tis_ms);
    }

    #[test]
    fn no_step_returns_none() {
        let samples: Vec<GapSample> = (0..20)
            .map(|i| GapSample {
                gap_ms: 10 * (i % 5 + 1),
                rtt_ms: 30.0 + (i % 3) as f64 * 0.2,
            })
            .collect();
        assert!(estimate_tis(&samples, 3.0).is_none());
        assert!(estimate_tis(&[], 3.0).is_none());
    }

    #[test]
    fn training_run_discovers_nexus5_tis() {
        let mut sim = Sim::new(41);
        let server = sim.add_node(Box::new(ServerNode::new(
            50,
            ServerConfig::standard(phone::wired_ip(1)),
        )));
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(10))));
        let mut ph = PhoneNode::new(1, phone::nexus5(), phone::wlan_ip(100), link);
        let app = ph.install_app(
            Box::new(TimeoutInferApp::new(TimeoutInferConfig::standard(
                phone::wired_ip(1),
            ))),
            RuntimeKind::Native,
        );
        let phone_id = sim.add_node(Box::new(ph));
        sim.node_mut::<LinkNode>(link).connect(phone_id, server);
        sim.run_until(SimTime::from_secs(60));
        let infer = sim.node::<PhoneNode>(phone_id).app::<TimeoutInferApp>(app);
        assert!(
            infer.done,
            "sweep incomplete: {} samples",
            infer.samples.len()
        );
        let est = estimate_tis(&infer.samples, 3.0).expect("a step must exist");
        // True Tis is 50 ms; the sweep brackets it between 45 and 55.
        assert!(
            (45.0..=55.0).contains(&est.tis_ms),
            "tis estimate {}",
            est.tis_ms
        );
        assert!(est.recommended_db_ms < 50.0);
    }
}
