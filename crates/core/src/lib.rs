//! # acutemon — the paper's contribution
//!
//! AcuteMon (Li, Wu, Chang, Mok — CoNEXT 2016) measures network-level RTT
//! from an unrooted Android phone by *keeping the phone awake* for the
//! duration of the measurement, so that neither the SDIO bus sleep nor
//! 802.11 PSM inflates the probes:
//!
//! * a **background-traffic thread** sends one warm-up packet, waits
//!   `dpre` (default 20 ms, > the bus promotion delay), then sends a
//!   keep-awake packet every `db` (default 20 ms, < `min(Tis, Tip)`), all
//!   with TTL 1 so they die at the first-hop gateway;
//! * a **measurement thread** (native code, no DVM overhead) sends `K`
//!   TCP probes sequentially.
//!
//! This crate provides the simulated app ([`AcuteMonApp`]) evaluated
//! against the paper's numbers by the `testbed` crate, plus the two
//! extensions the paper sketches: timeout **training**
//! ([`TimeoutInferApp`]/[`estimate_tis`], §4.1 future work) and residual
//! **calibration** ([`Calibration`], §4.2.2). A real-socket Linux
//! implementation of the same algorithm lives in the `acutemon-live`
//! crate.
//!
//! ```
//! use acutemon::{AcuteMonConfig, ProbeKind};
//! use wire::Ip;
//!
//! let cfg = AcuteMonConfig::new(Ip::new(10, 0, 0, 1), 100)
//!     .with_probe(ProbeKind::TcpConnect);
//! assert_eq!(cfg.dpre.as_ms_f64(), 20.0);
//! assert_eq!(cfg.warmup_ttl, 1);
//! ```

#![warn(missing_docs)]

mod app;
mod calibrate;
mod config;
mod infer;
mod multi;
mod trained;

pub use app::{AcuteMonApp, BtStats};
pub use calibrate::Calibration;
pub use config::{AcuteMonConfig, ProbeKind};
pub use infer::{estimate_tis, GapSample, TimeoutEstimate, TimeoutInferApp, TimeoutInferConfig};
pub use multi::{MultiAcuteMonApp, MultiTargetConfig};
pub use trained::{TrainedAcuteMonApp, TrainedConfig, TrainedPhase};
