//! Multi-target measurement: one AcuteMon session measuring several
//! servers (the MopEye \[5, 38\] crowdsourcing scenario the paper's
//! introduction motivates — per-app/per-server RTTs from one phone).
//!
//! A single background thread keeps the phone awake for the whole session
//! — its cost is paid once, not per target — while the measurement thread
//! round-robins sequential probes across the targets. With `T` targets
//! and `K` probes each over paths of mean RTT `r`, the keep-awake budget
//! is still `≈ T·K·r / db` packets to the first hop and nothing beyond.

use phone::{App, AppCtx};
use simcore::SimTime;
use wire::{Ip, Packet, PacketTag, TcpFlags, L4};

use crate::app::BtStats;
use crate::config::AcuteMonConfig;
use measure::RttRecord;

/// Configuration for a multi-target session.
#[derive(Debug, Clone)]
pub struct MultiTargetConfig {
    /// The servers to measure (TCP-connect probing).
    pub targets: Vec<Ip>,
    /// Probes per target.
    pub k_per_target: u32,
    /// Timing/TTL/session parameters (the `target` field inside is
    /// ignored; `warmup_dst` is used as on the single-target app).
    pub base: AcuteMonConfig,
}

impl MultiTargetConfig {
    /// Paper-default timings against the given targets.
    pub fn new(targets: Vec<Ip>, k_per_target: u32) -> MultiTargetConfig {
        let warmup = targets.first().copied().unwrap_or(Ip::UNSPECIFIED);
        let total = targets.len() as u64 * u64::from(k_per_target);
        assert!(
            total < 50_000,
            "probe space exceeds the port-encoding range"
        );
        MultiTargetConfig {
            targets,
            k_per_target,
            base: AcuteMonConfig::new(warmup, k_per_target),
        }
    }
}

const TAG_MT_START: u32 = 1;
const TAG_BG: u32 = 2;
const TAG_TIMEOUT_BASE: u32 = 1000;

/// The multi-target app.
pub struct MultiAcuteMonApp {
    cfg: MultiTargetConfig,
    /// Per-target probe records: `records[t][p]`.
    pub records: Vec<Vec<RttRecord>>,
    /// Background-traffic accounting (shared across all targets).
    pub bt: BtStats,
    /// Linear probe cursor: `sent = t * k + p` for the next probe.
    sent: u32,
    bt_active: bool,
    finished_at: Option<SimTime>,
}

impl MultiAcuteMonApp {
    /// Create a session.
    pub fn new(cfg: MultiTargetConfig) -> MultiAcuteMonApp {
        let records = vec![Vec::new(); cfg.targets.len()];
        MultiAcuteMonApp {
            cfg,
            records,
            bt: BtStats::default(),
            sent: 0,
            bt_active: false,
            finished_at: None,
        }
    }

    /// Records for one target.
    pub fn records_for(&self, target: usize) -> &[RttRecord] {
        &self.records[target]
    }

    /// When the last probe completed.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    fn total(&self) -> u32 {
        self.cfg.targets.len() as u32 * self.cfg.k_per_target
    }

    /// Round-robin decode: linear index → (target, probe).
    fn decompose(&self, linear: u32) -> (usize, u32) {
        let t = (linear % self.cfg.targets.len() as u32) as usize;
        let p = linear / self.cfg.targets.len() as u32;
        (t, p)
    }

    fn src_port(&self, linear: u32) -> u16 {
        self.cfg.base.session.wrapping_add(linear as u16)
    }

    fn linear_for_port(&self, dst_port: u16) -> Option<u32> {
        let idx = dst_port.wrapping_sub(self.cfg.base.session) as u32;
        (idx < self.sent).then_some(idx)
    }

    fn send_background(&mut self, ctx: &mut AppCtx<'_, '_>, warmup: bool) {
        ctx.send(
            self.cfg.base.warmup_dst,
            self.cfg.base.warmup_ttl,
            L4::Udp {
                src_port: self.cfg.base.session,
                dst_port: 33434,
            },
            8,
            if warmup {
                PacketTag::WarmUp
            } else {
                PacketTag::Background
            },
        );
        if warmup {
            self.bt.warmup_sent += 1;
        } else {
            self.bt.background_sent += 1;
        }
    }

    fn send_probe(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let linear = self.sent;
        let (t, p) = self.decompose(linear);
        let id = ctx.send(
            self.cfg.targets[t],
            64,
            L4::Tcp {
                src_port: self.src_port(linear),
                dst_port: self.cfg.base.target_port,
                flags: TcpFlags::SYN,
                seq: 0x6000 + linear,
                ack: 0,
            },
            0,
            PacketTag::Probe(linear),
        );
        self.records[t].push(RttRecord::sent(p, id, ctx.now()));
        self.sent += 1;
        ctx.set_timer(self.cfg.base.probe_timeout, TAG_TIMEOUT_BASE + linear);
    }

    fn advance(&mut self, ctx: &mut AppCtx<'_, '_>) {
        if self.sent < self.total() {
            self.send_probe(ctx);
        } else if self.finished_at.is_none() {
            self.finished_at = Some(ctx.now());
            self.bt_active = false;
        }
    }
}

impl App for MultiAcuteMonApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let delay = self.cfg.base.start.saturating_since(ctx.now());
        self.bt_active = true;
        ctx.set_timer(delay, TAG_BG);
        ctx.set_timer(delay + self.cfg.base.dpre, TAG_MT_START);
    }

    fn wants(&self, packet: &Packet) -> bool {
        matches!(
            packet.l4,
            L4::Tcp { src_port, dst_port, .. }
                if src_port == self.cfg.base.target_port
                    && self.linear_for_port(dst_port).is_some()
        )
    }

    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet) {
        let L4::Tcp { dst_port, .. } = packet.l4 else {
            return;
        };
        let Some(linear) = self.linear_for_port(dst_port) else {
            return;
        };
        let (t, p) = self.decompose(linear);
        let rec = &mut self.records[t][p as usize];
        if rec.tiu.is_some() {
            return;
        }
        let now = ctx.now();
        rec.resp_id = Some(packet.id);
        rec.tiu = Some(now);
        rec.reported_ms = Some(now.saturating_since(rec.tou).as_ms_f64());
        if linear + 1 == self.sent {
            self.advance(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
        match tag {
            TAG_MT_START => self.advance(ctx),
            TAG_BG => {
                if !self.bt_active {
                    return;
                }
                let warmup = self.bt.warmup_sent == 0;
                if !warmup && !self.cfg.base.background_enabled {
                    return;
                }
                self.send_background(ctx, warmup);
                ctx.set_timer(self.cfg.base.db, TAG_BG);
            }
            t if t >= TAG_TIMEOUT_BASE => {
                let linear = t - TAG_TIMEOUT_BASE;
                let (tt, p) = self.decompose(linear);
                let lost = self.records[tt]
                    .get(p as usize)
                    .map(|r| r.tiu.is_none())
                    .unwrap_or(false);
                if lost && linear + 1 == self.sent {
                    self.advance(ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::RecordSet;
    use netem::{LinkNode, LinkParams, ServerConfig, ServerNode, SwitchNode};
    use phone::{PhoneNode, RuntimeKind};
    use simcore::{Sim, SimDuration};
    use wire::Msg;

    const NEAR: Ip = Ip::new(10, 0, 0, 1);
    const FAR: Ip = Ip::new(10, 0, 0, 2);

    /// Phone → switch → {20 ms link → near server, 80 ms link → far}.
    fn world(k: u32) -> (Sim<Msg>, simcore::NodeId, usize) {
        let mut sim = Sim::new(55);
        let sw = sim.add_node(Box::new(SwitchNode::new(SimDuration::from_micros(20))));
        let near = sim.add_node(Box::new(ServerNode::new(50, ServerConfig::standard(NEAR))));
        let far = sim.add_node(Box::new(ServerNode::new(51, ServerConfig::standard(FAR))));
        let l_near = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(10))));
        let l_far = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(40))));
        sim.node_mut::<LinkNode>(l_near).connect(sw, near);
        sim.node_mut::<LinkNode>(l_far).connect(sw, far);
        sim.node_mut::<SwitchNode>(sw).add_route(NEAR, l_near);
        sim.node_mut::<SwitchNode>(sw).add_route(FAR, l_far);
        let mut ph = PhoneNode::new(1, phone::nexus5(), phone::wlan_ip(100), sw);
        let app = ph.install_app(
            Box::new(MultiAcuteMonApp::new(MultiTargetConfig::new(
                vec![NEAR, FAR],
                k,
            ))),
            RuntimeKind::Native,
        );
        let phone_id = sim.add_node(Box::new(ph));
        // Responses route back to the phone.
        sim.node_mut::<SwitchNode>(sw)
            .add_route(phone::wlan_ip(100), phone_id);
        (sim, phone_id, app)
    }

    #[test]
    fn per_target_rtts_separate_cleanly() {
        let (mut sim, phone_id, app) = world(10);
        sim.run_until(SimTime::from_secs(10));
        let m = sim.node::<PhoneNode>(phone_id).app::<MultiAcuteMonApp>(app);
        assert!(m.finished_at().is_some());
        let near = m.records_for(0);
        let far = m.records_for(1);
        assert_eq!(near.len(), 10);
        assert_eq!(far.len(), 10);
        assert!((near.completion() - 1.0).abs() < 1e-12);
        assert!((far.completion() - 1.0).abs() < 1e-12);
        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let m_near = mean(near.du());
        let m_far = mean(far.du());
        assert!((m_near - 20.0).abs() < 5.0, "near {m_near}");
        assert!((m_far - 80.0).abs() < 5.0, "far {m_far}");
    }

    #[test]
    fn background_cost_is_shared_not_per_target() {
        let (mut sim, phone_id, app) = world(5);
        sim.run_until(SimTime::from_secs(10));
        let m = sim.node::<PhoneNode>(phone_id).app::<MultiAcuteMonApp>(app);
        assert_eq!(m.bt.warmup_sent, 1);
        // Duration ≈ 5×20 + 5×80 ms = 500 ms → ~25 background packets,
        // NOT 2× that.
        let dur_ms = m.finished_at().unwrap().as_ms_f64();
        let expect = dur_ms / 20.0;
        let got = m.bt.background_sent as f64;
        assert!(
            (got - expect).abs() <= 4.0,
            "bg {got} vs expected ~{expect}"
        );
    }

    #[test]
    fn probes_interleave_round_robin() {
        let (mut sim, phone_id, app) = world(4);
        sim.run_until(SimTime::from_secs(10));
        let m = sim.node::<PhoneNode>(phone_id).app::<MultiAcuteMonApp>(app);
        // Target 0's probe p is always sent before target 0's probe p+1,
        // and between them a probe to target 1 happened.
        let near = m.records_for(0);
        let far = m.records_for(1);
        for p in 0..3 {
            assert!(near[p].tou < far[p].tou);
            assert!(far[p].tou < near[p + 1].tou);
        }
    }

    #[test]
    #[should_panic(expected = "port-encoding range")]
    fn oversized_session_rejected() {
        let _ = MultiTargetConfig::new(vec![NEAR; 100], 1000);
    }
}
