//! Self-configuring AcuteMon — §4.1's future work, end to end:
//!
//! > "In our prototype of AcuteMon, dpre and db were assigned with
//! > empirical values. Although they work well in our testbed evaluation,
//! > they could be inappropriate for some smartphone models, because both
//! > Tis and Tip are tunable. … A simple solution is training the program
//! > to obtain suitable values."
//!
//! [`TrainedAcuteMonApp`] runs in two phases: **training** (the
//! [`TimeoutInferApp`] gap sweep recovers the device's bus demotion
//! timeout `Tis` from user-level RTT steps) and **measuring** (a regular
//! [`AcuteMonApp`] configured with `db` derived from the estimate). If
//! the sweep finds no wake step (a device with bus sleep disabled), a
//! conservative fallback `db` is used.
//!
//! Limitation, documented in DESIGN.md: the PSM timeout `Tip` is not
//! observable from the app alone (it shows on the *response* path via the
//! AP), so the derived `db` guards `Tis`; the fallback cap keeps it below
//! typical `Tip` floors (~40 ms, Table 4).

use phone::{App, AppCtx};
use simcore::{SimDuration, SimTime};
use wire::Packet;

use crate::app::AcuteMonApp;
use crate::config::AcuteMonConfig;
use crate::infer::{estimate_tis, TimeoutEstimate, TimeoutInferApp, TimeoutInferConfig};

/// Configuration of a trained session.
#[derive(Debug, Clone)]
pub struct TrainedConfig {
    /// Base measurement configuration; its `dpre`/`db` are replaced by
    /// the training outcome.
    pub base: AcuteMonConfig,
    /// The training sweep (idle gaps and repetitions).
    pub sweep: TimeoutInferConfig,
    /// RTT step (ms) treated as a bus wake during estimation.
    pub wake_threshold_ms: f64,
    /// `db` used when no wake step is found, and the hard cap for the
    /// derived value (stays below the smallest Table-4 `Tip`).
    pub fallback_db: SimDuration,
}

impl TrainedConfig {
    /// Standard training against `target`, then `k` probes.
    pub fn new(target: wire::Ip, k: u32) -> TrainedConfig {
        TrainedConfig {
            base: AcuteMonConfig::new(target, k),
            sweep: TimeoutInferConfig::standard(target),
            wake_threshold_ms: 3.0,
            fallback_db: SimDuration::from_millis(15),
        }
    }
}

/// Which phase the app is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainedPhase {
    /// Running the gap sweep.
    Training,
    /// Running the measurement with the derived timing.
    Measuring,
}

/// The phased app.
pub struct TrainedAcuteMonApp {
    cfg: TrainedConfig,
    phase: TrainedPhase,
    infer: TimeoutInferApp,
    measure: Option<AcuteMonApp>,
    /// The training outcome (None while training, or if no step found).
    pub estimate: Option<TimeoutEstimate>,
    /// The `db` actually used for the measurement.
    pub derived_db: Option<SimDuration>,
    /// When training finished and measuring began.
    pub trained_at: Option<SimTime>,
}

impl TrainedAcuteMonApp {
    /// Create a session.
    pub fn new(cfg: TrainedConfig) -> TrainedAcuteMonApp {
        let infer = TimeoutInferApp::new(cfg.sweep.clone());
        TrainedAcuteMonApp {
            cfg,
            phase: TrainedPhase::Training,
            infer,
            measure: None,
            estimate: None,
            derived_db: None,
            trained_at: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> TrainedPhase {
        self.phase
    }

    /// The measurement results (None until measuring starts).
    pub fn measurement(&self) -> Option<&AcuteMonApp> {
        self.measure.as_ref()
    }

    fn begin_measuring(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.estimate = estimate_tis(&self.infer.samples, self.cfg.wake_threshold_ms);
        let db = match self.estimate {
            Some(est) => {
                SimDuration::from_ms_f64(est.recommended_db_ms).min(self.cfg.fallback_db * 3)
            }
            None => self.cfg.fallback_db,
        };
        // dpre must exceed the promotion delay; the observed wake step
        // bounds it from below. Use 2× the wake magnitude, floored at the
        // paper's empirical 20 ms.
        let dpre = match self.estimate {
            Some(est) => {
                let wake_ms = {
                    // Median RTT above the step minus the baseline.
                    let above: Vec<f64> = self
                        .infer
                        .samples
                        .iter()
                        .filter(|s| s.gap_ms as f64 >= est.tis_ms)
                        .map(|s| s.rtt_ms - est.baseline_ms)
                        .collect();
                    am_stats::median(&above).unwrap_or(10.0).max(1.0)
                };
                SimDuration::from_ms_f64((2.0 * wake_ms).max(20.0))
            }
            None => SimDuration::from_millis(20),
        };
        let mut mcfg = self.cfg.base.clone();
        mcfg.dpre = dpre;
        mcfg.db = db;
        mcfg.start = ctx.now();
        self.derived_db = Some(db);
        self.trained_at = Some(ctx.now());
        self.phase = TrainedPhase::Measuring;
        let mut app = AcuteMonApp::new(mcfg);
        app.on_start(ctx);
        self.measure = Some(app);
    }
}

impl App for TrainedAcuteMonApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.infer.on_start(ctx);
    }

    fn wants(&self, packet: &Packet) -> bool {
        match self.phase {
            TrainedPhase::Training => self.infer.wants(packet),
            TrainedPhase::Measuring => self
                .measure
                .as_ref()
                .map(|m| m.wants(packet))
                .unwrap_or(false),
        }
    }

    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet) {
        match self.phase {
            TrainedPhase::Training => {
                self.infer.on_packet(ctx, packet);
                if self.infer.done {
                    self.begin_measuring(ctx);
                }
            }
            TrainedPhase::Measuring => {
                if let Some(m) = self.measure.as_mut() {
                    m.on_packet(ctx, packet);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
        match self.phase {
            TrainedPhase::Training => {
                self.infer.on_timer(ctx, tag);
                if self.infer.done {
                    self.begin_measuring(ctx);
                }
            }
            TrainedPhase::Measuring => {
                if let Some(m) = self.measure.as_mut() {
                    m.on_timer(ctx, tag);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::RecordSet;
    use netem::{LinkNode, LinkParams, ServerConfig, ServerNode};
    use phone::{PhoneNode, PhoneProfile, RuntimeKind};
    use simcore::Sim;
    use wire::Msg;

    fn run(profile: PhoneProfile, sleep: bool, seed: u64) -> (Sim<Msg>, simcore::NodeId, usize) {
        let mut sim = Sim::new(seed);
        let server = sim.add_node(Box::new(ServerNode::new(
            50,
            ServerConfig::standard(phone::wired_ip(1)),
        )));
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(15))));
        let mut ph = PhoneNode::new(1, profile, phone::wlan_ip(100), link);
        ph.core_mut().bus.set_sleep_enabled(sleep);
        let app = ph.install_app(
            Box::new(TrainedAcuteMonApp::new(TrainedConfig::new(
                phone::wired_ip(1),
                20,
            ))),
            RuntimeKind::Native,
        );
        let phone_id = sim.add_node(Box::new(ph));
        sim.node_mut::<LinkNode>(link).connect(phone_id, server);
        sim.run_until(SimTime::from_secs(120));
        (sim, phone_id, app)
    }

    #[test]
    fn trains_then_measures_cleanly_on_nexus5() {
        let (sim, phone_id, app) = run(phone::nexus5(), true, 61);
        let t = sim
            .node::<PhoneNode>(phone_id)
            .app::<TrainedAcuteMonApp>(app);
        assert_eq!(t.phase(), TrainedPhase::Measuring);
        let est = t.estimate.expect("found the wake step");
        assert!((40.0..=60.0).contains(&est.tis_ms), "tis {}", est.tis_ms);
        let db = t.derived_db.unwrap();
        assert!(db < SimDuration::from_millis(50), "db {db}");
        let m = t.measurement().expect("measurement ran");
        assert!((m.records.completion() - 1.0).abs() < 1e-12);
        // Clean probes: the derived db keeps the bus awake.
        let du = m.records.du();
        let med = am_stats::median(&du).unwrap();
        assert!(med < 30.0 + 5.0, "median {med}");
    }

    #[test]
    fn falls_back_when_no_step_exists() {
        // Bus sleep disabled: the sweep finds no step; the fallback db is
        // used and the measurement still completes.
        let (sim, phone_id, app) = run(phone::nexus5(), false, 62);
        let t = sim
            .node::<PhoneNode>(phone_id)
            .app::<TrainedAcuteMonApp>(app);
        assert_eq!(t.phase(), TrainedPhase::Measuring);
        assert!(t.estimate.is_none());
        assert_eq!(t.derived_db.unwrap(), SimDuration::from_millis(15));
        let m = t.measurement().unwrap();
        assert!((m.records.completion() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn works_on_a_qualcomm_phone_too() {
        let (sim, phone_id, app) = run(phone::nexus4(), true, 63);
        let t = sim
            .node::<PhoneNode>(phone_id)
            .app::<TrainedAcuteMonApp>(app);
        // Qualcomm wake (~5 ms) is above the 3 ms threshold: detected.
        let est = t.estimate.expect("wake step found");
        assert!((40.0..=60.0).contains(&est.tis_ms), "tis {}", est.tis_ms);
        let m = t.measurement().unwrap();
        assert!((m.records.completion() - 1.0).abs() < 1e-12);
    }
}
