//! The campaign engine: a fixed pool of OS worker threads pulling
//! device indices off a shared atomic counter, streaming
//! [`DevicePartial`]s over a *bounded* channel into an in-order
//! collector.
//!
//! Memory is bounded end to end by an explicit backpressure window: a
//! worker may not *start* device `i` until the collector has absorbed
//! device `i − window` (`window = (2·workers + 4) · M`, where `M` is
//! the [`RunOptions::multiplex`] group size, 1 by default), so the
//! reorder buffer holds at most `window` partials even when per-device
//! runtimes are wildly heterogeneous (lognormal path RTTs,
//! cross-traffic strata). The channel bound additionally keeps
//! finished-but-unmerged partials from piling up when the collector
//! itself lags.
//!
//! With `multiplex = Some(M)`, workers claim *groups* of `M`
//! contiguous device indices and run them through
//! [`crate::multiplex::run_group`] — M cheap simulations interleaved
//! by next-event time on one thread — which amortises claim/send
//! overhead while leaving the campaign JSON byte-identical.
//!
//! The same inner loop powers three entry points that all produce
//! byte-identical JSON:
//!
//! * [`run_campaign`] / [`run_campaign_opts`] — a whole campaign in one
//!   process, optionally writing atomic resume checkpoints.
//! * [`resume_campaign`] — restart a killed campaign from its last
//!   checkpoint and finish it.
//! * [`run_partition`] — run one contiguous `i/k` device slice; slices
//!   merge back together with [`crate::report::merge_partials`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use obs::{Json, ToJson};

use crate::multiplex;
use crate::profile::{CampaignProfile, StratumCost};
use crate::report::{CampaignReport, CampaignStateError, Collector};
use crate::shard::{run_device_opts, DevicePartial, ShardOptions};
use crate::spec::CampaignSpec;

/// Wall-clock throughput of one engine run. Kept out of the campaign
/// JSON: the report is deterministic, the clock is not.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole run.
    pub wall: std::time::Duration,
    /// Devices simulated *by this run* (a resumed run counts only the
    /// devices it absorbed after the checkpoint).
    pub devices: u64,
    /// Probes sent by the devices this run simulated.
    pub probes: u64,
    /// High-water mark of the collector's reorder buffer.
    pub reorder_peak: usize,
    /// The run's self-profile, present when
    /// [`RunOptions::profiler`] was enabled.
    pub profile: Option<CampaignProfile>,
}

impl RunStats {
    /// Devices per wall-clock second.
    pub fn devices_per_sec(&self) -> f64 {
        self.devices as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Probes per wall-clock second.
    pub fn probes_per_sec(&self) -> f64 {
        self.probes as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Periodic atomic checkpointing for [`run_campaign_opts`] and
/// [`resume_campaign`].
///
/// Every `every` absorbed devices the collector's full state
/// ([`Collector::state_json`]) is written to `path` via a
/// write-temp-then-rename, so a kill at any instant leaves either the
/// previous checkpoint or the new one — never a torn file.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Destination file (conventionally `campaign.resume.json`).
    pub path: std::path::PathBuf,
    /// Devices between checkpoint writes (must be ≥ 1).
    pub every: u64,
}

/// A streaming progress hook for [`RunOptions`]: the engine calls `f`
/// with the collector's cumulative state every `every` absorbed devices
/// and once more when the range completes (`done = true`).
///
/// This is how a `--push-to` shard feeds the collector daemon while it
/// runs: each call serializes [`Collector::state_json`] and ships it as
/// a cumulative partial, the final call marked `done` so the daemon
/// knows the shard's slice is complete. The hook runs on the collector
/// thread, between absorptions — it sees a consistent, contiguous
/// prefix of the shard's range every time.
#[derive(Clone)]
pub struct ProgressSink {
    /// Devices between progress calls (must be ≥ 1).
    pub every: u64,
    /// The hook: `(collector-so-far, live-telemetry, done)`.
    pub f: ProgressFn,
}

/// The [`ProgressSink`] callback: `(collector-so-far, live-telemetry,
/// done)`, shared across the collector thread and whoever registered
/// it.
pub type ProgressFn = std::sync::Arc<dyn Fn(&Collector, &Progress, bool) + Send + Sync>;

/// Live engine telemetry handed to every [`ProgressSink`] call —
/// throughput, per-worker progress, the reorder-buffer depth, and the
/// self-profiler's phase split. Unlike the collector state, none of
/// this is deterministic; it rides *next to* the campaign data, never
/// inside it.
#[derive(Debug, Clone, Default)]
pub struct Progress {
    /// Devices absorbed by this run so far.
    pub devices_done: u64,
    /// Devices this run will absorb in total.
    pub devices_total: u64,
    /// Wall-clock time since the run started.
    pub elapsed: std::time::Duration,
    /// Worker threads driving the run.
    pub workers: usize,
    /// Reorder-buffer depth at the time of the call.
    pub queue_depth: usize,
    /// Devices completed per worker thread, spawn order.
    pub per_worker_devices: Vec<u64>,
    /// Self-nanoseconds per engine phase (cross-thread, descending),
    /// empty when the run is unprofiled.
    pub phase_self_ns: Vec<(String, u64)>,
}

impl Progress {
    /// Devices per wall-clock second over the run so far.
    pub fn devices_per_sec(&self) -> f64 {
        self.devices_done as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// Options for [`run_campaign_opts`] and [`resume_campaign`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Write periodic resume checkpoints.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Test hook simulating a kill: stop cleanly after absorbing this
    /// many devices *in this run* and return `None` instead of a
    /// report. Checkpoints due at or before the halt point are written
    /// first, exactly as they would be before a real crash.
    pub halt_after_devices: Option<u64>,
    /// Streaming progress hook (cumulative pushes to a collector
    /// daemon). Not called after a halt: a halted run's tail is
    /// recomputed on resume, exactly like after a real kill.
    pub progress: Option<ProgressSink>,
    /// Self-profiler. Enabled, the run attributes wall-clock and
    /// allocation cost per engine phase and returns a
    /// [`CampaignProfile`] in [`RunStats::profile`]; the default
    /// disabled profiler costs one branch per guard and keeps the
    /// campaign JSON byte-identical to an uninstrumented build.
    pub profiler: obs::Profiler,
    /// Event-queue backend for every device simulation. All backends
    /// produce byte-identical campaign JSON (the scheduler contract);
    /// the timer wheel (default) is the fast one.
    pub queue: simcore::QueueKind,
    /// Drive every cross-traffic datagram off its own timer instead of
    /// the batched per-period fast path. The campaign JSON is
    /// byte-identical either way (asserted by the fleet equivalence
    /// tests and CI); the per-packet path exists as the reference
    /// oracle and costs ~an order of magnitude more engine events on
    /// congested strata.
    pub cross_per_packet: bool,
    /// Run `M` devices per worker claim, interleaved by next-event
    /// time (`None`/`Some(1)` = one device per claim). Multiplexing
    /// amortises per-device claim/send overhead for cheap devices; the
    /// campaign JSON stays byte-identical either way. The
    /// backpressure window and channel bound scale by `M`, so
    /// collector memory stays `O(workers · M)`.
    pub multiplex: Option<u64>,
}

/// Atomically persist `doc` at `path`: write to a sibling `.tmp` file,
/// fsync, then rename over the destination. A kill — or a power cut,
/// thanks to the fsync — at any instant leaves either the previous
/// file or the new one, never a torn in-between. This is the
/// durability discipline behind resume checkpoints; the collector
/// daemon's ingest journal reuses it verbatim.
pub fn atomic_write_json(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(doc.to_string_pretty().as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

fn write_checkpoint(cp: &CheckpointPolicy, state: &Json) {
    if let Err(e) = atomic_write_json(&cp.path, state) {
        panic!("failed to write checkpoint {}: {e}", cp.path.display());
    }
}

/// The shared inner loop: drive `collector` from its
/// [`Collector::next_index`] up to device `end` (exclusive) across
/// `workers` threads. Returns the collector, the run's stats, and
/// whether the run halted early via `opts.halt_after_devices`.
fn run_range(
    spec: &CampaignSpec,
    workers: usize,
    mut collector: Collector,
    end: u64,
    opts: &RunOptions,
) -> (Collector, RunStats, bool) {
    let workers = workers.max(1);
    let start_index = collector.next_index();
    // Devices per worker claim (1 = classic per-device dispatch; >1 =
    // the multiplexed group driver). Window and channel scale with the
    // group size so a whole group always fits in flight.
    let group = opts.multiplex.unwrap_or(1).max(1);
    let window = ((workers as u64) * 2 + 4) * group;
    let next = AtomicU64::new(start_index);
    let absorbed = AtomicU64::new(start_index);
    let stop = AtomicBool::new(false);
    let shard_opts = ShardOptions {
        queue: opts.queue,
        cross_per_packet: opts.cross_per_packet,
    };
    // Small bound: enough to decouple workers from the collector's
    // merge cost, small enough that memory stays O(workers · group).
    let (tx, rx) = mpsc::sync_channel::<DevicePartial>(workers * 2 * group as usize);
    let start = Instant::now();
    let mut reorder_peak = 0usize;
    let mut probes_run = 0u64;
    let mut halted = false;
    let prof = &opts.profiler;
    // Live progress accounting (one relaxed increment per device) and,
    // when profiling, per-stratum wall-cost accumulators.
    let per_worker: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let stratum_ns: Vec<AtomicU64> = spec.classes.iter().map(|_| AtomicU64::new(0)).collect();
    let stratum_devices: Vec<AtomicU64> = spec.classes.iter().map(|_| AtomicU64::new(0)).collect();
    let progress_meta = |queue_depth: usize, next_expected: u64| Progress {
        devices_done: next_expected - start_index,
        devices_total: end - start_index,
        elapsed: start.elapsed(),
        workers,
        queue_depth,
        per_worker_devices: per_worker
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
        phase_self_ns: if prof.is_enabled() {
            prof.snapshot()
                .flat_self_ns()
                .into_iter()
                .map(|(name, ns)| (name.to_string(), ns))
                .collect()
        } else {
            Vec::new()
        },
    };

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let absorbed = &absorbed;
            let stop = &stop;
            let prof = prof.clone();
            let per_worker = &per_worker;
            let stratum_ns = &stratum_ns;
            let stratum_devices = &stratum_devices;
            scope.spawn(move || {
                prof.set_thread_label(&format!("worker-{w}"));
                let _root = prof.phase("worker");
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(group, Ordering::Relaxed);
                    if i >= end {
                        break;
                    }
                    let hi = (i + group).min(end);
                    // Backpressure window: stay within `window` devices of
                    // the collector so the reorder buffer is bounded even
                    // when a slow low-index device holds up absorption.
                    // The whole claim [i, hi) must fit.
                    if hi > absorbed.load(Ordering::Acquire) + window {
                        let _bp = prof.phase("backpressure");
                        while hi > absorbed.load(Ordering::Acquire) + window {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                    if group == 1 {
                        let t0 = if prof.is_enabled() {
                            Some(Instant::now())
                        } else {
                            None
                        };
                        let partial = {
                            let _rd = prof.phase("run_device");
                            run_device_opts(spec, i, &prof, shard_opts)
                        };
                        if let Some(t0) = t0 {
                            stratum_ns[partial.class]
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            stratum_devices[partial.class].fetch_add(1, Ordering::Relaxed);
                        }
                        per_worker[w].fetch_add(1, Ordering::Relaxed);
                        let _tx = prof.phase("send");
                        if tx.send(partial).is_err() {
                            break;
                        }
                    } else {
                        let batch = {
                            let _rd = prof.phase("run_group");
                            multiplex::run_group(spec, i..hi, &prof, shard_opts)
                        };
                        for (partial, ns) in batch {
                            if prof.is_enabled() {
                                stratum_ns[partial.class].fetch_add(ns, Ordering::Relaxed);
                                stratum_devices[partial.class].fetch_add(1, Ordering::Relaxed);
                            }
                            per_worker[w].fetch_add(1, Ordering::Relaxed);
                            let _tx = prof.phase("send");
                            if tx.send(partial).is_err() {
                                return;
                            }
                        }
                    }
                }
            });
        }
        // The workers hold the only remaining senders: `recv` below
        // errors out when the last one exits.
        drop(tx);

        prof.set_thread_label("collector");
        let collect_root = prof.phase("collect");
        // In-order absorption through a reorder buffer, so the merged
        // registry (order-sensitive sample reservoirs) is independent
        // of completion order.
        let mut pending: BTreeMap<u64, DevicePartial> = BTreeMap::new();
        let mut expect = start_index;
        loop {
            let received = {
                let _rw = prof.phase("recv_wait");
                rx.recv()
            };
            let Ok(p) = received else { break };
            let _ab = prof.phase("absorb");
            pending.insert(p.index, p);
            reorder_peak = reorder_peak.max(pending.len());
            while let Some(p) = pending.remove(&expect) {
                collector.absorb(&p);
                probes_run += p.probes_sent;
                expect += 1;
                absorbed.store(expect, Ordering::Release);
                if let Some(cp) = &opts.checkpoint {
                    let done = expect - start_index;
                    if cp.every > 0 && done.is_multiple_of(cp.every) {
                        let _cp = prof.phase("checkpoint");
                        write_checkpoint(cp, &collector.state_json());
                    }
                }
                if let Some(ps) = &opts.progress {
                    let done = expect - start_index;
                    if ps.every > 0 && done.is_multiple_of(ps.every) && expect < end {
                        let _pg = prof.phase("progress");
                        (ps.f)(&collector, &progress_meta(pending.len(), expect), false);
                    }
                }
                if let Some(h) = opts.halt_after_devices {
                    if expect - start_index >= h {
                        halted = true;
                        break;
                    }
                }
            }
            if halted {
                stop.store(true, Ordering::Relaxed);
                break;
            }
        }
        drop(collect_root);
        // Dropping the receiver unblocks any worker parked in `send`;
        // discarded partials past the halt point are recomputed by the
        // resumed run, exactly like after a real kill.
        drop(rx);
        if !halted {
            assert!(
                pending.is_empty(),
                "lost device partials: {:?}",
                pending.keys().collect::<Vec<_>>()
            );
            assert_eq!(expect, end, "absorption stopped early at device {expect}");
        }
    });

    if !halted {
        if let Some(ps) = &opts.progress {
            (ps.f)(&collector, &progress_meta(0, collector.next_index()), true);
        }
    }

    let wall = start.elapsed();
    let profile = if prof.is_enabled() {
        Some(CampaignProfile {
            snapshot: prof.snapshot(),
            wall_ns: wall.as_nanos() as u64,
            threads: workers + 1,
            strata: spec
                .classes
                .iter()
                .enumerate()
                .map(|(ci, c)| StratumCost {
                    name: c.name.to_string(),
                    devices: stratum_devices[ci].load(Ordering::Relaxed),
                    wall_ns: stratum_ns[ci].load(Ordering::Relaxed),
                })
                .collect(),
        })
    } else {
        None
    };
    let stats = RunStats {
        workers,
        wall,
        devices: collector.next_index() - start_index,
        probes: probes_run,
        reorder_peak,
        profile,
    };
    (collector, stats, halted)
}

/// Run `spec` across `workers` OS threads. Returns the merged report
/// (byte-identical for any `workers`) and the wall-clock stats.
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> (CampaignReport, RunStats) {
    let (report, stats) = run_campaign_opts(spec, workers, &RunOptions::default());
    (
        report.expect("run without a halt hook always completes"),
        stats,
    )
}

/// [`run_campaign`] with checkpointing and halt options. Returns
/// `None` for the report when the run halted early (the checkpoint
/// file, if any, carries the state forward).
pub fn run_campaign_opts(
    spec: &CampaignSpec,
    workers: usize,
    opts: &RunOptions,
) -> (Option<CampaignReport>, RunStats) {
    let collector = Collector::new(spec);
    let (collector, stats, halted) = run_range(spec, workers, collector, spec.devices, opts);
    let report = if halted {
        None
    } else {
        Some(collector.finish())
    };
    (report, stats)
}

/// Resume a killed campaign from serialized checkpoint state and drive
/// it to completion (or to the next halt, if `opts` asks for one).
///
/// The state must belong to `spec` (seed + fingerprint are verified)
/// and must be a whole-campaign checkpoint (`range_start == 0`), not a
/// partition partial. The finished report is byte-identical to an
/// uninterrupted single-process run:
///
/// ```
/// use fleet::{resume_campaign, run_campaign, run_partition, CampaignSpec, RunOptions};
/// use obs::ToJson;
///
/// let spec = CampaignSpec::heterogeneous(7, 8).with_probes(1);
/// // State as of device 4 — what a checkpoint would hold at a kill…
/// let (half, _) = run_partition(&spec, 2, 0, 2);
/// // …restored and driven to completion:
/// let (resumed, _) =
///     resume_campaign(&spec, 2, &half.state_json(), &RunOptions::default()).unwrap();
/// let (full, _) = run_campaign(&spec, 1);
/// assert_eq!(
///     resumed.unwrap().to_json().to_string_pretty(),
///     full.to_json().to_string_pretty()
/// );
/// ```
pub fn resume_campaign(
    spec: &CampaignSpec,
    workers: usize,
    state: &Json,
    opts: &RunOptions,
) -> Result<(Option<CampaignReport>, RunStats), CampaignStateError> {
    let collector = Collector::from_state_json(state)?;
    collector.verify_spec(spec)?;
    if collector.range_start() != 0 {
        return Err(CampaignStateError(format!(
            "cannot resume from a partition partial (range starts at device {}, not 0)",
            collector.range_start()
        )));
    }
    if collector.next_index() > spec.devices {
        return Err(CampaignStateError(format!(
            "checkpoint has absorbed {} devices but the spec only has {}",
            collector.next_index(),
            spec.devices
        )));
    }
    let (collector, stats, halted) = run_range(spec, workers, collector, spec.devices, opts);
    let report = if halted {
        None
    } else {
        Some(collector.finish())
    };
    Ok((report, stats))
}

/// The contiguous device range `[start, end)` of partition `i` of `k`.
pub fn partition_range(devices: u64, i: u64, k: u64) -> (u64, u64) {
    assert!(k > 0 && i < k, "partition {i}/{k} is out of range");
    (devices * i / k, devices * (i + 1) / k)
}

/// Run partition `i` of `k`: the contiguous device slice
/// [`partition_range`]`(spec.devices, i, k)`, in one process. The
/// returned [`Collector`] serializes to a mergeable partial report via
/// [`Collector::state_json`]; `k` such partials fold back into the
/// single-process report with [`crate::report::merge_partials`].
pub fn run_partition(spec: &CampaignSpec, workers: usize, i: u64, k: u64) -> (Collector, RunStats) {
    run_partition_opts(spec, workers, i, k, &RunOptions::default())
}

/// [`run_partition`] with [`RunOptions`] — in particular a
/// [`ProgressSink`] that streams the partition's cumulative state to a
/// collector daemon while it runs. `halt_after_devices` is ignored for
/// partitions (a partition is already a slice; kill-resume composes at
/// the campaign level).
pub fn run_partition_opts(
    spec: &CampaignSpec,
    workers: usize,
    i: u64,
    k: u64,
    opts: &RunOptions,
) -> (Collector, RunStats) {
    let (start, end) = partition_range(spec.devices, i, k);
    let collector = Collector::new_range(spec, start);
    let opts = RunOptions {
        halt_after_devices: None,
        ..opts.clone()
    };
    let (collector, stats, halted) = run_range(spec, workers, collector, end, &opts);
    assert!(!halted);
    (collector, stats)
}

/// Detected hardware parallelism (`1` when unknown). The scaling table
/// uses this to annotate speedups that *cannot* exceed ~1.0× because
/// the host has fewer cores than the worker count under test.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One row of the worker-scaling table.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Worker threads.
    pub workers: usize,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Devices per second.
    pub devices_per_sec: f64,
    /// Probes per second.
    pub probes_per_sec: f64,
    /// Speedup over the first (slowest-parallelism) row.
    pub speedup: f64,
    /// Whether this run's JSON matched the first row's byte for byte.
    pub json_identical: bool,
}

/// Run `spec` once per entry of `worker_counts` and tabulate scaling.
/// Also verifies the merged JSON is byte-identical across runs.
pub fn scaling_table(spec: &CampaignSpec, worker_counts: &[usize]) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let mut baseline: Option<(f64, String)> = None;
    for &w in worker_counts {
        let (report, stats) = run_campaign(spec, w);
        let json = report.to_json().to_string_pretty();
        let (base_wall, base_json) =
            baseline.get_or_insert((stats.wall.as_secs_f64(), json.clone()));
        rows.push(ScalingRow {
            workers: w,
            wall_secs: stats.wall.as_secs_f64(),
            devices_per_sec: stats.devices_per_sec(),
            probes_per_sec: stats.probes_per_sec(),
            speedup: *base_wall / stats.wall.as_secs_f64().max(1e-9),
            json_identical: json == *base_json,
        });
    }
    rows
}

/// Render the scaling table. When the host exposes fewer cores than
/// the widest row, speedups are expected to flatline near 1.0× — the
/// table says so instead of letting a single-core CI runner look like
/// a scaling regression.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let cores = available_parallelism();
    let mut out = String::new();
    out.push_str(&format!(
        "{:>7} {:>9} {:>12} {:>12} {:>8} {:>10}\n",
        "workers", "wall s", "devices/s", "probes/s", "speedup", "json"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>7} {:>9.2} {:>12.1} {:>12.1} {:>7.2}x {:>10}{}\n",
            r.workers,
            r.wall_secs,
            r.devices_per_sec,
            r.probes_per_sec,
            r.speedup,
            if r.json_identical {
                "identical"
            } else {
                "DIVERGED"
            },
            if r.workers > cores { "  (> cores)" } else { "" },
        ));
    }
    if let Some(widest) = rows.iter().map(|r| r.workers).max() {
        if widest > cores {
            out.push_str(&format!(
                "note: host exposes {cores} core(s); speedup beyond {cores} worker(s) \
                 is not expected here\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_merges_every_device() {
        let spec = CampaignSpec::heterogeneous(11, 24).with_probes(2);
        let (report, stats) = run_campaign(&spec, 4);
        assert_eq!(report.devices, 24);
        assert_eq!(stats.devices, 24);
        assert_eq!(report.strata.iter().map(|s| s.devices).sum::<u64>(), 24);
        assert!(!report.du_all.is_empty());
        assert!(stats.probes > 0);
        // The reorder buffer stayed within the backpressure window.
        assert!(
            stats.reorder_peak <= 4 * 2 + 4,
            "peak {}",
            stats.reorder_peak
        );
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        let spec = CampaignSpec::heterogeneous(5, 20).with_probes(2);
        let (a, _) = run_campaign(&spec, 1);
        let (b, _) = run_campaign(&spec, 4);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    #[test]
    fn halted_run_reports_no_campaign() {
        let spec = CampaignSpec::heterogeneous(13, 16).with_probes(1);
        let opts = RunOptions {
            halt_after_devices: Some(5),
            ..RunOptions::default()
        };
        let (report, stats) = run_campaign_opts(&spec, 3, &opts);
        assert!(report.is_none());
        assert_eq!(stats.devices, 5);
    }

    #[test]
    fn profiled_run_attributes_cost_and_keeps_json_identical() {
        let spec = CampaignSpec::heterogeneous(7, 12).with_probes(1);
        let (plain, _) = run_campaign(&spec, 2);
        let opts = RunOptions {
            profiler: obs::Profiler::new(),
            ..RunOptions::default()
        };
        let (profiled, stats) = run_campaign_opts(&spec, 2, &opts);
        // Determinism contract: profiling must not leak into the report.
        assert_eq!(
            plain.to_json().to_string_pretty(),
            profiled.unwrap().to_json().to_string_pretty()
        );
        let profile = stats.profile.expect("profiler enabled");
        assert_eq!(profile.threads, 3);
        let folded = profile.folded();
        for phase in [
            "worker;run_device;des",
            "worker;run_device;setup",
            "collect",
        ] {
            assert!(folded.contains(phase), "missing {phase} in:\n{folded}");
        }
        // Per-stratum costs cover every simulated device exactly once.
        assert_eq!(profile.strata.iter().map(|s| s.devices).sum::<u64>(), 12);
        assert!(profile.attributed_fraction() > 0.0);
        // An unprofiled run carries no profile.
        let (_, stats) = run_campaign(&spec, 2);
        assert!(stats.profile.is_none());
    }

    #[test]
    fn progress_meta_reports_throughput_and_phase_split() {
        use std::sync::Mutex;
        let spec = CampaignSpec::heterogeneous(3, 10).with_probes(1);
        let seen: std::sync::Arc<Mutex<Vec<Progress>>> =
            std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let opts = RunOptions {
            profiler: obs::Profiler::new(),
            progress: Some(ProgressSink {
                every: 4,
                f: std::sync::Arc::new(move |_c, meta, _done| {
                    sink_seen.lock().unwrap().push(meta.clone());
                }),
            }),
            ..RunOptions::default()
        };
        let (report, _) = run_campaign_opts(&spec, 2, &opts);
        assert!(report.is_some());
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty());
        let last = seen.last().unwrap();
        assert_eq!(last.devices_done, 10);
        assert_eq!(last.devices_total, 10);
        assert_eq!(last.per_worker_devices.len(), 2);
        assert_eq!(last.per_worker_devices.iter().sum::<u64>(), 10);
        assert!(last.devices_per_sec() > 0.0);
        let phases: Vec<&str> = last.phase_self_ns.iter().map(|(n, _)| n.as_str()).collect();
        assert!(phases.contains(&"des"), "{phases:?}");
    }

    #[test]
    fn partition_ranges_tile_the_campaign() {
        for k in 1..=7u64 {
            let mut next = 0u64;
            for i in 0..k {
                let (s, e) = partition_range(100, i, k);
                assert_eq!(s, next);
                assert!(e >= s);
                next = e;
            }
            assert_eq!(next, 100);
        }
    }
}
