//! The campaign engine: a fixed pool of OS worker threads pulling
//! device indices off a shared atomic counter, streaming
//! [`DevicePartial`]s over a *bounded* channel into an in-order
//! collector.
//!
//! Memory is bounded end to end: a worker blocks on the channel when
//! the collector lags (backpressure, never unbounded buffering), and
//! the collector's reorder buffer can hold at most
//! `workers + channel capacity` partials, because a partial for index
//! `i` can only be in flight while every smaller index is either
//! absorbed, queued, or being computed by one of the other workers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use obs::ToJson;

use crate::report::{CampaignReport, Collector};
use crate::shard::{run_device, DevicePartial};
use crate::spec::CampaignSpec;

/// Wall-clock throughput of one engine run. Kept out of the campaign
/// JSON: the report is deterministic, the clock is not.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole campaign.
    pub wall: std::time::Duration,
    /// Devices simulated.
    pub devices: u64,
    /// Probes sent across the population.
    pub probes: u64,
    /// High-water mark of the collector's reorder buffer.
    pub reorder_peak: usize,
}

impl RunStats {
    /// Devices per wall-clock second.
    pub fn devices_per_sec(&self) -> f64 {
        self.devices as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Probes per wall-clock second.
    pub fn probes_per_sec(&self) -> f64 {
        self.probes as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Run `spec` across `workers` OS threads. Returns the merged report
/// (byte-identical for any `workers`) and the wall-clock stats.
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> (CampaignReport, RunStats) {
    let workers = workers.max(1);
    let next = AtomicU64::new(0);
    // Small bound: enough to decouple workers from the collector's
    // merge cost, small enough that memory stays O(workers).
    let (tx, rx) = mpsc::sync_channel::<DevicePartial>(workers * 2);
    let start = Instant::now();
    let mut collector = Collector::new(spec);
    let mut reorder_peak = 0usize;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= spec.devices {
                    break;
                }
                let partial = run_device(spec, i);
                if tx.send(partial).is_err() {
                    break;
                }
            });
        }
        // The workers hold the only remaining senders: the iterator
        // below terminates when the last one exits.
        drop(tx);

        // In-order absorption through a reorder buffer, so the merged
        // registry (floating-point sums) is independent of completion
        // order.
        let mut pending: BTreeMap<u64, DevicePartial> = BTreeMap::new();
        let mut expect = 0u64;
        for p in rx {
            pending.insert(p.index, p);
            reorder_peak = reorder_peak.max(pending.len());
            while let Some(p) = pending.remove(&expect) {
                collector.absorb(&p);
                expect += 1;
            }
        }
        assert!(
            pending.is_empty(),
            "lost device partials: {:?}",
            pending.keys().collect::<Vec<_>>()
        );
    });

    let wall = start.elapsed();
    let report = collector.finish();
    let probes = report.strata.iter().map(|s| s.probes_sent).sum();
    let stats = RunStats {
        workers,
        wall,
        devices: report.devices,
        probes,
        reorder_peak,
    };
    (report, stats)
}

/// One row of the worker-scaling table.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Worker threads.
    pub workers: usize,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Devices per second.
    pub devices_per_sec: f64,
    /// Probes per second.
    pub probes_per_sec: f64,
    /// Speedup over the first (slowest-parallelism) row.
    pub speedup: f64,
    /// Whether this run's JSON matched the first row's byte for byte.
    pub json_identical: bool,
}

/// Run `spec` once per entry of `worker_counts` and tabulate scaling.
/// Also verifies the merged JSON is byte-identical across runs.
pub fn scaling_table(spec: &CampaignSpec, worker_counts: &[usize]) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let mut baseline: Option<(f64, String)> = None;
    for &w in worker_counts {
        let (report, stats) = run_campaign(spec, w);
        let json = report.to_json().to_string_pretty();
        let (base_wall, base_json) =
            baseline.get_or_insert((stats.wall.as_secs_f64(), json.clone()));
        rows.push(ScalingRow {
            workers: w,
            wall_secs: stats.wall.as_secs_f64(),
            devices_per_sec: stats.devices_per_sec(),
            probes_per_sec: stats.probes_per_sec(),
            speedup: *base_wall / stats.wall.as_secs_f64().max(1e-9),
            json_identical: json == *base_json,
        });
    }
    rows
}

/// Render the scaling table.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>7} {:>9} {:>12} {:>12} {:>8} {:>10}\n",
        "workers", "wall s", "devices/s", "probes/s", "speedup", "json"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>7} {:>9.2} {:>12.1} {:>12.1} {:>7.2}x {:>10}\n",
            r.workers,
            r.wall_secs,
            r.devices_per_sec,
            r.probes_per_sec,
            r.speedup,
            if r.json_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_merges_every_device() {
        let spec = CampaignSpec::heterogeneous(11, 24).with_probes(2);
        let (report, stats) = run_campaign(&spec, 4);
        assert_eq!(report.devices, 24);
        assert_eq!(stats.devices, 24);
        assert_eq!(report.strata.iter().map(|s| s.devices).sum::<u64>(), 24);
        assert!(!report.du_all.is_empty());
        assert!(stats.probes > 0);
        // The reorder buffer stayed bounded by in-flight work.
        assert!(stats.reorder_peak <= 4 + 8, "peak {}", stats.reorder_peak);
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        let spec = CampaignSpec::heterogeneous(5, 20).with_probes(2);
        let (a, _) = run_campaign(&spec, 1);
        let (b, _) = run_campaign(&spec, 4);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }
}
