//! # fleet — sharded multi-device measurement campaigns
//!
//! The paper measures one phone at a time; this crate asks the
//! population question: across *N* heterogeneous devices — different
//! SDIO `idletime`s, PSM `Tip`s, listen intervals, beacon intervals,
//! lossy paths, RRC bearers, AcuteMon vs. legacy sparse ping — what do
//! the user-level (`du`), network-level (`dn`) and overhead (`du − dn`)
//! distributions look like?
//!
//! A [`CampaignSpec`] declares the population (weighted
//! [`DeviceClass`] strata). The [`engine`](crate::engine) fans device
//! indices across a fixed pool of OS worker threads; each runs a
//! deterministically-seeded simulation shard ([`run_device`]) and
//! streams a [`DevicePartial`] — mergeable sketches and an [`obs`]
//! snapshot, never raw samples — over a bounded channel into a
//! [`Collector`]. Device seeds derive from
//! `(campaign_seed, device_index)`, and the collector absorbs partials
//! in device-index order, so the merged [`CampaignReport`] JSON is
//! byte-identical regardless of worker count or completion order.
//!
//! ```
//! use fleet::{run_campaign, CampaignSpec};
//! use obs::ToJson;
//!
//! let spec = CampaignSpec::heterogeneous(2016, 12).with_probes(2);
//! let (a, _) = run_campaign(&spec, 1);
//! let (b, _) = run_campaign(&spec, 4);
//! assert_eq!(a.to_json().to_string(), b.to_json().to_string());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod report;
pub mod shard;
pub mod spec;

pub use engine::{render_scaling, run_campaign, scaling_table, RunStats, ScalingRow};
pub use report::{CampaignReport, Collector, StratumReport};
pub use shard::{run_device, DevicePartial};
pub use spec::{splitmix64, CampaignSpec, DeviceClass, Radio, Tool};
