//! # fleet — sharded multi-device measurement campaigns
//!
//! The paper measures one phone at a time; this crate asks the
//! population question: across *N* heterogeneous devices — different
//! SDIO `idletime`s, PSM `Tip`s, listen intervals, beacon intervals,
//! lossy paths, RRC bearers, AcuteMon vs. legacy sparse ping — what do
//! the user-level (`du`), network-level (`dn`) and overhead (`du − dn`)
//! distributions look like?
//!
//! A [`CampaignSpec`] declares the population (weighted
//! [`DeviceClass`] strata). The [`engine`] fans device
//! indices across a fixed pool of OS worker threads; each runs a
//! deterministically-seeded simulation shard ([`run_device`]) and
//! streams a [`DevicePartial`] — mergeable sketches and an [`obs`]
//! snapshot, never raw samples — over a bounded channel into a
//! [`Collector`]. Device seeds derive from
//! `(campaign_seed, device_index)`, and the collector absorbs partials
//! in device-index order, so the merged [`CampaignReport`] JSON is
//! byte-identical regardless of worker count or completion order.
//!
//! The same determinism extends across *processes*: the collector's
//! full state round-trips through the versioned campaign-state JSON
//! (see [`report`]), which backs both resume checkpoints
//! ([`resume_campaign`]) and `i/k` partition partials
//! ([`run_partition`] + [`merge_partials`]). A killed-and-resumed
//! campaign and a k-way partitioned-and-merged campaign both produce
//! the same bytes as an uninterrupted single-process run.
//!
//! ```
//! use fleet::{run_campaign, CampaignSpec};
//! use obs::ToJson;
//!
//! let spec = CampaignSpec::heterogeneous(2016, 12).with_probes(2);
//! let (a, _) = run_campaign(&spec, 1);
//! let (b, _) = run_campaign(&spec, 4);
//! assert_eq!(a.to_json().to_string(), b.to_json().to_string());
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod multiplex;
pub mod profile;
pub mod report;
pub mod shard;
pub mod spec;

pub use engine::{
    atomic_write_json, available_parallelism, partition_range, render_scaling, resume_campaign,
    run_campaign, run_campaign_opts, run_partition, run_partition_opts, scaling_table,
    CheckpointPolicy, Progress, ProgressFn, ProgressSink, RunOptions, RunStats, ScalingRow,
};
pub use profile::{CampaignProfile, StratumCost};
pub use report::{
    merge_partials, CampaignReport, CampaignStateError, Collector, StratumReport,
    CAMPAIGN_STATE_FORMAT, CAMPAIGN_STATE_VERSION,
};
pub use shard::{
    run_device, run_device_opts, run_device_prof, run_device_with, DevicePartial, ShardOptions,
};
pub use spec::{
    splitmix64, CalibrationSweep, CampaignSpec, DeviceClass, DiurnalSchedule, Radio, RttDist, Tool,
};
