//! Multiplexed device driver: run M cheap device simulations on one
//! worker, interleaved by next-event time.
//!
//! Per-device threads pay a fixed claim/send/fold overhead that
//! dominates once a single device costs only a few hundred
//! microseconds of host time. Claiming a *group* of M contiguous
//! device indices and stepping them in one loop amortises that
//! overhead M-fold while keeping collector memory bounded by the
//! number of in-flight partials (O(workers · M) with small constant
//! M).
//!
//! Determinism: every device is an independent simulation seeded by
//! `(campaign_seed, device_index)`, so interleaving order cannot leak
//! state between devices — the driver merely chooses *which* device's
//! events to process next on the host. Each device still observes its
//! own events in exact `(at, seq)` order, so the folded
//! [`DevicePartial`] is byte-identical to a per-device run (proved by
//! `multiplexed_campaign_report_is_byte_identical` in
//! `tests/determinism.rs`).

use simcore::{SimDuration, SimTime};

use crate::shard::{DevicePartial, DeviceSim, ShardOptions};
use crate::spec::CampaignSpec;

/// How far past its next event a device may run before the driver
/// re-evaluates which device is earliest. A batch quantum keeps the
/// interleave loop out of the per-event hot path: with ~5 ms of
/// simulated time per slice a 12 s horizon costs at most a few
/// thousand slices per device, while the slice boundaries stay far
/// coarser than the sub-millisecond event spacing inside a probe.
const QUANTUM: SimDuration = SimDuration::from_millis(5);

/// Run devices `range` of `spec` interleaved by next-event time and
/// return their partials in index order, each with the host
/// nanoseconds it consumed (setup + slices + fold) for stratum
/// accounting.
pub fn run_group(
    spec: &CampaignSpec,
    range: std::ops::Range<u64>,
    prof: &obs::Profiler,
    opts: ShardOptions,
) -> Vec<(DevicePartial, u64)> {
    let horizon = SimTime::ZERO + spec.horizon;
    let n = (range.end - range.start) as usize;
    let mut sims: Vec<DeviceSim> = Vec::with_capacity(n);
    let mut spent_ns = vec![0u64; n];
    for (slot, index) in range.enumerate() {
        let t0 = std::time::Instant::now();
        sims.push(DeviceSim::new(spec, index, prof, opts));
        spent_ns[slot] += t0.elapsed().as_nanos() as u64;
    }

    // Interleave: always advance the device with the earliest pending
    // event, running it up to the runner-up's time (so no device's
    // clock passes another's pending work by more than the quantum).
    let mut active: Vec<usize> = (0..n).collect();
    let mut next: Vec<SimTime> = vec![SimTime::ZERO; n];
    for slot in 0..n {
        next[slot] = sims[slot].next_time().unwrap_or(SimTime::MAX);
    }
    active.retain(|&slot| next[slot] <= horizon);
    while !active.is_empty() {
        // Argmin of next-event time over active devices; ties go to
        // the lowest slot (stable, but irrelevant to output — devices
        // are independent).
        let mut best_pos = 0;
        let mut second = SimTime::MAX;
        for (pos, &slot) in active.iter().enumerate() {
            if next[slot] < next[active[best_pos]] {
                second = second.min(next[active[best_pos]]);
                best_pos = pos;
            } else if pos != best_pos {
                second = second.min(next[slot]);
            }
        }
        let slot = active[best_pos];
        let deadline = second.max(next[slot] + QUANTUM).min(horizon);
        let t0 = std::time::Instant::now();
        sims[slot].run_until(deadline);
        next[slot] = sims[slot].next_time().unwrap_or(SimTime::MAX);
        spent_ns[slot] += t0.elapsed().as_nanos() as u64;
        if next[slot] > horizon {
            active.swap_remove(best_pos);
        }
    }

    sims.into_iter()
        .zip(spent_ns)
        .map(|(sim, ns)| {
            let t0 = std::time::Instant::now();
            let partial = sim.finish();
            (partial, ns + t0.elapsed().as_nanos() as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Collector;
    use crate::spec::CampaignSpec;
    use obs::ToJson;

    /// A multiplexed group folds into the same campaign report as
    /// per-device runs, for every group size that tiles the range.
    #[test]
    fn group_partials_match_per_device_runs() {
        let spec = CampaignSpec::heterogeneous(12, 12).with_probes(1);
        let prof = obs::Profiler::disabled();
        let mut solo = Collector::new(&spec);
        for i in 0..12 {
            solo.absorb(&crate::shard::run_device(&spec, i));
        }
        let want = solo.finish().to_json().to_string_pretty();
        for m in [3u64, 5, 12] {
            let mut col = Collector::new(&spec);
            let mut start = 0u64;
            while start < 12 {
                let end = (start + m).min(12);
                for (p, _ns) in run_group(&spec, start..end, &prof, ShardOptions::default()) {
                    col.absorb(&p);
                }
                start = end;
            }
            let got = col.finish().to_json().to_string_pretty();
            assert_eq!(got, want, "group size {m}");
        }
    }
}
