//! Campaign self-profiles: where the engine's wall-clock time and
//! allocations went, per phase and per stratum.
//!
//! When [`crate::RunOptions::profiler`] is enabled, the engine labels
//! every worker thread, wraps its whole loop in a `worker` root phase
//! (with `run_device` → `setup`/`des`/`fold` children, `backpressure`
//! for window stalls, `send` for channel handoff) and the collector
//! loop in a `collect` root (`recv_wait`/`absorb`/`checkpoint`/
//! `progress` children). The run then returns a [`CampaignProfile`]:
//! the cross-thread phase tree, an attribution ratio against the
//! thread-time budget, and per-stratum device costs.
//!
//! None of this ever enters the campaign *report* — the report is
//! deterministic, the clock is not (same rule as
//! `RunStats`): a profiled run's JSON is byte-identical to an
//! unprofiled one.

use obs::{Json, ProfSnapshot, ToJson};

/// Wall-clock cost of one stratum's devices across the run.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumCost {
    /// Stratum (device-class) name from the spec.
    pub name: String,
    /// Devices of this stratum simulated by this run.
    pub devices: u64,
    /// Total wall nanoseconds spent inside `run_device` for them
    /// (summed across workers, so it can exceed the run's wall time).
    pub wall_ns: u64,
}

/// The self-profile of one engine run.
#[derive(Debug, Clone)]
pub struct CampaignProfile {
    /// Phase trees of every worker thread plus the collector.
    pub snapshot: ProfSnapshot,
    /// The run's wall-clock time, nanoseconds.
    pub wall_ns: u64,
    /// Threads in the attribution budget (workers + the collector).
    pub threads: usize,
    /// Per-stratum device cost, spec order.
    pub strata: Vec<StratumCost>,
}

impl CampaignProfile {
    /// The attribution budget: every thread could have been busy for
    /// the whole run.
    pub fn budget_ns(&self) -> u64 {
        self.wall_ns.saturating_mul(self.threads as u64)
    }

    /// Nanoseconds attributed to named root phases across all threads.
    pub fn attributed_ns(&self) -> u64 {
        self.snapshot.root_total_ns().min(self.budget_ns())
    }

    /// Budget time not covered by any phase (thread spawn/join skew,
    /// pre-loop setup) — the `(unattributed)` row of the table.
    pub fn unattributed_ns(&self) -> u64 {
        self.budget_ns().saturating_sub(self.attributed_ns())
    }

    /// Fraction of the thread-time budget attributed to named phases,
    /// in `[0, 1]`.
    pub fn attributed_fraction(&self) -> f64 {
        let budget = self.budget_ns();
        if budget == 0 {
            return 1.0;
        }
        self.attributed_ns() as f64 / budget as f64
    }

    /// Flamegraph-compatible folded stacks
    /// ([`ProfSnapshot::folded`]).
    pub fn folded(&self) -> String {
        self.snapshot.folded()
    }

    /// Chrome `trace_event` JSON of the per-thread span timelines.
    pub fn chrome_trace(&self) -> Json {
        obs::export::chrome_trace(&self.snapshot.chrome_spans())
    }

    /// The attribution table: the merged phase tree (time and
    /// allocation, self/total, allocations per call) with an
    /// `(unattributed)` gap row, then per-stratum device costs.
    ///
    /// The `allocs/call` column is the arena discipline's regression
    /// canary: for the per-event phases (`sim.dispatch`, `sim.push`) a
    /// call is one engine event, so any steady-state heap traffic on
    /// the dispatch hot path shows up here as a non-zero per-event
    /// rate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let budget = self.budget_ns().max(1);
        out.push_str(&format!(
            "{:<34} {:>10} {:>10} {:>10} {:>7} {:>10} {:>10} {:>11}\n",
            "phase", "calls", "total s", "self s", "self %", "allocs", "alloc MB", "allocs/call"
        ));
        for n in self.snapshot.merged() {
            let label = format!("{}{}", "  ".repeat(n.depth), n.name);
            out.push_str(&format!(
                "{:<34} {:>10} {:>10.3} {:>10.3} {:>6.1}% {:>10} {:>10.1} {:>11.3}\n",
                label,
                n.calls,
                n.total_ns as f64 / 1e9,
                n.self_ns as f64 / 1e9,
                100.0 * n.self_ns as f64 / budget as f64,
                n.self_allocs,
                n.self_alloc_bytes as f64 / (1024.0 * 1024.0),
                n.self_allocs as f64 / n.calls.max(1) as f64,
            ));
        }
        out.push_str(&format!(
            "{:<34} {:>10} {:>10.3} {:>10.3} {:>6.1}%\n",
            "(unattributed)",
            "",
            self.unattributed_ns() as f64 / 1e9,
            self.unattributed_ns() as f64 / 1e9,
            100.0 * self.unattributed_ns() as f64 / budget as f64,
        ));
        out.push_str(&format!(
            "\nattributed {:.1}% of a {:.2}s × {} thread budget\n",
            100.0 * self.attributed_fraction(),
            self.wall_ns as f64 / 1e9,
            self.threads,
        ));
        let costed: Vec<&StratumCost> = self.strata.iter().filter(|s| s.devices > 0).collect();
        if !costed.is_empty() {
            out.push_str(&format!(
                "\n{:<26} {:>9} {:>11} {:>13}\n",
                "stratum", "devices", "wall s", "ms/device"
            ));
            for s in costed {
                out.push_str(&format!(
                    "{:<26} {:>9} {:>11.3} {:>13.3}\n",
                    s.name,
                    s.devices,
                    s.wall_ns as f64 / 1e9,
                    s.wall_ns as f64 / 1e6 / s.devices as f64,
                ));
            }
        }
        out
    }
}

impl ToJson for CampaignProfile {
    fn to_json(&self) -> Json {
        let mut strata = Json::array();
        for s in &self.strata {
            let mut obj = Json::object();
            obj.set("stratum", &s.name);
            obj.set("devices", s.devices);
            obj.set("wall_ns", s.wall_ns);
            strata.push(obj);
        }
        let mut doc = Json::object();
        doc.set("format", "acutemon-campaign-profile");
        doc.set("wall_ns", self.wall_ns);
        doc.set("threads", self.threads as u64);
        doc.set("attributed_ns", self.attributed_ns());
        doc.set("unattributed_ns", self.unattributed_ns());
        doc.set("attributed_fraction", self.attributed_fraction());
        doc.set("strata", strata);
        doc.set("profile", self.snapshot.to_json());
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Profiler;

    fn sample_profile() -> CampaignProfile {
        let p = Profiler::new();
        {
            let _w = p.phase("worker");
            let _d = p.phase("run_device");
        }
        CampaignProfile {
            snapshot: p.snapshot(),
            wall_ns: 1_000_000_000,
            threads: 2,
            strata: vec![
                StratumCost {
                    name: "wifi_psm".to_string(),
                    devices: 10,
                    wall_ns: 500_000_000,
                },
                StratumCost {
                    name: "idle".to_string(),
                    devices: 0,
                    wall_ns: 0,
                },
            ],
        }
    }

    #[test]
    fn attribution_math_is_consistent() {
        let prof = sample_profile();
        assert_eq!(prof.budget_ns(), 2_000_000_000);
        assert_eq!(
            prof.attributed_ns() + prof.unattributed_ns(),
            prof.budget_ns()
        );
        let f = prof.attributed_fraction();
        assert!((0.0..=1.0).contains(&f), "{f}");
    }

    #[test]
    fn render_includes_gap_row_and_strata() {
        let text = sample_profile().render();
        assert!(text.contains("worker"), "{text}");
        assert!(text.contains("  run_device"), "{text}");
        assert!(text.contains("(unattributed)"), "{text}");
        assert!(text.contains("wifi_psm"), "{text}");
        // Zero-device strata are omitted rather than rendered as NaN.
        assert!(!text.contains("idle"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn profile_json_is_well_formed() {
        let doc = sample_profile().to_json();
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some("acutemon-campaign-profile")
        );
        let text = doc.to_string_pretty();
        assert!(Json::parse(&text).is_ok());
        assert!(doc.get("attributed_fraction").unwrap().as_f64().is_some());
    }
}
