//! Campaign reports and the versioned campaign-state format behind
//! resume checkpoints and cross-process partial reports.
//!
//! A [`Collector`] folds [`DevicePartial`]s in device-index order. Its
//! full state — per-stratum sketches, population sketches, the merged
//! telemetry registry, and the device range it covers — serializes to
//! the versioned `acutemon-fleet-campaign-state` JSON document
//! ([`Collector::state_json`]). That one format serves both halves of
//! the cross-process story:
//!
//! * **Checkpoints** (`campaign.resume.json`): written atomically every
//!   N devices; a killed campaign restores the collector with
//!   [`Collector::from_state_json`] and continues from
//!   [`Collector::next_index`], producing a report byte-identical to an
//!   uninterrupted run.
//! * **Partial reports** (`fleet.partial-i-of-k.json`): a contiguous
//!   device slice run by one process; [`merge_partials`] folds the
//!   slices back together and [`Collector::finish`] yields the same
//!   bytes a single process would have produced.
//!
//! Both rely on every piece of folded state being *exactly* mergeable
//! (integer sketch internals, integer-nanosecond registry sums) plus
//! contiguity checks so the order-sensitive leftovers (the first-N
//! sample reservoirs) see the same absorption order either way.

use am_stats::QuantileSketch;
use obs::{Json, Registry, Snapshot, ToJson};

use crate::shard::DevicePartial;
use crate::spec::CampaignSpec;

/// `format` tag of the campaign-state JSON document (checkpoints and
/// partial reports both carry it).
pub const CAMPAIGN_STATE_FORMAT: &str = "acutemon-fleet-campaign-state";

/// Version of the campaign-state JSON schema;
/// [`Collector::from_state_json`] rejects anything newer.
pub const CAMPAIGN_STATE_VERSION: u64 = 1;

/// A failure to restore, validate, or merge serialized campaign state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStateError(pub String);

impl std::fmt::Display for CampaignStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "campaign state error: {}", self.0)
    }
}

impl std::error::Error for CampaignStateError {}

impl From<am_stats::SketchStateError> for CampaignStateError {
    fn from(e: am_stats::SketchStateError) -> CampaignStateError {
        CampaignStateError(e.0)
    }
}

impl From<obs::SnapshotStateError> for CampaignStateError {
    fn from(e: obs::SnapshotStateError) -> CampaignStateError {
        CampaignStateError(e.0)
    }
}

/// Population statistics for one stratum.
#[derive(Debug, Clone, ToJson)]
pub struct StratumReport {
    /// Stratum name.
    pub name: String,
    /// Sampling weight.
    pub weight: u32,
    /// Devices that landed in this stratum.
    pub devices: u64,
    /// Probes sent across the stratum.
    pub probes_sent: u64,
    /// Probes that completed.
    pub probes_completed: u64,
    /// App-level retries spent.
    pub retries: u64,
    /// User-level RTT sketch.
    pub du: QuantileSketch,
    /// Network-level RTT sketch (WiFi strata only).
    pub dn: QuantileSketch,
    /// Overhead `du − dn` sketch (WiFi strata only).
    pub overhead: QuantileSketch,
}

/// The merged result of a whole campaign.
#[derive(Debug, Clone, ToJson)]
pub struct CampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Devices simulated.
    pub devices: u64,
    /// Probes per device (`K`).
    pub probes_per_device: u32,
    /// Per-stratum population statistics.
    pub strata: Vec<StratumReport>,
    /// Population-wide `du` sketch (all strata merged).
    pub du_all: QuantileSketch,
    /// Population-wide overhead sketch (WiFi strata).
    pub overhead_all: QuantileSketch,
    /// The campaign telemetry registry: every per-device registry
    /// merged, in device-index order.
    pub obs: obs::Snapshot,
}

/// Streaming collector: absorbs [`DevicePartial`]s **in device-index
/// order** and maintains only mergeable state (sketches, counters, one
/// registry) — memory is O(strata + metric names), independent of
/// device and probe counts.
pub struct Collector {
    strata: Vec<StratumReport>,
    du_all: QuantileSketch,
    overhead_all: QuantileSketch,
    registry: Registry,
    seed: u64,
    devices_seen: u64,
    probes_per_device: u32,
    fingerprint: u64,
    range_start: u64,
}

impl Collector {
    /// An empty collector for `spec`, starting at device index 0.
    pub fn new(spec: &CampaignSpec) -> Collector {
        Collector::new_range(spec, 0)
    }

    /// An empty collector for the device slice of `spec` that begins at
    /// index `start` — the partial-report side of a `--partition i/k`
    /// run. Partials merge back together with [`merge_partials`].
    pub fn new_range(spec: &CampaignSpec, start: u64) -> Collector {
        Collector {
            strata: spec
                .classes
                .iter()
                .map(|c| StratumReport {
                    name: c.name.to_string(),
                    weight: c.weight,
                    devices: 0,
                    probes_sent: 0,
                    probes_completed: 0,
                    retries: 0,
                    du: QuantileSketch::new(),
                    dn: QuantileSketch::new(),
                    overhead: QuantileSketch::new(),
                })
                .collect(),
            du_all: QuantileSketch::new(),
            overhead_all: QuantileSketch::new(),
            registry: Registry::new(),
            seed: spec.seed,
            devices_seen: 0,
            probes_per_device: spec.probes_per_device,
            fingerprint: spec.fingerprint(),
            range_start: start,
        }
    }

    /// Absorb one device partial. Callers must feed partials in
    /// device-index order (the engine's reorder buffer guarantees it):
    /// the sketch merges are order-independent, but the registry's
    /// first-N sample reservoirs are not.
    pub fn absorb(&mut self, p: &DevicePartial) {
        let s = &mut self.strata[p.class];
        s.devices += 1;
        s.probes_sent += p.probes_sent;
        s.probes_completed += p.probes_completed;
        s.retries += p.retries;
        s.du.merge(&p.du);
        s.dn.merge(&p.dn);
        s.overhead.merge(&p.overhead);
        self.du_all.merge(&p.du);
        self.overhead_all.merge(&p.overhead);
        self.registry.merge_snapshot(&p.obs);
        self.devices_seen += 1;
    }

    /// Devices absorbed so far.
    pub fn devices_seen(&self) -> u64 {
        self.devices_seen
    }

    /// The campaign seed this collector was created for.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The [`CampaignSpec::fingerprint`] this collector was created for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// First device index of the range this collector covers.
    pub fn range_start(&self) -> u64 {
        self.range_start
    }

    /// The next device index this collector expects: absorption is
    /// contiguous, so this is `range_start + devices_seen`. A resumed
    /// campaign restarts its workers here.
    pub fn next_index(&self) -> u64 {
        self.range_start + self.devices_seen
    }

    /// Check that serialized state belongs to `spec`: the campaign seed
    /// and the [`CampaignSpec::fingerprint`] recorded at serialization
    /// time must both match.
    pub fn verify_spec(&self, spec: &CampaignSpec) -> Result<(), CampaignStateError> {
        if self.seed != spec.seed {
            return Err(CampaignStateError(format!(
                "state was captured with seed {} but the spec has seed {}",
                self.seed, spec.seed
            )));
        }
        if self.fingerprint != spec.fingerprint() {
            return Err(CampaignStateError(format!(
                "state fingerprint {:016x} does not match spec fingerprint {:016x} \
                 (the campaign definition changed between runs)",
                self.fingerprint,
                spec.fingerprint()
            )));
        }
        Ok(())
    }

    /// Serialize the complete collector state as a versioned JSON
    /// document (the checkpoint / partial-report format; field-by-field
    /// schema in `EXPERIMENTS.md`). [`Collector::from_state_json`] is
    /// the exact inverse: restore, continue (or merge), and the final
    /// report is byte-identical to one produced without the round trip.
    pub fn state_json(&self) -> Json {
        let mut strata = Json::array();
        for s in &self.strata {
            let mut j = Json::object();
            j.set("name", Json::Str(s.name.clone()));
            j.set("weight", Json::Num(s.weight as f64));
            j.set("devices", Json::Num(s.devices as f64));
            j.set("probes_sent", Json::Num(s.probes_sent as f64));
            j.set("probes_completed", Json::Num(s.probes_completed as f64));
            j.set("retries", Json::Num(s.retries as f64));
            j.set("du", s.du.state_json());
            j.set("dn", s.dn.state_json());
            j.set("overhead", s.overhead.state_json());
            strata.push(j);
        }
        let mut out = Json::object();
        out.set("format", Json::Str(CAMPAIGN_STATE_FORMAT.to_string()));
        out.set("version", Json::Num(CAMPAIGN_STATE_VERSION as f64));
        out.set("seed", Json::Str(self.seed.to_string()));
        out.set(
            "spec_fingerprint",
            Json::Str(format!("{:016x}", self.fingerprint)),
        );
        out.set(
            "probes_per_device",
            Json::Num(self.probes_per_device as f64),
        );
        out.set("range_start", Json::Num(self.range_start as f64));
        out.set("devices_seen", Json::Num(self.devices_seen as f64));
        out.set("next_index", Json::Num(self.next_index() as f64));
        out.set("strata", strata);
        out.set("du_all", self.du_all.state_json());
        out.set("overhead_all", self.overhead_all.state_json());
        out.set("obs", self.registry.snapshot().state_json());
        out
    }

    /// Restore a collector from [`Collector::state_json`] output. The
    /// document is self-contained; call [`Collector::verify_spec`]
    /// afterwards to confirm it belongs to the spec you are about to
    /// resume or merge under.
    pub fn from_state_json(state: &Json) -> Result<Collector, CampaignStateError> {
        let err = |m: &str| CampaignStateError(m.to_string());
        let obj_str = |j: &Json, k: &str| -> Result<String, CampaignStateError> {
            j.get(k)
                .and_then(|v| v.as_str())
                .map(|s| s.to_string())
                .ok_or_else(|| CampaignStateError(format!("missing or non-string field `{k}`")))
        };
        let obj_u64 = |j: &Json, k: &str| -> Result<u64, CampaignStateError> {
            let v = j
                .get(k)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| CampaignStateError(format!("missing or non-numeric field `{k}`")))?;
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
                return Err(CampaignStateError(format!(
                    "field `{k}` is not a non-negative integer"
                )));
            }
            Ok(v as u64)
        };

        if obj_str(state, "format")? != CAMPAIGN_STATE_FORMAT {
            return Err(err("not a campaign-state document (bad `format`)"));
        }
        let version = obj_u64(state, "version")?;
        if version > CAMPAIGN_STATE_VERSION {
            return Err(CampaignStateError(format!(
                "campaign-state version {version} is newer than supported {CAMPAIGN_STATE_VERSION}"
            )));
        }
        let seed: u64 = obj_str(state, "seed")?
            .parse()
            .map_err(|_| err("field `seed` is not a decimal u64"))?;
        let fingerprint = u64::from_str_radix(&obj_str(state, "spec_fingerprint")?, 16)
            .map_err(|_| err("field `spec_fingerprint` is not a hex u64"))?;
        let probes_per_device = obj_u64(state, "probes_per_device")?;
        if probes_per_device > u32::MAX as u64 {
            return Err(err("field `probes_per_device` overflows u32"));
        }
        let range_start = obj_u64(state, "range_start")?;
        let devices_seen = obj_u64(state, "devices_seen")?;

        let strata_json = state
            .get("strata")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| err("missing or non-array field `strata`"))?;
        let mut strata = Vec::with_capacity(strata_json.len());
        for (i, j) in strata_json.iter().enumerate() {
            let field = |k: &str| -> Result<u64, CampaignStateError> {
                obj_u64(j, k).map_err(|e| CampaignStateError(format!("stratum {i}: {}", e.0)))
            };
            let sketch = |k: &str| -> Result<QuantileSketch, CampaignStateError> {
                let s = j.get(k).ok_or_else(|| {
                    CampaignStateError(format!("stratum {i}: missing sketch `{k}`"))
                })?;
                QuantileSketch::from_state_json(s)
                    .map_err(|e| CampaignStateError(format!("stratum {i} sketch `{k}`: {}", e.0)))
            };
            let weight = field("weight")?;
            if weight > u32::MAX as u64 {
                return Err(CampaignStateError(format!(
                    "stratum {i}: weight overflows u32"
                )));
            }
            strata.push(StratumReport {
                name: obj_str(j, "name")
                    .map_err(|e| CampaignStateError(format!("stratum {i}: {}", e.0)))?,
                weight: weight as u32,
                devices: field("devices")?,
                probes_sent: field("probes_sent")?,
                probes_completed: field("probes_completed")?,
                retries: field("retries")?,
                du: sketch("du")?,
                dn: sketch("dn")?,
                overhead: sketch("overhead")?,
            });
        }

        let top_sketch = |k: &str| -> Result<QuantileSketch, CampaignStateError> {
            let s = state
                .get(k)
                .ok_or_else(|| CampaignStateError(format!("missing sketch `{k}`")))?;
            QuantileSketch::from_state_json(s)
                .map_err(|e| CampaignStateError(format!("sketch `{k}`: {}", e.0)))
        };
        let du_all = top_sketch("du_all")?;
        let overhead_all = top_sketch("overhead_all")?;

        let snap_json = state.get("obs").ok_or_else(|| err("missing field `obs`"))?;
        let snap = Snapshot::from_state_json(snap_json)?;
        let registry = Registry::new();
        registry.merge_snapshot(&snap);

        Ok(Collector {
            strata,
            du_all,
            overhead_all,
            registry,
            seed,
            devices_seen,
            probes_per_device: probes_per_device as u32,
            fingerprint,
            range_start,
        })
    }

    /// Fold another collector's state into this one. `other` must cover
    /// the device range immediately after this collector's
    /// ([`Collector::next_index`]): contiguity is what keeps the
    /// order-sensitive registry sample reservoirs identical to a
    /// single-process run.
    pub fn absorb_state(&mut self, other: &Collector) -> Result<(), CampaignStateError> {
        if other.fingerprint != self.fingerprint || other.seed != self.seed {
            return Err(CampaignStateError(
                "cannot merge partials from different campaign specs".to_string(),
            ));
        }
        if other.range_start != self.next_index() {
            return Err(CampaignStateError(format!(
                "partial starting at device {} is not contiguous with merged range ending at {}",
                other.range_start,
                self.next_index()
            )));
        }
        if other.strata.len() != self.strata.len() {
            return Err(CampaignStateError(
                "partials disagree on stratum count".to_string(),
            ));
        }
        for (s, o) in self.strata.iter_mut().zip(&other.strata) {
            if s.name != o.name {
                return Err(CampaignStateError(format!(
                    "stratum name mismatch: `{}` vs `{}`",
                    s.name, o.name
                )));
            }
            s.devices += o.devices;
            s.probes_sent += o.probes_sent;
            s.probes_completed += o.probes_completed;
            s.retries += o.retries;
            s.du.merge(&o.du);
            s.dn.merge(&o.dn);
            s.overhead.merge(&o.overhead);
        }
        self.du_all.merge(&other.du_all);
        self.overhead_all.merge(&other.overhead_all);
        self.registry.merge_snapshot(&other.registry.snapshot());
        self.devices_seen += other.devices_seen;
        Ok(())
    }

    /// Fold another collector's state into this one *for a live view*,
    /// tolerating gaps: unlike [`Collector::absorb_state`], `other` may
    /// start anywhere at or past this collector's
    /// [`Collector::next_index`]. All counter/sketch/histogram algebra
    /// is order- and gap-independent, so every number in the view is
    /// exact; the one caveat is the registry's first-N sample
    /// reservoirs, which may retain different raw samples than a
    /// gap-free absorption would. The collector daemon uses this for
    /// mid-campaign `/snapshot`s — the *final* snapshot (all partitions
    /// landed) always comes from the gap-free [`Collector::absorb_state`]
    /// path and is byte-identical to a single-process run.
    pub fn absorb_state_for_view(&mut self, other: &Collector) -> Result<(), CampaignStateError> {
        if other.fingerprint != self.fingerprint || other.seed != self.seed {
            return Err(CampaignStateError(
                "cannot merge partials from different campaign specs".to_string(),
            ));
        }
        if other.range_start < self.next_index() {
            return Err(CampaignStateError(format!(
                "view partial starting at device {} overlaps merged range ending at {}",
                other.range_start,
                self.next_index()
            )));
        }
        if other.strata.len() != self.strata.len() {
            return Err(CampaignStateError(
                "partials disagree on stratum count".to_string(),
            ));
        }
        for (s, o) in self.strata.iter_mut().zip(&other.strata) {
            s.devices += o.devices;
            s.probes_sent += o.probes_sent;
            s.probes_completed += o.probes_completed;
            s.retries += o.retries;
            s.du.merge(&o.du);
            s.dn.merge(&o.dn);
            s.overhead.merge(&o.overhead);
        }
        self.du_all.merge(&other.du_all);
        self.overhead_all.merge(&other.overhead_all);
        self.registry.merge_snapshot(&other.registry.snapshot());
        // Count only devices actually absorbed; gap devices haven't run.
        // Disjointness of successive view slices is the caller's
        // responsibility (the daemon's pending map is keyed and
        // validated by range), which the range_start check above
        // backstops for the contiguous prefix.
        self.devices_seen += other.devices_seen;
        Ok(())
    }

    /// The report of everything absorbed *so far*, without consuming
    /// the collector — the live-snapshot counterpart of
    /// [`Collector::finish`]. Once a collector has absorbed its whole
    /// campaign, `report()` and `finish()` serialize identically.
    pub fn report(&self) -> CampaignReport {
        CampaignReport {
            seed: self.seed,
            devices: self.devices_seen,
            probes_per_device: self.probes_per_device,
            strata: self.strata.clone(),
            du_all: self.du_all.clone(),
            overhead_all: self.overhead_all.clone(),
            obs: self.registry.snapshot(),
        }
    }

    /// Finish the campaign and emit the report.
    pub fn finish(self) -> CampaignReport {
        CampaignReport {
            seed: self.seed,
            devices: self.devices_seen,
            probes_per_device: self.probes_per_device,
            strata: self.strata,
            du_all: self.du_all,
            overhead_all: self.overhead_all,
            obs: self.registry.snapshot(),
        }
    }
}

/// Merge partial reports from a `k`-way partitioned campaign back into
/// the single-process [`CampaignReport`].
///
/// Each element is the parsed JSON of one `repro fleet --partition i/k`
/// output. Partials may arrive in any order (they are sorted by
/// `range_start`), but together they must tile `0..spec.devices`
/// contiguously, carry `spec`'s fingerprint, and overlap nowhere —
/// anything else is an error, not a silent partial answer.
///
/// ```
/// use fleet::{merge_partials, run_campaign, run_partition, CampaignSpec};
/// use obs::ToJson;
///
/// let spec = CampaignSpec::heterogeneous(3, 9).with_probes(1);
/// let parts: Vec<_> = (0..3)
///     .map(|i| run_partition(&spec, 1, i, 3).0.state_json())
///     .collect();
/// let merged = merge_partials(&spec, &parts).unwrap();
/// let (single, _) = run_campaign(&spec, 1);
/// assert_eq!(
///     merged.to_json().to_string_pretty(),
///     single.to_json().to_string_pretty()
/// );
/// ```
pub fn merge_partials(
    spec: &CampaignSpec,
    partials: &[Json],
) -> Result<CampaignReport, CampaignStateError> {
    if partials.is_empty() {
        return Err(CampaignStateError(
            "no partial reports to merge".to_string(),
        ));
    }
    let mut collectors = Vec::with_capacity(partials.len());
    for (i, p) in partials.iter().enumerate() {
        let c = Collector::from_state_json(p)
            .map_err(|e| CampaignStateError(format!("partial {i}: {}", e.0)))?;
        c.verify_spec(spec)
            .map_err(|e| CampaignStateError(format!("partial {i}: {}", e.0)))?;
        collectors.push(c);
    }
    collectors.sort_by_key(|c| c.range_start());
    let mut merged = collectors.remove(0);
    if merged.range_start() != 0 {
        return Err(CampaignStateError(format!(
            "first partial starts at device {} instead of 0",
            merged.range_start()
        )));
    }
    for c in &collectors {
        merged.absorb_state(c)?;
    }
    if merged.devices_seen() != spec.devices {
        return Err(CampaignStateError(format!(
            "merged partials cover {} devices but the spec has {}",
            merged.devices_seen(),
            spec.devices
        )));
    }
    Ok(merged.finish())
}

fn fmt_q(s: &QuantileSketch, p: f64) -> String {
    match s.quantile(p) {
        Some(v) => format!("{v:8.2}"),
        None => format!("{:>8}", "—"),
    }
}

impl CampaignReport {
    /// Render the per-stratum population table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fleet campaign: {} devices × {} probes (seed {})\n",
            self.devices, self.probes_per_device, self.seed
        ));
        out.push_str(&format!(
            "{:<18} {:>7} {:>7} {:>6}  {:>8} {:>8} {:>8}  {:>8} {:>8}  {:>8}\n",
            "stratum",
            "devices",
            "probes",
            "compl%",
            "du p50",
            "du p90",
            "du p99",
            "dn p50",
            "dn p90",
            "ovh p50"
        ));
        for s in &self.strata {
            out.push_str(&format!(
                "{:<18} {:>7} {:>7} {:>5.1}%  {} {} {}  {} {}  {}\n",
                s.name,
                s.devices,
                s.probes_sent,
                100.0 * s.du.completion(),
                fmt_q(&s.du, 0.5),
                fmt_q(&s.du, 0.9),
                fmt_q(&s.du, 0.99),
                fmt_q(&s.dn, 0.5),
                fmt_q(&s.dn, 0.9),
                fmt_q(&s.overhead, 0.5),
            ));
        }
        out.push_str(&format!(
            "{:<18} {:>7} {:>7} {:>5.1}%  {} {} {}\n",
            "population",
            self.devices,
            self.strata.iter().map(|s| s.probes_sent).sum::<u64>(),
            100.0 * self.du_all.completion(),
            fmt_q(&self.du_all, 0.5),
            fmt_q(&self.du_all, 0.9),
            fmt_q(&self.du_all, 0.99),
        ));
        out
    }
}
