//! Campaign reports: per-stratum population statistics, merged from
//! device partials in device-index order so the JSON is byte-identical
//! for any worker count.

use am_stats::QuantileSketch;
use obs::{Registry, ToJson};

use crate::shard::DevicePartial;
use crate::spec::CampaignSpec;

/// Population statistics for one stratum.
#[derive(Debug, Clone, ToJson)]
pub struct StratumReport {
    /// Stratum name.
    pub name: String,
    /// Sampling weight.
    pub weight: u32,
    /// Devices that landed in this stratum.
    pub devices: u64,
    /// Probes sent across the stratum.
    pub probes_sent: u64,
    /// Probes that completed.
    pub probes_completed: u64,
    /// App-level retries spent.
    pub retries: u64,
    /// User-level RTT sketch.
    pub du: QuantileSketch,
    /// Network-level RTT sketch (WiFi strata only).
    pub dn: QuantileSketch,
    /// Overhead `du − dn` sketch (WiFi strata only).
    pub overhead: QuantileSketch,
}

/// The merged result of a whole campaign.
#[derive(Debug, Clone, ToJson)]
pub struct CampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Devices simulated.
    pub devices: u64,
    /// Probes per device (`K`).
    pub probes_per_device: u32,
    /// Per-stratum population statistics.
    pub strata: Vec<StratumReport>,
    /// Population-wide `du` sketch (all strata merged).
    pub du_all: QuantileSketch,
    /// Population-wide overhead sketch (WiFi strata).
    pub overhead_all: QuantileSketch,
    /// The campaign telemetry registry: every per-device registry
    /// merged, in device-index order.
    pub obs: obs::Snapshot,
}

/// Streaming collector: absorbs [`DevicePartial`]s **in device-index
/// order** and maintains only mergeable state (sketches, counters, one
/// registry) — memory is O(strata + metric names), independent of
/// device and probe counts.
pub struct Collector {
    strata: Vec<StratumReport>,
    du_all: QuantileSketch,
    overhead_all: QuantileSketch,
    registry: Registry,
    seed: u64,
    devices_seen: u64,
    probes_per_device: u32,
}

impl Collector {
    /// An empty collector for `spec`.
    pub fn new(spec: &CampaignSpec) -> Collector {
        Collector {
            strata: spec
                .classes
                .iter()
                .map(|c| StratumReport {
                    name: c.name.to_string(),
                    weight: c.weight,
                    devices: 0,
                    probes_sent: 0,
                    probes_completed: 0,
                    retries: 0,
                    du: QuantileSketch::new(),
                    dn: QuantileSketch::new(),
                    overhead: QuantileSketch::new(),
                })
                .collect(),
            du_all: QuantileSketch::new(),
            overhead_all: QuantileSketch::new(),
            registry: Registry::new(),
            seed: spec.seed,
            devices_seen: 0,
            probes_per_device: spec.probes_per_device,
        }
    }

    /// Absorb one device partial. Callers must feed partials in
    /// device-index order (the engine's reorder buffer guarantees it):
    /// the sketch merges are order-independent, but the registry's
    /// floating-point histogram sums are not.
    pub fn absorb(&mut self, p: &DevicePartial) {
        let s = &mut self.strata[p.class];
        s.devices += 1;
        s.probes_sent += p.probes_sent;
        s.probes_completed += p.probes_completed;
        s.retries += p.retries;
        s.du.merge(&p.du);
        s.dn.merge(&p.dn);
        s.overhead.merge(&p.overhead);
        self.du_all.merge(&p.du);
        self.overhead_all.merge(&p.overhead);
        self.registry.merge_snapshot(&p.obs);
        self.devices_seen += 1;
    }

    /// Devices absorbed so far.
    pub fn devices_seen(&self) -> u64 {
        self.devices_seen
    }

    /// Finish the campaign and emit the report.
    pub fn finish(self) -> CampaignReport {
        CampaignReport {
            seed: self.seed,
            devices: self.devices_seen,
            probes_per_device: self.probes_per_device,
            strata: self.strata,
            du_all: self.du_all,
            overhead_all: self.overhead_all,
            obs: self.registry.snapshot(),
        }
    }
}

fn fmt_q(s: &QuantileSketch, p: f64) -> String {
    match s.quantile(p) {
        Some(v) => format!("{v:8.2}"),
        None => format!("{:>8}", "—"),
    }
}

impl CampaignReport {
    /// Render the per-stratum population table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fleet campaign: {} devices × {} probes (seed {})\n",
            self.devices, self.probes_per_device, self.seed
        ));
        out.push_str(&format!(
            "{:<18} {:>7} {:>7} {:>6}  {:>8} {:>8} {:>8}  {:>8} {:>8}  {:>8}\n",
            "stratum",
            "devices",
            "probes",
            "compl%",
            "du p50",
            "du p90",
            "du p99",
            "dn p50",
            "dn p90",
            "ovh p50"
        ));
        for s in &self.strata {
            out.push_str(&format!(
                "{:<18} {:>7} {:>7} {:>5.1}%  {} {} {}  {} {}  {}\n",
                s.name,
                s.devices,
                s.probes_sent,
                100.0 * s.du.completion(),
                fmt_q(&s.du, 0.5),
                fmt_q(&s.du, 0.9),
                fmt_q(&s.du, 0.99),
                fmt_q(&s.dn, 0.5),
                fmt_q(&s.dn, 0.9),
                fmt_q(&s.overhead, 0.5),
            ));
        }
        out.push_str(&format!(
            "{:<18} {:>7} {:>7} {:>5.1}%  {} {} {}\n",
            "population",
            self.devices,
            self.strata.iter().map(|s| s.probes_sent).sum::<u64>(),
            100.0 * self.du_all.completion(),
            fmt_q(&self.du_all, 0.5),
            fmt_q(&self.du_all, 0.9),
            fmt_q(&self.du_all, 0.99),
        ));
        out
    }
}
