//! Per-device simulation shards.
//!
//! [`run_device`] builds the full testbed for one device of a
//! [`CampaignSpec`], runs its measurement session, and boils the result
//! down to a [`DevicePartial`]: three mergeable [`QuantileSketch`]es
//! (`du`, `dn`, overhead) plus an [`obs`] snapshot. No raw sample
//! vectors leave the shard — campaign memory is independent of the
//! probe count.

use am_stats::QuantileSketch;
use measure::{PingApp, PingConfig, RecordSet, RttRecord};
use obs::Registry;
use phone::RuntimeKind;
use simcore::{LatencyDist, QueueKind, SimDuration, SimTime};
use testbed::{addr, breakdowns, CellTestbed, CellTestbedConfig, Testbed, TestbedConfig};

use crate::spec::{CampaignSpec, Radio, Tool};

/// The streamed result of one device (or a merge of many): counts and
/// sketches only, never raw samples.
#[derive(Debug, Clone)]
pub struct DevicePartial {
    /// Device index within the campaign.
    pub index: u64,
    /// Stratum index within the spec.
    pub class: usize,
    /// Probes sent.
    pub probes_sent: u64,
    /// Probes that completed (a `du` was measured).
    pub probes_completed: u64,
    /// App-level retries spent.
    pub retries: u64,
    /// User-level RTT sketch (timed-out probes recorded as censored).
    pub du: QuantileSketch,
    /// Network-level RTT sketch (sniffer vantage; WiFi strata only).
    pub dn: QuantileSketch,
    /// Per-probe overhead `du − dn` sketch (WiFi strata only).
    pub overhead: QuantileSketch,
    /// The device's telemetry registry, snapshotted.
    pub obs: obs::Snapshot,
}

fn harvest(
    partial: &mut DevicePartial,
    records: &[RttRecord],
    breakdown: Option<&[testbed::ProbeBreakdown]>,
) {
    partial.probes_sent += records.len() as u64;
    partial.retries += records.total_retries();
    for r in records {
        match r.du_ms() {
            Some(du) => {
                partial.probes_completed += 1;
                partial.du.observe(du);
            }
            None => partial.du.observe_censored(),
        }
    }
    if let Some(bds) = breakdown {
        for b in bds {
            if let Some(dn) = b.dn {
                partial.dn.observe(dn);
                if let Some(du) = b.du {
                    partial.overhead.observe(du - dn);
                }
            } else if b.du.is_some() {
                // The sniffer missed this probe: the overhead is
                // unidentifiable, not zero.
                partial.dn.observe_censored();
                partial.overhead.observe_censored();
            }
        }
    }
}

/// Drop metrics that measure the *engine host* rather than the modelled
/// network: the whole `sim.*` family (wall-clock time in the event
/// loop, events processed, timers set/cancelled). Everything left in
/// the snapshot is a pure function of the device seed *and the modelled
/// behaviour alone*, which is what makes the merged campaign JSON
/// byte-identical across queue backends and across the per-packet vs
/// batched cross-traffic paths — those change how many engine events a
/// run costs, never what the network does.
fn strip_engine_metrics(snap: &mut obs::Snapshot) {
    snap.counters.retain(|(name, _)| !name.starts_with("sim."));
    snap.gauges.retain(|(name, _)| !name.starts_with("sim."));
    snap.histograms.retain(|h| !h.name.starts_with("sim."));
}

/// Per-shard execution knobs, threaded from
/// [`crate::RunOptions`] down to every device simulation. None of them
/// affect the campaign JSON (that is the point — they trade host cost
/// for nothing observable).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardOptions {
    /// Event-queue backend (wheel by default; all backends produce
    /// byte-identical partials).
    pub queue: QueueKind,
    /// `true` drives every cross-traffic datagram off its own timer
    /// (the reference path); `false` (default) uses the batched fast
    /// path — one timer per gap period — which emits the identical
    /// packet stream with an order of magnitude fewer engine events.
    pub cross_per_packet: bool,
}

fn empty_partial(index: u64, class: usize) -> DevicePartial {
    DevicePartial {
        index,
        class,
        probes_sent: 0,
        probes_completed: 0,
        retries: 0,
        du: QuantileSketch::new(),
        dn: QuantileSketch::new(),
        overhead: QuantileSketch::new(),
        obs: obs::Snapshot::default(),
    }
}

/// Run device `index` of `spec` to completion and return its partial.
/// Pure in `(spec, index)`: the same pair always produces the same
/// partial, on any worker thread.
pub fn run_device(spec: &CampaignSpec, index: u64) -> DevicePartial {
    run_device_prof(spec, index, &obs::Profiler::disabled())
}

/// [`run_device`] with self-profiling: wall-clock cost splits into
/// `setup` (testbed + app construction), `des` (the discrete-event run,
/// under which simcore's `sim.*` phases nest), and `fold` (record
/// harvest + sketch/snapshot fold). The partial returned is
/// byte-identical whether `prof` is enabled or disabled — profiling
/// observes the host, never the simulation.
pub fn run_device_prof(spec: &CampaignSpec, index: u64, prof: &obs::Profiler) -> DevicePartial {
    run_device_with(spec, index, prof, QueueKind::default())
}

/// [`run_device_prof`] with an explicit event-queue backend. The
/// partial is byte-identical across backends (the scheduler contract —
/// see ARCHITECTURE.md § Scheduler).
pub fn run_device_with(
    spec: &CampaignSpec,
    index: u64,
    prof: &obs::Profiler,
    queue: QueueKind,
) -> DevicePartial {
    run_device_opts(
        spec,
        index,
        prof,
        ShardOptions {
            queue,
            ..ShardOptions::default()
        },
    )
}

/// [`run_device_prof`] with full [`ShardOptions`]. The partial is
/// byte-identical across every option combination.
pub fn run_device_opts(
    spec: &CampaignSpec,
    index: u64,
    prof: &obs::Profiler,
    opts: ShardOptions,
) -> DevicePartial {
    let mut sim = DeviceSim::new(spec, index, prof, opts);
    sim.run_until(SimTime::ZERO + spec.horizon);
    sim.finish()
}

/// Which testbed flavour a [`DeviceSim`] drives.
enum Rig {
    Wifi(Testbed),
    Cell(CellTestbed),
}

/// One device's simulation, resumable in slices of simulated time.
///
/// This is [`run_device`] split into its phases so the multiplex
/// driver can interleave many cheap devices on one worker:
/// construction is the `setup` profiler phase, each [`run_until`]
/// slice is a `des` phase, and [`finish`] advances to the horizon and
/// folds the `fold` phase. Because the engine's `run_until` advances
/// telemetry by exact deltas, a device run in any sequence of slices
/// produces a [`DevicePartial`] byte-identical to a single
/// full-horizon run.
///
/// [`run_until`]: DeviceSim::run_until
/// [`finish`]: DeviceSim::finish
pub(crate) struct DeviceSim {
    rig: Rig,
    app: usize,
    tool: Tool,
    reg: Registry,
    partial: DevicePartial,
    horizon: SimTime,
    prof: obs::Profiler,
}

impl DeviceSim {
    /// Build the testbed and app for device `index` (the `setup`
    /// profiler phase).
    pub(crate) fn new(
        spec: &CampaignSpec,
        index: u64,
        prof: &obs::Profiler,
        opts: ShardOptions,
    ) -> DeviceSim {
        let class_idx = spec.class_of(index);
        let class = &spec.classes[class_idx];
        let partial = empty_partial(index, class_idx);
        let seed = spec.device_seed(index);
        let k = spec.probes_per_device;
        let _setup = prof.phase("setup");

        let mut profile = class.profile.clone();
        if let Some(ticks) = class.sdio_idletime {
            profile.bus.idletime = ticks;
        }
        if let Some(tip) = class.tip_ms {
            profile.psm_timeout = LatencyDist::fixed(tip);
        }
        // Population knobs drawn once per device, all pure in (spec, index):
        // its path RTT from the stratum's distribution, whether its
        // time-of-day puts it in the diurnal busy window, and its §4.2.2
        // (dpre, db) calibration grid point.
        let path_rtt_ms = spec.path_rtt_of(index);
        let cross_traffic = spec.cross_traffic_of(index);
        let calibration = spec.calibration_of(index);
        let reg = Registry::new();

        let (rig, app) = match class.radio {
            Radio::Wifi => {
                let mut cfg = TestbedConfig::new(seed, profile, path_rtt_ms).with_queue(opts.queue);
                // One lossless sniffer: full dn coverage at minimum cost.
                cfg.sniffers = 1;
                cfg.sniffer_loss = 0.0;
                // Campaign analysis only ever queries probe packets, so
                // the sniffer skips cross-traffic data frames — on a
                // congested device that is one delivery per blaster
                // datagram it no longer pays for.
                cfg.sniffer_capture_cross = false;
                cfg.cross_per_packet = opts.cross_per_packet;
                cfg.listen_interval_override = class.listen_interval;
                if let Some(ms) = class.beacon_interval_ms {
                    cfg = cfg.with_beacon_interval(SimDuration::from_ms_f64(ms));
                }
                if let Some(plan) = class.faults.clone() {
                    cfg = cfg.with_wifi_faults(plan.with_seed(spec.fault_seed(index)));
                }
                if cross_traffic {
                    cfg.cross_traffic = true;
                    // Busy the whole session: the schedule models *which*
                    // devices contend, not an in-session on/off pattern.
                    cfg.cross_stop = SimTime::ZERO + spec.horizon;
                }
                let mut tb = Testbed::build(cfg);
                tb.attach_metrics(&reg);
                tb.sim.set_profiler(prof);
                let app = match class.tool {
                    Tool::AcuteMon => {
                        let mut am = acutemon::AcuteMonConfig::new(addr::SERVER, k);
                        if let Some((dpre_ms, db_ms)) = calibration {
                            am.dpre = SimDuration::from_ms_f64(dpre_ms);
                            am.db = SimDuration::from_ms_f64(db_ms);
                        }
                        if class.faults.is_some() {
                            // Lossy stratum: bounded retries with a short
                            // timeout, as the fault sweep does.
                            am = am
                                .with_retries(3)
                                .with_retry_backoff(SimDuration::from_millis(30));
                            am.probe_timeout = SimDuration::from_millis(300);
                        }
                        let idx = tb.install_app(
                            Box::new(acutemon::AcuteMonApp::new(am)),
                            RuntimeKind::Native,
                        );
                        tb.app_mut::<acutemon::AcuteMonApp>(idx)
                            .attach_metrics(&reg);
                        idx
                    }
                    Tool::SparsePing => {
                        let cfg = PingConfig::new(addr::SERVER, k, SimDuration::from_secs(1));
                        let idx = tb.install_app(Box::new(PingApp::new(cfg)), RuntimeKind::Native);
                        tb.app_mut::<PingApp>(idx).attach_metrics(&reg);
                        idx
                    }
                };
                (Rig::Wifi(tb), app)
            }
            Radio::Lte | Radio::Umts => {
                let mut cfg = match class.radio {
                    Radio::Lte => CellTestbedConfig::lte(seed, profile, path_rtt_ms),
                    _ => CellTestbedConfig::umts(seed, profile, path_rtt_ms),
                };
                cfg = cfg.with_queue(opts.queue);
                if let Some(plan) = class.faults.clone() {
                    cfg = cfg.with_bearer_faults(plan.with_seed(spec.fault_seed(index)));
                }
                let mut am_cfg = cfg.acutemon_profile(k);
                if let Some((dpre_ms, db_ms)) = calibration {
                    am_cfg.dpre = SimDuration::from_ms_f64(dpre_ms);
                    am_cfg.db = SimDuration::from_ms_f64(db_ms);
                }
                let mut tb = CellTestbed::build(cfg);
                tb.sim.set_metrics(&reg);
                tb.sim.set_profiler(prof);
                let app = match class.tool {
                    Tool::AcuteMon => {
                        let idx = tb.install_app(
                            Box::new(acutemon::AcuteMonApp::new(am_cfg)),
                            RuntimeKind::Native,
                        );
                        tb.sim
                            .node_mut::<phone::PhoneNode>(tb.phone)
                            .app_mut::<acutemon::AcuteMonApp>(idx)
                            .attach_metrics(&reg);
                        idx
                    }
                    Tool::SparsePing => {
                        let ping = PingConfig::new(tb.server_ip(), k, SimDuration::from_secs(1));
                        let idx = tb.install_app(Box::new(PingApp::new(ping)), RuntimeKind::Native);
                        tb.sim
                            .node_mut::<phone::PhoneNode>(tb.phone)
                            .app_mut::<PingApp>(idx)
                            .attach_metrics(&reg);
                        idx
                    }
                };
                (Rig::Cell(tb), app)
            }
        };
        DeviceSim {
            rig,
            app,
            tool: class.tool,
            reg,
            partial,
            horizon: SimTime::ZERO + spec.horizon,
            prof: prof.clone(),
        }
    }

    /// Timestamp of this device's next pending event, if any.
    pub(crate) fn next_time(&mut self) -> Option<SimTime> {
        match &mut self.rig {
            Rig::Wifi(tb) => tb.sim.peek_time(),
            Rig::Cell(tb) => tb.sim.peek_time(),
        }
    }

    /// Run every event up to `deadline` (clamped to the horizon) and
    /// advance the clock there.
    pub(crate) fn run_until(&mut self, deadline: SimTime) {
        let deadline = deadline.min(self.horizon);
        let _des = self.prof.phase("des");
        match &mut self.rig {
            Rig::Wifi(tb) => tb.run_until(deadline),
            Rig::Cell(tb) => tb.run_until(deadline),
        }
    }

    /// Advance to the horizon, harvest the records, and fold the
    /// device's partial (the `fold` profiler phase).
    pub(crate) fn finish(mut self) -> DevicePartial {
        self.run_until(self.horizon);
        let _fold = self.prof.phase("fold");
        let mut partial = self.partial;
        match self.rig {
            Rig::Wifi(tb) => {
                let capture = tb.capture_index();
                let records: Vec<RttRecord> = match self.tool {
                    Tool::AcuteMon => tb.app::<acutemon::AcuteMonApp>(self.app).records.clone(),
                    Tool::SparsePing => tb.app::<PingApp>(self.app).records.clone(),
                };
                let bds = breakdowns(&records, tb.phone_node().ledger(), &capture);
                harvest(&mut partial, &records, Some(&bds));
            }
            Rig::Cell(tb) => {
                let records: Vec<RttRecord> = match self.tool {
                    Tool::AcuteMon => tb.app::<acutemon::AcuteMonApp>(self.app).records.clone(),
                    Tool::SparsePing => tb.app::<PingApp>(self.app).records.clone(),
                };
                // No sniffers on the bearer: dn/overhead stay empty.
                harvest(&mut partial, &records, None);
            }
        }
        partial.obs = self.reg.snapshot();
        strip_engine_metrics(&mut partial.obs);
        partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ToJson;

    #[test]
    fn shard_is_deterministic() {
        let spec = CampaignSpec::heterogeneous(42, 16).with_probes(3);
        let a = run_device(&spec, 3);
        let b = run_device(&spec, 3);
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.du.quantile(0.5), b.du.quantile(0.5));
        assert_eq!(a.du.count(), b.du.count());
        assert_eq!(
            a.obs.to_json().to_string_pretty(),
            b.obs.to_json().to_string_pretty()
        );
    }

    #[test]
    fn wifi_shard_measures_du_and_dn() {
        let spec = CampaignSpec::heterogeneous(2016, 64).with_probes(4);
        // Find an AcuteMon WiFi device.
        let idx = (0..64)
            .find(|&i| {
                let c = &spec.classes[spec.class_of(i)];
                c.radio == Radio::Wifi && c.tool == Tool::AcuteMon && c.faults.is_none()
            })
            .expect("population has AcuteMon WiFi devices");
        let p = run_device(&spec, idx);
        assert_eq!(p.probes_sent, 4);
        assert_eq!(p.probes_completed, 4);
        assert!(p.dn.count() > 0, "sniffer saw nothing");
        assert!(p.overhead.count() > 0);
        // AcuteMon on a 50 ms path: du stays close to dn.
        let med = p.overhead.median().expect("identifiable overhead");
        assert!(med < 20.0, "overhead median {med}");
        assert!(!p.obs.is_empty(), "telemetry snapshot empty");
    }

    #[test]
    fn cellular_shard_has_no_dn() {
        let spec = CampaignSpec::heterogeneous(2016, 64).with_probes(3);
        let idx = (0..64)
            .find(|&i| spec.classes[spec.class_of(i)].radio != Radio::Wifi)
            .expect("population has cellular devices");
        let p = run_device(&spec, idx);
        assert!(p.probes_sent > 0);
        assert_eq!(p.dn.len(), 0);
        assert_eq!(p.overhead.len(), 0);
    }
}
