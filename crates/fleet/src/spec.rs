//! Declarative campaign specs.
//!
//! A [`CampaignSpec`] describes a *population*: `devices` simulated
//! phones drawn from weighted [`DeviceClass`] strata. Everything about
//! device `i` — its stratum, its RNG seed, its fault-plan seed — is a
//! pure function of `(campaign_seed, i)`, so a campaign shards across
//! any number of workers and still merges to byte-identical results.

use netem::FaultPlan;
use phone::PhoneProfile;
use simcore::SimDuration;

/// Radio access technology of a device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Radio {
    /// 802.11 PSM testbed (the paper's Fig. 2).
    Wifi,
    /// LTE RRC bearer (connected → short DRX → long DRX → idle).
    Lte,
    /// UMTS RRC bearer (DCH → FACH → IDLE).
    Umts,
}

/// The measurement tool a class runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// AcuteMon: warm-up + background traffic puncture the sleep delays.
    AcuteMon,
    /// A legacy sparse `ping` (1 s cadence) — the inflated baseline.
    SparsePing,
}

/// A per-class path-RTT *distribution*. Real measurement populations
/// (MopEye-style crowdsourcing) see a distribution of path RTTs per
/// device class, not one fixed value; each device draws its own path
/// RTT deterministically from `(campaign_seed, device_index)` via
/// [`CampaignSpec::path_rtt_of`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RttDist {
    /// Every device in the class sees the same path RTT (ms).
    Constant(u64),
    /// Uniform over `lo_ms..=hi_ms` (inclusive), in whole milliseconds.
    Uniform {
        /// Smallest path RTT, ms.
        lo_ms: u64,
        /// Largest path RTT, ms.
        hi_ms: u64,
    },
    /// Log-normal around a median: `median_ms · exp(sigma · Z)` with
    /// `Z ~ N(0,1)`, rounded to whole ms and clamped to
    /// `[1, 10_000]` ms — the long-tailed shape crowdsourced per-app RTT
    /// populations actually show.
    LogNormal {
        /// Median path RTT, ms (the `exp(μ)` of the underlying normal).
        median_ms: f64,
        /// Log-scale spread σ (0.5 ≈ a 2.7× p95/p50 ratio).
        sigma: f64,
    },
}

impl RttDist {
    /// Draw one path RTT (whole ms, in `[1, 10_000]`) from `draw`, a
    /// 64-bit value that must already be device-unique (the spec derives
    /// it from `(campaign_seed, device_index)` with a dedicated stream
    /// tag, so RTT draws never correlate with the simulation RNG).
    pub fn sample_ms(&self, draw: u64) -> u64 {
        const CLAMP_MAX: u64 = 10_000;
        match *self {
            RttDist::Constant(ms) => ms.clamp(1, CLAMP_MAX),
            RttDist::Uniform { lo_ms, hi_ms } => {
                let (lo, hi) = (lo_ms.min(hi_ms), lo_ms.max(hi_ms));
                (lo + draw % (hi - lo + 1)).clamp(1, CLAMP_MAX)
            }
            RttDist::LogNormal { median_ms, sigma } => {
                // Box–Muller over two decorrelated uniform draws.
                let u1 = to_unit_open(splitmix64(draw ^ 0x5EED_0001));
                let u2 = to_unit_open(splitmix64(draw ^ 0x5EED_0002));
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let ms = median_ms * (sigma * z).exp();
                (ms.round() as u64).clamp(1, CLAMP_MAX)
            }
        }
    }
}

/// Map a u64 to the open unit interval (0, 1) — never exactly 0, so
/// `ln(u)` in Box–Muller stays finite.
fn to_unit_open(x: u64) -> f64 {
    (((x >> 11) as f64) + 0.5) / (1u64 << 53) as f64
}

/// A diurnal cross-traffic schedule: devices whose (simulated,
/// per-device) local time-of-day falls inside the busy window run the
/// paper's §4.3 iPerf-style cross traffic for their whole session.
/// Device time-of-day is a deterministic uniform draw over `[0, 24)`
/// hours via [`CampaignSpec::time_of_day_of`] — a population snapshot of
/// devices measuring at different wall-clock hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalSchedule {
    /// Busy window start, hours in `[0, 24)`.
    pub busy_start_hour: f64,
    /// Busy window end, hours in `[0, 24)`; a start after the end wraps
    /// around midnight (e.g. 22→2).
    pub busy_end_hour: f64,
}

impl DiurnalSchedule {
    /// The evening peak (19:00–23:00) most residential WiFi sees.
    pub fn evening_peak() -> DiurnalSchedule {
        DiurnalSchedule {
            busy_start_hour: 19.0,
            busy_end_hour: 23.0,
        }
    }

    /// Whether `tod_hours` (in `[0, 24)`) falls inside the busy window.
    pub fn is_busy(&self, tod_hours: f64) -> bool {
        let (s, e) = (self.busy_start_hour, self.busy_end_hour);
        if s <= e {
            (s..e).contains(&tod_hours)
        } else {
            tod_hours >= s || tod_hours < e
        }
    }
}

/// A §4.2.2 calibration sweep at population scale: each device in the
/// stratum deterministically picks one `(dpre, db)` grid point, so a
/// single campaign covers the whole sensitivity grid with
/// population-sized samples per point.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSweep {
    /// Warm-up lead times `dpre` to sweep, ms. Must respect the paper's
    /// validity window `Tprom < dpre < min(Tis, Tip)`.
    pub dpre_ms: Vec<f64>,
    /// Background intervals `db` to sweep, ms (`db < min(Tis, Tip)`).
    pub db_ms: Vec<f64>,
}

impl CalibrationSweep {
    /// The default §4.2.2 grid: `dpre ∈ {10, 20, 40}` × `db ∈ {10, 20,
    /// 40}` ms — all inside the validity window of every Table 1 phone.
    pub fn paper_grid() -> CalibrationSweep {
        CalibrationSweep {
            dpre_ms: vec![10.0, 20.0, 40.0],
            db_ms: vec![10.0, 20.0, 40.0],
        }
    }

    /// The `(dpre, db)` grid point device draw `draw` lands on.
    pub fn pick(&self, draw: u64) -> (f64, f64) {
        let n = (self.dpre_ms.len() * self.db_ms.len()).max(1) as u64;
        let cell = (draw % n) as usize;
        (
            self.dpre_ms[cell / self.db_ms.len().max(1)],
            self.db_ms[cell % self.db_ms.len().max(1)],
        )
    }
}

/// One population stratum: a phone model plus the knobs the paper shows
/// matter (SDIO `idletime`, PSM `Tip`, listen interval `L`, beacon
/// interval), the tool it runs, and optional fault / cellular profiles.
#[derive(Debug, Clone)]
pub struct DeviceClass {
    /// Stratum name (report key).
    pub name: &'static str,
    /// Sampling weight (relative share of the population).
    pub weight: u32,
    /// Base phone model.
    pub profile: PhoneProfile,
    /// WiFi PSM or an RRC bearer.
    pub radio: Radio,
    /// Emulated path RTT (WiFi) or core RTT (cellular): a distribution
    /// sampled once per device.
    pub path_rtt: RttDist,
    /// Override the SDIO `idletime` (watchdog ticks before bus sleep).
    pub sdio_idletime: Option<u32>,
    /// Override the adaptive-PSM timeout `Tip` with a fixed value, ms.
    pub tip_ms: Option<f64>,
    /// Override the listen interval `L`.
    pub listen_interval: Option<u32>,
    /// Override the AP beacon interval, ms (WiFi only).
    pub beacon_interval_ms: Option<f64>,
    /// The measurement tool this stratum runs.
    pub tool: Tool,
    /// Fault plan for the path (WiFi medium / cellular bearer). The
    /// plan's seed is re-derived per device.
    pub faults: Option<FaultPlan>,
    /// Diurnal cross-traffic schedule (WiFi only): devices whose drawn
    /// time-of-day is inside the busy window compete with §4.3 cross
    /// traffic.
    pub diurnal: Option<DiurnalSchedule>,
    /// §4.2.2 calibration sweep: per-device `(dpre, db)` grid points
    /// (AcuteMon strata only; ignored for sparse ping).
    pub calibration: Option<CalibrationSweep>,
}

impl DeviceClass {
    /// A WiFi stratum running AcuteMon on `profile` over `rtt_ms`.
    pub fn wifi(name: &'static str, weight: u32, profile: PhoneProfile, rtt_ms: u64) -> Self {
        DeviceClass {
            name,
            weight,
            profile,
            radio: Radio::Wifi,
            path_rtt: RttDist::Constant(rtt_ms),
            sdio_idletime: None,
            tip_ms: None,
            listen_interval: None,
            beacon_interval_ms: None,
            tool: Tool::AcuteMon,
            faults: None,
            diurnal: None,
            calibration: None,
        }
    }

    /// Builder: switch to the sparse-ping baseline tool.
    pub fn sparse_ping(mut self) -> Self {
        self.tool = Tool::SparsePing;
        self
    }

    /// Builder: set the radio access technology.
    pub fn with_radio(mut self, radio: Radio) -> Self {
        self.radio = radio;
        self
    }

    /// Builder: override the SDIO `idletime`.
    pub fn with_sdio_idletime(mut self, ticks: u32) -> Self {
        self.sdio_idletime = Some(ticks);
        self
    }

    /// Builder: pin the PSM timeout `Tip` to a fixed value.
    pub fn with_tip_ms(mut self, tip_ms: f64) -> Self {
        self.tip_ms = Some(tip_ms);
        self
    }

    /// Builder: override the listen interval `L`.
    pub fn with_listen_interval(mut self, l: u32) -> Self {
        self.listen_interval = Some(l);
        self
    }

    /// Builder: override the beacon interval (ms).
    pub fn with_beacon_interval_ms(mut self, ms: f64) -> Self {
        self.beacon_interval_ms = Some(ms);
        self
    }

    /// Builder: inject faults on the path (seed re-derived per device).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builder: draw each device's path RTT from `dist` instead of a
    /// fixed value.
    pub fn with_rtt(mut self, dist: RttDist) -> Self {
        self.path_rtt = dist;
        self
    }

    /// Builder: run §4.3 cross traffic on devices whose drawn
    /// time-of-day falls inside `schedule`'s busy window.
    pub fn with_diurnal(mut self, schedule: DiurnalSchedule) -> Self {
        self.diurnal = Some(schedule);
        self
    }

    /// Builder: sweep `(dpre, db)` across the stratum per `sweep`.
    pub fn with_calibration(mut self, sweep: CalibrationSweep) -> Self {
        self.calibration = Some(sweep);
        self
    }
}

/// A full campaign: N devices drawn from weighted strata.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign seed; every device seed derives from it.
    pub seed: u64,
    /// Population size.
    pub devices: u64,
    /// Probes per device (`K`).
    pub probes_per_device: u32,
    /// Per-device simulated horizon.
    pub horizon: SimDuration,
    /// The strata (must be non-empty, total weight > 0).
    pub classes: Vec<DeviceClass>,
}

/// SplitMix64 — the seed/stratum derivation mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl CampaignSpec {
    /// A campaign of `devices` devices over `classes`.
    pub fn new(seed: u64, devices: u64, classes: Vec<DeviceClass>) -> CampaignSpec {
        assert!(!classes.is_empty(), "campaign needs at least one class");
        assert!(
            classes.iter().map(|c| u64::from(c.weight)).sum::<u64>() > 0,
            "campaign needs a positive total weight"
        );
        CampaignSpec {
            seed,
            devices,
            probes_per_device: 6,
            horizon: SimDuration::from_secs(12),
            classes,
        }
    }

    /// Builder: probes per device.
    pub fn with_probes(mut self, k: u32) -> Self {
        self.probes_per_device = k.max(1);
        self
    }

    /// Builder: per-device simulated horizon.
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// The heterogeneous reference population used by `repro fleet`:
    /// AcuteMon and sparse-ping WiFi strata across phone models and PSM
    /// knobs, a lossy-WiFi stratum, and LTE/UMTS cellular strata.
    pub fn heterogeneous(seed: u64, devices: u64) -> CampaignSpec {
        let classes = vec![
            DeviceClass::wifi("n5-acutemon-50ms", 4, phone::nexus5(), 50),
            DeviceClass::wifi("n5-ping-50ms", 2, phone::nexus5(), 50).sparse_ping(),
            DeviceClass::wifi("n4-fast-doze", 2, phone::nexus4(), 50)
                .sparse_ping()
                .with_sdio_idletime(1)
                .with_tip_ms(120.0)
                .with_listen_interval(3),
            DeviceClass::wifi("n5-slow-beacons", 1, phone::nexus5(), 50)
                .sparse_ping()
                .with_beacon_interval_ms(204.8),
            DeviceClass::wifi("n5-lossy-wifi", 1, phone::nexus5(), 50)
                .with_faults(FaultPlan::gilbert_elliott(0.08, 3.0)),
            DeviceClass::wifi("lte-acutemon-40ms", 1, phone::nexus5(), 40).with_radio(Radio::Lte),
            DeviceClass::wifi("umts-ping-40ms", 1, phone::nexus5(), 40)
                .sparse_ping()
                .with_radio(Radio::Umts),
            // MopEye-style populations: per-class RTT *distributions*.
            DeviceClass::wifi("n5-lognormal-rtt", 2, phone::nexus5(), 60).with_rtt(
                RttDist::LogNormal {
                    median_ms: 60.0,
                    sigma: 0.5,
                },
            ),
            DeviceClass::wifi("n4-uniform-rtt", 1, phone::nexus4(), 70)
                .sparse_ping()
                .with_rtt(RttDist::Uniform {
                    lo_ms: 20,
                    hi_ms: 120,
                }),
            // Evening-peak homes: §4.3 cross traffic for devices that
            // measure during the busy window.
            DeviceClass::wifi("n5-evening-cross", 1, phone::nexus5(), 50)
                .with_diurnal(DiurnalSchedule::evening_peak()),
            // §4.2.2 at population scale: the (dpre, db) sensitivity grid.
            DeviceClass::wifi("n5-calib-dpre-db", 1, phone::nexus5(), 50)
                .with_calibration(CalibrationSweep::paper_grid()),
        ];
        CampaignSpec::new(seed, devices, classes)
    }

    /// Total stratum weight.
    pub fn total_weight(&self) -> u64 {
        self.classes.iter().map(|c| u64::from(c.weight)).sum()
    }

    /// The stratum of device `index` — a pure function of
    /// `(seed, index)`, independent of worker count or completion order.
    pub fn class_of(&self, index: u64) -> usize {
        let total = self.total_weight();
        let mut draw = splitmix64(self.seed ^ splitmix64(index ^ 0xC1A5_5000)) % total;
        for (i, c) in self.classes.iter().enumerate() {
            let w = u64::from(c.weight);
            if draw < w {
                return i;
            }
            draw -= w;
        }
        self.classes.len() - 1
    }

    /// The simulation seed of device `index` (pure in `(seed, index)`).
    pub fn device_seed(&self, index: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(index))
    }

    /// The fault-plan seed of device `index`, decorrelated from the
    /// simulation seed.
    pub fn fault_seed(&self, index: u64) -> u64 {
        splitmix64(self.device_seed(index) ^ 0xFA17_5EED)
    }

    /// The path RTT (ms) of device `index`: one deterministic draw from
    /// its stratum's [`RttDist`], decorrelated from the simulation and
    /// fault seeds by a dedicated stream tag.
    pub fn path_rtt_of(&self, index: u64) -> u64 {
        let class = &self.classes[self.class_of(index)];
        class
            .path_rtt
            .sample_ms(splitmix64(self.device_seed(index) ^ 0x0077_D157))
    }

    /// The simulated local time-of-day of device `index`, hours in
    /// `[0, 24)` — a uniform deterministic draw, used against
    /// [`DiurnalSchedule`] busy windows.
    pub fn time_of_day_of(&self, index: u64) -> f64 {
        let draw = splitmix64(self.device_seed(index) ^ 0x70D0_0DA1);
        24.0 * ((draw >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// The `(dpre, db)` calibration grid point of device `index` (ms),
    /// when its stratum carries a [`CalibrationSweep`].
    pub fn calibration_of(&self, index: u64) -> Option<(f64, f64)> {
        let class = &self.classes[self.class_of(index)];
        let sweep = class.calibration.as_ref()?;
        Some(sweep.pick(splitmix64(self.device_seed(index) ^ 0xCA11_B007)))
    }

    /// Whether device `index` runs §4.3 cross traffic: its stratum has a
    /// diurnal schedule and its drawn time-of-day is in the busy window.
    pub fn cross_traffic_of(&self, index: u64) -> bool {
        let class = &self.classes[self.class_of(index)];
        class
            .diurnal
            .map(|d| d.is_busy(self.time_of_day_of(index)))
            .unwrap_or(false)
    }

    /// A fingerprint of the whole spec (seed, population size, probes,
    /// horizon, and every stratum knob), FNV-1a over the canonical debug
    /// rendering. Campaign checkpoints and partial reports embed it so a
    /// resume or merge against a *different* spec is rejected instead of
    /// silently producing garbage.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let canon = format!("fleet-spec-v1 {self:?}");
        let mut h = FNV_OFFSET;
        for b in canon.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_pure_and_distinct() {
        let spec = CampaignSpec::heterogeneous(2016, 1000);
        assert_eq!(spec.device_seed(17), spec.device_seed(17));
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(spec.device_seed(i)), "collision at {i}");
        }
    }

    #[test]
    fn strata_follow_weights() {
        let spec = CampaignSpec::heterogeneous(7, 24_000);
        let mut counts = vec![0u64; spec.classes.len()];
        for i in 0..spec.devices {
            counts[spec.class_of(i)] += 1;
        }
        let total = spec.total_weight() as f64;
        for (c, &n) in spec.classes.iter().zip(&counts) {
            let expected = spec.devices as f64 * f64::from(c.weight) / total;
            let err = (n as f64 - expected).abs() / expected;
            assert!(err < 0.1, "{}: {n} vs {expected}", c.name);
        }
    }

    #[test]
    fn class_of_is_independent_of_device_count() {
        // Sharding must not change stratum assignment: device 5 is in
        // the same class whether the campaign has 10 or 10k devices.
        let small = CampaignSpec::heterogeneous(2016, 10);
        let large = CampaignSpec::heterogeneous(2016, 10_000);
        for i in 0..10 {
            assert_eq!(small.class_of(i), large.class_of(i));
        }
    }
}
