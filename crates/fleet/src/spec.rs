//! Declarative campaign specs.
//!
//! A [`CampaignSpec`] describes a *population*: `devices` simulated
//! phones drawn from weighted [`DeviceClass`] strata. Everything about
//! device `i` — its stratum, its RNG seed, its fault-plan seed — is a
//! pure function of `(campaign_seed, i)`, so a campaign shards across
//! any number of workers and still merges to byte-identical results.

use netem::FaultPlan;
use phone::PhoneProfile;
use simcore::SimDuration;

/// Radio access technology of a device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Radio {
    /// 802.11 PSM testbed (the paper's Fig. 2).
    Wifi,
    /// LTE RRC bearer (connected → short DRX → long DRX → idle).
    Lte,
    /// UMTS RRC bearer (DCH → FACH → IDLE).
    Umts,
}

/// The measurement tool a class runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// AcuteMon: warm-up + background traffic puncture the sleep delays.
    AcuteMon,
    /// A legacy sparse `ping` (1 s cadence) — the inflated baseline.
    SparsePing,
}

/// One population stratum: a phone model plus the knobs the paper shows
/// matter (SDIO `idletime`, PSM `Tip`, listen interval `L`, beacon
/// interval), the tool it runs, and optional fault / cellular profiles.
#[derive(Debug, Clone)]
pub struct DeviceClass {
    /// Stratum name (report key).
    pub name: &'static str,
    /// Sampling weight (relative share of the population).
    pub weight: u32,
    /// Base phone model.
    pub profile: PhoneProfile,
    /// WiFi PSM or an RRC bearer.
    pub radio: Radio,
    /// Emulated path RTT (WiFi) or core RTT (cellular), ms.
    pub path_rtt_ms: u64,
    /// Override the SDIO `idletime` (watchdog ticks before bus sleep).
    pub sdio_idletime: Option<u32>,
    /// Override the adaptive-PSM timeout `Tip` with a fixed value, ms.
    pub tip_ms: Option<f64>,
    /// Override the listen interval `L`.
    pub listen_interval: Option<u32>,
    /// Override the AP beacon interval, ms (WiFi only).
    pub beacon_interval_ms: Option<f64>,
    /// The measurement tool this stratum runs.
    pub tool: Tool,
    /// Fault plan for the path (WiFi medium / cellular bearer). The
    /// plan's seed is re-derived per device.
    pub faults: Option<FaultPlan>,
}

impl DeviceClass {
    /// A WiFi stratum running AcuteMon on `profile` over `rtt_ms`.
    pub fn wifi(name: &'static str, weight: u32, profile: PhoneProfile, rtt_ms: u64) -> Self {
        DeviceClass {
            name,
            weight,
            profile,
            radio: Radio::Wifi,
            path_rtt_ms: rtt_ms,
            sdio_idletime: None,
            tip_ms: None,
            listen_interval: None,
            beacon_interval_ms: None,
            tool: Tool::AcuteMon,
            faults: None,
        }
    }

    /// Builder: switch to the sparse-ping baseline tool.
    pub fn sparse_ping(mut self) -> Self {
        self.tool = Tool::SparsePing;
        self
    }

    /// Builder: set the radio access technology.
    pub fn with_radio(mut self, radio: Radio) -> Self {
        self.radio = radio;
        self
    }

    /// Builder: override the SDIO `idletime`.
    pub fn with_sdio_idletime(mut self, ticks: u32) -> Self {
        self.sdio_idletime = Some(ticks);
        self
    }

    /// Builder: pin the PSM timeout `Tip` to a fixed value.
    pub fn with_tip_ms(mut self, tip_ms: f64) -> Self {
        self.tip_ms = Some(tip_ms);
        self
    }

    /// Builder: override the listen interval `L`.
    pub fn with_listen_interval(mut self, l: u32) -> Self {
        self.listen_interval = Some(l);
        self
    }

    /// Builder: override the beacon interval (ms).
    pub fn with_beacon_interval_ms(mut self, ms: f64) -> Self {
        self.beacon_interval_ms = Some(ms);
        self
    }

    /// Builder: inject faults on the path (seed re-derived per device).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// A full campaign: N devices drawn from weighted strata.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign seed; every device seed derives from it.
    pub seed: u64,
    /// Population size.
    pub devices: u64,
    /// Probes per device (`K`).
    pub probes_per_device: u32,
    /// Per-device simulated horizon.
    pub horizon: SimDuration,
    /// The strata (must be non-empty, total weight > 0).
    pub classes: Vec<DeviceClass>,
}

/// SplitMix64 — the seed/stratum derivation mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl CampaignSpec {
    /// A campaign of `devices` devices over `classes`.
    pub fn new(seed: u64, devices: u64, classes: Vec<DeviceClass>) -> CampaignSpec {
        assert!(!classes.is_empty(), "campaign needs at least one class");
        assert!(
            classes.iter().map(|c| u64::from(c.weight)).sum::<u64>() > 0,
            "campaign needs a positive total weight"
        );
        CampaignSpec {
            seed,
            devices,
            probes_per_device: 6,
            horizon: SimDuration::from_secs(12),
            classes,
        }
    }

    /// Builder: probes per device.
    pub fn with_probes(mut self, k: u32) -> Self {
        self.probes_per_device = k.max(1);
        self
    }

    /// Builder: per-device simulated horizon.
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// The heterogeneous reference population used by `repro fleet`:
    /// AcuteMon and sparse-ping WiFi strata across phone models and PSM
    /// knobs, a lossy-WiFi stratum, and LTE/UMTS cellular strata.
    pub fn heterogeneous(seed: u64, devices: u64) -> CampaignSpec {
        let classes = vec![
            DeviceClass::wifi("n5-acutemon-50ms", 4, phone::nexus5(), 50),
            DeviceClass::wifi("n5-ping-50ms", 2, phone::nexus5(), 50).sparse_ping(),
            DeviceClass::wifi("n4-fast-doze", 2, phone::nexus4(), 50)
                .sparse_ping()
                .with_sdio_idletime(1)
                .with_tip_ms(120.0)
                .with_listen_interval(3),
            DeviceClass::wifi("n5-slow-beacons", 1, phone::nexus5(), 50)
                .sparse_ping()
                .with_beacon_interval_ms(204.8),
            DeviceClass::wifi("n5-lossy-wifi", 1, phone::nexus5(), 50)
                .with_faults(FaultPlan::gilbert_elliott(0.08, 3.0)),
            DeviceClass::wifi("lte-acutemon-40ms", 1, phone::nexus5(), 40).with_radio(Radio::Lte),
            DeviceClass::wifi("umts-ping-40ms", 1, phone::nexus5(), 40)
                .sparse_ping()
                .with_radio(Radio::Umts),
        ];
        CampaignSpec::new(seed, devices, classes)
    }

    /// Total stratum weight.
    pub fn total_weight(&self) -> u64 {
        self.classes.iter().map(|c| u64::from(c.weight)).sum()
    }

    /// The stratum of device `index` — a pure function of
    /// `(seed, index)`, independent of worker count or completion order.
    pub fn class_of(&self, index: u64) -> usize {
        let total = self.total_weight();
        let mut draw = splitmix64(self.seed ^ splitmix64(index ^ 0xC1A5_5000)) % total;
        for (i, c) in self.classes.iter().enumerate() {
            let w = u64::from(c.weight);
            if draw < w {
                return i;
            }
            draw -= w;
        }
        self.classes.len() - 1
    }

    /// The simulation seed of device `index` (pure in `(seed, index)`).
    pub fn device_seed(&self, index: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(index))
    }

    /// The fault-plan seed of device `index`, decorrelated from the
    /// simulation seed.
    pub fn fault_seed(&self, index: u64) -> u64 {
        splitmix64(self.device_seed(index) ^ 0xFA17_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_pure_and_distinct() {
        let spec = CampaignSpec::heterogeneous(2016, 1000);
        assert_eq!(spec.device_seed(17), spec.device_seed(17));
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(spec.device_seed(i)), "collision at {i}");
        }
    }

    #[test]
    fn strata_follow_weights() {
        let spec = CampaignSpec::heterogeneous(7, 24_000);
        let mut counts = vec![0u64; spec.classes.len()];
        for i in 0..spec.devices {
            counts[spec.class_of(i)] += 1;
        }
        let total = spec.total_weight() as f64;
        for (c, &n) in spec.classes.iter().zip(&counts) {
            let expected = spec.devices as f64 * f64::from(c.weight) / total;
            let err = (n as f64 - expected).abs() / expected;
            assert!(err < 0.1, "{}: {n} vs {expected}", c.name);
        }
    }

    #[test]
    fn class_of_is_independent_of_device_count() {
        // Sharding must not change stratum assignment: device 5 is in
        // the same class whether the campaign has 10 or 10k devices.
        let small = CampaignSpec::heterogeneous(2016, 10);
        let large = CampaignSpec::heterogeneous(2016, 10_000);
        for i in 0..10 {
            assert_eq!(small.class_of(i), large.class_of(i));
        }
    }
}
