//! Campaign determinism, stated as properties:
//!
//! 1. the sketch merge algebra is order-independent over *real* device
//!    partials (not just synthetic streams — those live in `am_stats`);
//! 2. the merged campaign JSON is byte-identical for 1 vs. 8 workers;
//! 3. collector memory stays bounded by in-flight work, independent of
//!    probe count;
//! 4. neither the event-queue backend (heap vs. timer wheel vs. the
//!    boxed-payload oracle) nor device multiplexing leaks into the
//!    campaign JSON;
//! 5. the batched cross-traffic fast path produces the same campaign
//!    JSON as the per-packet reference path.

use fleet::{run_campaign, run_campaign_opts, run_device, CampaignSpec, RunOptions};
use obs::ToJson;

/// xorshift64* — a tiny deterministic shuffler for the property tests.
struct Shuffler(u64);

impl Shuffler {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            xs.swap(i, j);
        }
    }
}

#[test]
fn sketch_merge_is_order_independent_over_real_partials() {
    let spec = CampaignSpec::heterogeneous(97, 12).with_probes(2);
    let partials: Vec<_> = (0..spec.devices).map(|i| run_device(&spec, i)).collect();

    // Merge the du sketches in many different orders (including a
    // tree-shaped reduction); every order must agree bit for bit.
    let merge_flat = |order: &[usize]| {
        let mut acc = am_stats::QuantileSketch::new();
        for &i in order {
            acc.merge(&partials[i].du);
        }
        acc.to_json().to_string_pretty()
    };
    let forward: Vec<usize> = (0..partials.len()).collect();
    let reference = merge_flat(&forward);

    let mut reversed = forward.clone();
    reversed.reverse();
    assert_eq!(merge_flat(&reversed), reference, "reverse order diverged");

    let mut rng = Shuffler(0xD1CE);
    for round in 0..5 {
        let mut order = forward.clone();
        rng.shuffle(&mut order);
        assert_eq!(merge_flat(&order), reference, "shuffle {round} diverged");
    }

    // Tree reduction: ((0+1)+(2+3))+… — associativity, not just
    // commutativity.
    let mut layer: Vec<am_stats::QuantileSketch> = partials.iter().map(|p| p.du.clone()).collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                let mut acc = pair[0].clone();
                if let Some(rhs) = pair.get(1) {
                    acc.merge(rhs);
                }
                acc
            })
            .collect();
    }
    assert_eq!(
        layer[0].to_json().to_string_pretty(),
        reference,
        "tree reduction diverged"
    );
}

#[test]
fn campaign_json_is_byte_identical_for_1_vs_8_workers() {
    let spec = CampaignSpec::heterogeneous(2016, 40).with_probes(2);
    let (one, _) = run_campaign(&spec, 1);
    let (eight, _) = run_campaign(&spec, 8);
    let a = one.to_json().to_string_pretty();
    let b = eight.to_json().to_string_pretty();
    assert_eq!(a, b, "worker count leaked into the merged report");
    // And the report actually has content to disagree about.
    assert!(one.du_all.len() >= 80, "du_all {}", one.du_all.len());
    assert!(!one.obs.is_empty());
}

#[test]
fn campaign_json_is_byte_identical_across_queue_backends() {
    // A 200-device heterogeneous fleet (every stratum: WiFi + cellular,
    // AcuteMon + sparse ping, faulty + clean) run once on the
    // BinaryHeap scheduler and once on the timer wheel. The scheduler
    // contract (ARCHITECTURE.md § Scheduler) says the two pop events in
    // exactly the same (at, seq) order — so every sketch, counter, and
    // reservoir in the merged report must agree byte for byte.
    let spec = CampaignSpec::heterogeneous(2016, 200).with_probes(1);
    let heap = RunOptions {
        queue: simcore::QueueKind::Heap,
        ..RunOptions::default()
    };
    let wheel = RunOptions {
        queue: simcore::QueueKind::Wheel,
        ..RunOptions::default()
    };
    let (a, _) = run_campaign_opts(&spec, 1, &heap);
    let (b, _) = run_campaign_opts(&spec, 4, &wheel);
    assert_eq!(
        a.expect("no halt").to_json().to_string_pretty(),
        b.expect("no halt").to_json().to_string_pretty(),
        "queue backend leaked into the merged report"
    );
}

#[test]
fn campaign_json_is_byte_identical_for_boxed_oracle() {
    // The boxed-payload queue re-boxes every event on push and unboxes
    // it on pop — the allocation pattern the arena discipline deleted.
    // It exists purely as an oracle: same (at, seq) pop order, so the
    // same campaign bytes.
    let spec = CampaignSpec::heterogeneous(2016, 64).with_probes(1);
    let wheel = RunOptions::default();
    let boxed = RunOptions {
        queue: simcore::QueueKind::Boxed,
        ..RunOptions::default()
    };
    let (a, _) = run_campaign_opts(&spec, 2, &wheel);
    let (b, _) = run_campaign_opts(&spec, 2, &boxed);
    assert_eq!(
        a.expect("no halt").to_json().to_string_pretty(),
        b.expect("no halt").to_json().to_string_pretty(),
        "boxed oracle diverged from the arena path"
    );
}

#[test]
fn campaign_json_is_byte_identical_for_batched_cross_traffic() {
    // A 200-device fleet whose diurnal schedule puts a slice of the
    // population under cross traffic, run once with the per-packet
    // reference blaster and once with the batched fast path. The
    // batched path emits the identical packet stream with far fewer
    // engine events, so the merged report must agree byte for byte.
    let spec = CampaignSpec::heterogeneous(2016, 200).with_probes(1);
    let busy = (0..spec.devices)
        .filter(|&i| spec.cross_traffic_of(i))
        .count();
    assert!(busy > 0, "population has no cross-traffic devices");
    let per_packet = RunOptions {
        cross_per_packet: true,
        ..RunOptions::default()
    };
    let batched = RunOptions::default(); // batched is the default
    let (a, _) = run_campaign_opts(&spec, 2, &per_packet);
    let (b, _) = run_campaign_opts(&spec, 2, &batched);
    assert_eq!(
        a.expect("no halt").to_json().to_string_pretty(),
        b.expect("no halt").to_json().to_string_pretty(),
        "batched cross traffic leaked into the merged report ({busy} busy devices)"
    );
}

#[test]
fn multiplexed_campaign_report_is_byte_identical() {
    // Per-device dispatch vs. groups of 8 devices interleaved on each
    // worker by next-event time: the same bytes must come out, and the
    // reorder buffer must respect the M-scaled backpressure window.
    let spec = CampaignSpec::heterogeneous(41, 48).with_probes(1);
    let (plain, _) = run_campaign(&spec, 2);
    let opts = RunOptions {
        multiplex: Some(8),
        ..RunOptions::default()
    };
    let (muxed, stats) = run_campaign_opts(&spec, 2, &opts);
    assert_eq!(
        plain.to_json().to_string_pretty(),
        muxed.expect("no halt").to_json().to_string_pretty(),
        "multiplexing leaked into the merged report"
    );
    let window = (2 * 2 + 4) * 8;
    assert!(
        stats.reorder_peak <= window,
        "reorder peak {} exceeds the multiplex window {window}",
        stats.reorder_peak
    );
}

#[test]
fn collector_memory_is_bounded_by_inflight_work() {
    // Probe count scales the per-device work, not the campaign state:
    // the reorder buffer's high-water mark depends only on workers and
    // channel capacity.
    let small = CampaignSpec::heterogeneous(3, 24).with_probes(1);
    let big = CampaignSpec::heterogeneous(3, 24).with_probes(4);
    let (_, s) = run_campaign(&small, 4);
    let (_, b) = run_campaign(&big, 4);
    let bound = 4 + 4 * 2; // workers + channel capacity
    assert!(s.reorder_peak <= bound, "small peak {}", s.reorder_peak);
    assert!(b.reorder_peak <= bound, "big peak {}", b.reorder_peak);
}
