//! Cross-process determinism: a campaign killed at any checkpoint and
//! resumed, or split into contiguous partitions and merged, must
//! produce JSON byte-identical to an uninterrupted single-process run.
//! Every state hand-off in these tests round-trips through actual JSON
//! text (serialize → parse → restore), exactly like the files the
//! `repro` binary writes.

use fleet::{
    merge_partials, resume_campaign, run_campaign, run_campaign_opts, run_partition, CampaignSpec,
    CheckpointPolicy, RunOptions,
};
use obs::{Json, ToJson};

fn spec() -> CampaignSpec {
    CampaignSpec::heterogeneous(42, 18).with_probes(2)
}

fn pretty(report: &fleet::CampaignReport) -> String {
    report.to_json().to_string_pretty()
}

/// Kill the campaign after every possible device count, resume from the
/// checkpoint file the killed run left behind, and demand the final
/// report bytes never change.
#[test]
fn resume_from_every_checkpoint_is_byte_identical() {
    let spec = spec();
    let (full, _) = run_campaign(&spec, 2);
    let full_json = pretty(&full);

    let dir = std::env::temp_dir().join(format!("fleet-resume-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for halt in 1..spec.devices {
        let cp = dir.join(format!("cp-{halt}.json"));
        let opts = RunOptions {
            checkpoint: Some(CheckpointPolicy {
                path: cp.clone(),
                every: 1,
            }),
            halt_after_devices: Some(halt),
            ..RunOptions::default()
        };
        let (report, stats) = run_campaign_opts(&spec, 3, &opts);
        assert!(report.is_none(), "halted run must not produce a report");
        assert_eq!(stats.devices, halt);

        // Restore from the on-disk checkpoint, like `repro --resume`.
        let state = Json::parse(&std::fs::read_to_string(&cp).unwrap()).unwrap();
        let (resumed, stats) = resume_campaign(&spec, 2, &state, &RunOptions::default()).unwrap();
        assert_eq!(
            stats.devices,
            spec.devices - halt,
            "resume runs only the tail"
        );
        assert_eq!(
            pretty(&resumed.unwrap()),
            full_json,
            "killed at device {halt}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A resume can itself be killed and resumed again: chain three
/// partial runs through checkpoints and still match the full run.
#[test]
fn double_kill_double_resume_is_byte_identical() {
    let spec = spec();
    let (full, _) = run_campaign(&spec, 1);

    let dir = std::env::temp_dir().join(format!("fleet-resume2-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cp = dir.join("cp.json");
    let halt = |n| RunOptions {
        checkpoint: Some(CheckpointPolicy {
            path: cp.clone(),
            every: 1,
        }),
        halt_after_devices: Some(n),
        ..RunOptions::default()
    };
    let (r, _) = run_campaign_opts(&spec, 2, &halt(5));
    assert!(r.is_none());
    let state = Json::parse(&std::fs::read_to_string(&cp).unwrap()).unwrap();
    let (r, _) = resume_campaign(&spec, 3, &state, &halt(7)).unwrap();
    assert!(r.is_none());
    let state = Json::parse(&std::fs::read_to_string(&cp).unwrap()).unwrap();
    let (r, _) = resume_campaign(&spec, 2, &state, &RunOptions::default()).unwrap();
    assert_eq!(pretty(&r.unwrap()), pretty(&full));
    std::fs::remove_dir_all(&dir).ok();
}

/// k contiguous partitions, each run independently and serialized to
/// JSON text, merge back into the single-process report — for k = 1
/// (degenerate) and k = 4, with partials supplied out of order.
#[test]
fn partition_merge_equals_single_process() {
    let spec = CampaignSpec::heterogeneous(9, 22).with_probes(2);
    let (single, _) = run_campaign(&spec, 2);
    let single_json = pretty(&single);

    for k in [1u64, 4] {
        let mut parts: Vec<Json> = (0..k)
            .map(|i| {
                let (collector, _) = run_partition(&spec, 2, i, k);
                // Round-trip through text like fleet.partial-i-of-k.json.
                Json::parse(&collector.state_json().to_string_pretty()).unwrap()
            })
            .collect();
        parts.reverse(); // merge_partials sorts by range_start
        let merged = merge_partials(&spec, &parts).unwrap();
        assert_eq!(pretty(&merged), single_json, "k = {k}");
    }
}

#[test]
fn merge_rejects_wrong_spec_gaps_and_overlaps() {
    let spec = CampaignSpec::heterogeneous(9, 22).with_probes(2);
    let parts: Vec<Json> = (0..4)
        .map(|i| run_partition(&spec, 1, i, 4).0.state_json())
        .collect();

    // Wrong seed → fingerprint mismatch.
    let other = CampaignSpec::heterogeneous(10, 22).with_probes(2);
    assert!(merge_partials(&other, &parts).is_err());

    // Missing a slice → not contiguous.
    let gappy: Vec<Json> = vec![parts[0].clone(), parts[2].clone(), parts[3].clone()];
    assert!(merge_partials(&spec, &gappy).is_err());

    // Duplicate slice → overlap.
    let dupe: Vec<Json> = vec![parts[0].clone(), parts[1].clone(), parts[1].clone()];
    assert!(merge_partials(&spec, &dupe).is_err());

    // Not starting at device 0.
    assert!(merge_partials(&spec, &parts[1..]).is_err());
}

#[test]
fn resume_rejects_partition_partials_and_foreign_state() {
    let spec = spec();
    let (tail, _) = run_partition(&spec, 1, 1, 2);
    let err = resume_campaign(&spec, 1, &tail.state_json(), &RunOptions::default());
    assert!(err.is_err(), "a mid-campaign partial is not a resume point");

    let other = CampaignSpec::heterogeneous(43, 18).with_probes(2);
    let (head, _) = run_partition(&other, 1, 0, 2);
    let err = resume_campaign(&spec, 1, &head.state_json(), &RunOptions::default());
    assert!(err.is_err(), "state from another campaign must be rejected");

    assert!(
        fleet::Collector::from_state_json(&Json::parse("{\"format\":\"nope\"}").unwrap()).is_err()
    );
}
