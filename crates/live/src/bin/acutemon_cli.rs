//! `acutemon-cli` — measure network RTT with the AcuteMon technique over
//! real sockets.
//!
//! ```text
//! acutemon-cli HOST:PORT [--k N] [--dpre MS] [--db MS] [--ttl N]
//!              [--probe tcp|udp] [--timeout MS] [--no-background]
//!              [--warmup-dst HOST:PORT] [--json]
//!              [--metrics-json] [--metrics-text]
//!              [--trace-out FILE] [--trace-spans FILE] [-v] [--quiet]
//! acutemon-cli fleet [--devices N] [--workers W] [--seed S] [--k N]
//!              [--out FILE] [--json] [-v] [--quiet]
//! ```
//!
//! Defaults mirror the paper: K=100, dpre=db=20 ms, warm-up TTL 1 (the
//! keep-awake datagrams die at your gateway), TCP-connect probing.
//!
//! `--metrics-json` / `--metrics-text` append the session's telemetry
//! snapshot (`live.*` counters and the per-probe RTT histogram) to
//! stdout as JSON lines or Prometheus-style text. `--trace-out` writes
//! per-probe spans as Chrome `trace_event` JSON (loadable in
//! `chrome://tracing` / Perfetto); `--trace-spans` writes the same spans
//! as JSON-lines. Tracing is off — and costs nothing on the probe hot
//! path — unless one of the two flags is given.
//!
//! The `fleet` subcommand runs a *simulated* sharded campaign (the
//! `fleet` crate's heterogeneous population) instead of probing a real
//! host — handy for sizing a measurement study before deploying it.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use acutemon_live::{run_traced, LiveConfig, LiveProbe};
use obs::{error, info, Registry, Tracer};

struct Cli {
    cfg: LiveConfig,
    json: bool,
    metrics_json: bool,
    metrics_text: bool,
    trace_out: Option<PathBuf>,
    trace_spans: Option<PathBuf>,
}

fn usage() -> ! {
    error!(
        "usage: acutemon-cli HOST:PORT [--k N] [--dpre MS] [--db MS] [--ttl N]\n\
         \x20                [--probe tcp|udp] [--timeout MS] [--no-background]\n\
         \x20                [--warmup-dst HOST:PORT] [--json]\n\
         \x20                [--metrics-json] [--metrics-text]\n\
         \x20                [--trace-out FILE] [--trace-spans FILE] [-v] [--quiet]\n\
         \n\
         \x20 --trace-out FILE    write per-probe spans as Chrome trace_event\n\
         \x20                     JSON (open in chrome://tracing or Perfetto)\n\
         \x20 --trace-spans FILE  write the same spans as JSON-lines"
    );
    std::process::exit(2);
}

fn fleet_usage() -> ! {
    error!(
        "usage: acutemon-cli fleet [--devices N] [--workers W] [--seed S] [--k N]\n\
         \x20                [--out FILE] [--json] [-v] [--quiet]\n\
         \n\
         Runs a simulated sharded measurement campaign over the fleet\n\
         crate's heterogeneous device population and prints per-stratum\n\
         du/dn/overhead quantiles. --out writes the merged report JSON\n\
         (byte-identical for any --workers)."
    );
    std::process::exit(2);
}

fn run_fleet(args: &mut dyn Iterator<Item = String>) -> ! {
    let mut devices = 500u64;
    let mut workers: Option<usize> = None;
    let mut seed = 2016u64;
    let mut k = 6u32;
    let mut out: Option<PathBuf> = None;
    let mut json = false;
    let mut quiet = false;
    let mut verbosity = 0u8;
    let next_num = |args: &mut dyn Iterator<Item = String>, what: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            error!("acutemon-cli: {what} needs a number");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => devices = next_num(args, "--devices"),
            "--workers" => workers = Some(next_num(args, "--workers") as usize),
            "--seed" => seed = next_num(args, "--seed"),
            "--k" => k = next_num(args, "--k") as u32,
            "--out" => {
                out = Some(
                    args.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| fleet_usage()),
                )
            }
            "--json" => json = true,
            "--quiet" | "-q" => quiet = true,
            "-v" | "--verbose" => verbosity += 1,
            _ => fleet_usage(),
        }
    }
    obs::log::init_from_flags(quiet, verbosity);
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    let spec = fleet::CampaignSpec::heterogeneous(seed, devices).with_probes(k);
    info!(
        "fleet: {} devices × {} probes on {workers} workers ...",
        spec.devices, spec.probes_per_device
    );
    let (report, stats) = fleet::run_campaign(&spec, workers);
    let doc = {
        use obs::ToJson;
        report.to_json().to_string_pretty()
    };
    if json {
        println!("{doc}");
    } else {
        println!("{}", report.render());
        info!(
            "throughput:  {:.1} devices/s, {:.1} probes/s ({:.2} s wall)",
            stats.devices_per_sec(),
            stats.probes_per_sec(),
            stats.wall.as_secs_f64()
        );
    }
    if let Some(p) = &out {
        if let Err(e) = std::fs::write(p, doc) {
            error!("acutemon-cli: write {}: {e}", p.display());
            std::process::exit(1);
        }
        info!("report:      {}", p.display());
    }
    std::process::exit(0);
}

fn parse() -> Cli {
    let mut args = std::env::args().skip(1);
    let Some(target) = args.next() else { usage() };
    if target == "--help" || target == "-h" {
        usage();
    }
    if target == "fleet" {
        run_fleet(&mut args);
    }
    let target: SocketAddr = target.parse().unwrap_or_else(|_| {
        error!("acutemon-cli: bad target address (need HOST:PORT)");
        std::process::exit(2);
    });
    let mut cfg = LiveConfig::new(target, 100);
    let mut json = false;
    let mut metrics_json = false;
    let mut metrics_text = false;
    let mut trace_out = None;
    let mut trace_spans = None;
    let mut quiet = false;
    let mut verbosity = 0u8;
    let next_num = |args: &mut dyn Iterator<Item = String>, what: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            error!("acutemon-cli: {what} needs a number");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--k" => cfg.k = next_num(&mut args, "--k") as u32,
            "--dpre" => cfg.dpre = Duration::from_millis(next_num(&mut args, "--dpre")),
            "--db" => cfg.db = Duration::from_millis(next_num(&mut args, "--db")),
            "--ttl" => cfg.warmup_ttl = next_num(&mut args, "--ttl") as u32,
            "--timeout" => {
                cfg.probe_timeout = Duration::from_millis(next_num(&mut args, "--timeout"))
            }
            "--probe" => match args.next().as_deref() {
                Some("tcp") => cfg.probe = LiveProbe::TcpConnect,
                Some("udp") => cfg.probe = LiveProbe::UdpEcho,
                _ => usage(),
            },
            "--no-background" => cfg.background_enabled = false,
            "--warmup-dst" => {
                cfg.warmup_dst = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => json = true,
            "--metrics-json" => metrics_json = true,
            "--metrics-text" => metrics_text = true,
            "--trace-out" => {
                trace_out = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--trace-spans" => {
                trace_spans = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--quiet" | "-q" => quiet = true,
            "-v" | "--verbose" => verbosity += 1,
            _ => usage(),
        }
    }
    obs::log::init_from_flags(quiet, verbosity);
    Cli {
        cfg,
        json,
        metrics_json,
        metrics_text,
        trace_out,
        trace_spans,
    }
}

fn main() {
    let cli = parse();
    let registry = if cli.metrics_json || cli.metrics_text {
        Registry::new()
    } else {
        Registry::disabled()
    };
    let tracer = if cli.trace_out.is_some() || cli.trace_spans.is_some() {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    let report = match run_traced(cli.cfg, &registry, &tracer) {
        Ok(r) => r,
        Err(e) => {
            error!("acutemon-cli: {e}");
            std::process::exit(1);
        }
    };
    if cli.json {
        // Hand-rolled JSON keeps the CLI dependency-free.
        let rtts: Vec<String> = report.rtts_ms().iter().map(|r| format!("{r:.4}")).collect();
        println!(
            "{{\"completion\":{:.4},\"warmup_sent\":{},\"background_sent\":{},\
             \"send_errors\":{},\"elapsed_ms\":{:.3},\"rtts_ms\":[{}]}}",
            report.completion(),
            report.bt.warmup_sent,
            report.bt.background_sent,
            report.bt.send_errors,
            report.elapsed.as_secs_f64() * 1e3,
            rtts.join(",")
        );
    } else {
        info!("probes:      {}", report.samples.len());
        info!("completion:  {:.0}%", report.completion() * 100.0);
        match report.summary() {
            Some(s) => info!(
                "RTT:         {} ms  (min {:.3}, max {:.3}, n {})",
                s.cell(),
                s.min,
                s.max,
                s.n
            ),
            None => info!("RTT:         no probe completed"),
        }
        info!(
            "background:  {} warm-up + {} keep-awake, {} send errors",
            report.bt.warmup_sent, report.bt.background_sent, report.bt.send_errors
        );
        info!("elapsed:     {:.1} ms", report.elapsed.as_secs_f64() * 1e3);
    }
    if cli.metrics_json {
        print!("{}", obs::export::json_lines(&registry.snapshot()));
    }
    if cli.metrics_text {
        print!("{}", obs::export::prometheus(&registry.snapshot()));
    }
    if cli.trace_out.is_some() || cli.trace_spans.is_some() {
        let spans = tracer.spans();
        if let Some(p) = &cli.trace_out {
            let doc = obs::export::chrome_trace(&spans).to_string_pretty();
            if let Err(e) = std::fs::write(p, doc) {
                error!("acutemon-cli: write {}: {e}", p.display());
                std::process::exit(1);
            }
            info!("trace:       {} ({} spans)", p.display(), spans.len());
        }
        if let Some(p) = &cli.trace_spans {
            if let Err(e) = std::fs::write(p, obs::export::span_json_lines(&spans)) {
                error!("acutemon-cli: write {}: {e}", p.display());
                std::process::exit(1);
            }
            info!("spans:       {} ({} records)", p.display(), spans.len());
        }
    }
}
