//! `acutemon-echo` — the measurement-server side of the live pair: a TCP
//! acceptor (for `--probe tcp` connect probing) and a UDP echo service
//! (for `--probe udp`) on one port number.
//!
//! ```text
//! acutemon-echo [PORT] [-v] [--quiet]      # default port 7777
//! ```
//!
//! Run this on the machine you want to measure towards, then point
//! `acutemon-cli HOST:PORT` at it.

use std::io::Read;
use std::net::{TcpListener, UdpSocket};
use std::thread;
use std::time::Duration;

use obs::{error, info, warn};

fn main() {
    let mut port: u16 = 7777;
    let mut quiet = false;
    let mut verbosity = 0u8;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quiet" | "-q" => quiet = true,
            "-v" | "--verbose" => verbosity += 1,
            p => {
                port = p.parse().unwrap_or_else(|_| {
                    error!("acutemon-echo: bad port {p}");
                    std::process::exit(2);
                })
            }
        }
    }
    obs::log::init_from_flags(quiet, verbosity);

    let tcp = TcpListener::bind(("0.0.0.0", port)).unwrap_or_else(|e| {
        error!("acutemon-echo: tcp bind :{port}: {e}");
        std::process::exit(1);
    });
    let udp = UdpSocket::bind(("0.0.0.0", port)).unwrap_or_else(|e| {
        error!("acutemon-echo: udp bind :{port}: {e}");
        std::process::exit(1);
    });
    info!("acutemon-echo: serving TCP accept + UDP echo on :{port}");

    // TCP: accept, drain whatever arrives briefly, close. The connect
    // completing is all the prober needs.
    thread::spawn(move || {
        for mut s in tcp.incoming().flatten() {
            let _ = s.set_read_timeout(Some(Duration::from_millis(50)));
            thread::spawn(move || {
                let mut buf = [0u8; 512];
                let _ = s.read(&mut buf);
                // Dropped: RST/FIN closes the probe connection.
            });
        }
    });

    // UDP: echo every datagram back to its sender.
    let mut buf = [0u8; 2048];
    loop {
        match udp.recv_from(&mut buf) {
            Ok((n, from)) => {
                let _ = udp.send_to(&buf[..n], from);
            }
            Err(e) => {
                warn!("acutemon-echo: udp recv: {e}");
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}
