//! Configuration for the real-socket AcuteMon.

use std::net::SocketAddr;
use std::time::Duration;

/// What the measurement thread sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveProbe {
    /// A fresh TCP connect per probe; RTT = SYN → accept (connect
    /// returning). The closest real-socket analogue of the paper's TCP
    /// control-message probing, available without raw sockets or root.
    TcpConnect,
    /// A UDP datagram to an echo service; RTT = send → matching reply.
    UdpEcho,
}

/// Configuration of a live measurement session.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The target to measure (TCP port for [`LiveProbe::TcpConnect`], UDP
    /// echo port for [`LiveProbe::UdpEcho`]).
    pub target: SocketAddr,
    /// Destination of warm-up/background datagrams. Any routable address
    /// works: with `warmup_ttl` = 1 they die at the first hop. A closed
    /// UDP port on the gateway is the classic choice.
    pub warmup_dst: SocketAddr,
    /// Probe kind.
    pub probe: LiveProbe,
    /// Number of probes `K`.
    pub k: u32,
    /// Warm-up lead time `dpre` (paper default 20 ms).
    pub dpre: Duration,
    /// Background inter-packet interval `db` (paper default 20 ms).
    pub db: Duration,
    /// TTL of warm-up/background datagrams (paper default 1).
    pub warmup_ttl: u32,
    /// Per-probe timeout.
    pub probe_timeout: Duration,
    /// Whether background traffic is sent at all (the Fig. 9 arm).
    pub background_enabled: bool,
    /// Bounded retries per probe after a retryable failure (0 = record
    /// the loss and move on, the paper's behaviour).
    pub max_retries: u32,
    /// Base retry backoff; attempt `i` waits `retry_backoff × 2^(i−1)`
    /// plus deterministic jitter before resending.
    pub retry_backoff: Duration,
    /// Send a fresh warm-up datagram before each retry and hold the
    /// resend at least `dpre`, so the retried probe rides a re-warmed
    /// radio path instead of paying the wake cost again.
    pub rewarm_on_retry: bool,
    /// After this many *consecutive* background send errors the BT
    /// reports itself degraded to the measurement loop (which then
    /// re-warms on its own before every probe).
    pub bt_error_threshold: u32,
}

impl LiveConfig {
    /// Paper defaults against `target`, with warm-ups aimed at the same
    /// address (they die at the first hop anyway).
    pub fn new(target: SocketAddr, k: u32) -> LiveConfig {
        LiveConfig {
            target,
            warmup_dst: SocketAddr::new(target.ip(), 33434),
            probe: LiveProbe::TcpConnect,
            k,
            dpre: Duration::from_millis(20),
            db: Duration::from_millis(20),
            warmup_ttl: 1,
            probe_timeout: Duration::from_secs(2),
            background_enabled: true,
            max_retries: 0,
            retry_backoff: Duration::from_millis(50),
            rewarm_on_retry: true,
            bt_error_threshold: 5,
        }
    }

    /// Builder: allow up to `n` retries per probe.
    pub fn with_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Builder: set the base retry backoff.
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Builder: retry without the fresh warm-up first.
    pub fn without_rewarm(mut self) -> Self {
        self.rewarm_on_retry = false;
        self
    }

    /// Builder: set the BT consecutive-error degradation threshold.
    pub fn with_bt_error_threshold(mut self, n: u32) -> Self {
        self.bt_error_threshold = n;
        self
    }

    /// Builder: switch the probe kind.
    pub fn with_probe(mut self, probe: LiveProbe) -> Self {
        self.probe = probe;
        self
    }

    /// Builder: set `dpre` and `db`.
    pub fn with_timing(mut self, dpre: Duration, db: Duration) -> Self {
        self.dpre = dpre;
        self.db = db;
        self
    }

    /// Builder: set the warm-up TTL.
    pub fn with_warmup_ttl(mut self, ttl: u32) -> Self {
        self.warmup_ttl = ttl;
        self
    }

    /// Builder: disable background traffic.
    pub fn without_background(mut self) -> Self {
        self.background_enabled = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let t: SocketAddr = "127.0.0.1:80".parse().unwrap();
        let c = LiveConfig::new(t, 100);
        assert_eq!(c.dpre, Duration::from_millis(20));
        assert_eq!(c.db, Duration::from_millis(20));
        assert_eq!(c.warmup_ttl, 1);
        assert_eq!(c.probe, LiveProbe::TcpConnect);
        assert!(c.background_enabled);
        assert_eq!(c.warmup_dst.port(), 33434);
        assert_eq!(c.max_retries, 0, "retries are opt-in");
        assert!(c.rewarm_on_retry);
        assert_eq!(c.bt_error_threshold, 5);
    }

    #[test]
    fn resilience_builders() {
        let t: SocketAddr = "127.0.0.1:7".parse().unwrap();
        let c = LiveConfig::new(t, 5)
            .with_retries(3)
            .with_retry_backoff(Duration::from_millis(25))
            .with_bt_error_threshold(2)
            .without_rewarm();
        assert_eq!(c.max_retries, 3);
        assert_eq!(c.retry_backoff, Duration::from_millis(25));
        assert_eq!(c.bt_error_threshold, 2);
        assert!(!c.rewarm_on_retry);
    }

    #[test]
    fn builders() {
        let t: SocketAddr = "127.0.0.1:7".parse().unwrap();
        let c = LiveConfig::new(t, 5)
            .with_probe(LiveProbe::UdpEcho)
            .with_timing(Duration::from_millis(10), Duration::from_millis(15))
            .with_warmup_ttl(64)
            .without_background();
        assert_eq!(c.probe, LiveProbe::UdpEcho);
        assert_eq!(c.db, Duration::from_millis(15));
        assert_eq!(c.warmup_ttl, 64);
        assert!(!c.background_enabled);
    }
}
