//! # acutemon-live — AcuteMon over real sockets
//!
//! The artifact a downstream user can actually run: the paper's warm-up +
//! background keep-awake measurement scheme (§4.1) implemented with
//! `std::net` sockets on Linux, no root required.
//!
//! * The **background thread** binds a UDP socket, sets its TTL (default
//!   1 — datagrams die at the first-hop gateway and never load the
//!   measured path), sends one warm-up datagram, sleeps `dpre`, then
//!   keeps sending every `db`.
//! * The **measurement loop** fires `K` sequential probes: fresh TCP
//!   connects (RTT = connect latency) or UDP echoes.
//!
//! On a phone-grade device this prevents the SDIO-bus and 802.11-PSM
//! demotions the paper demonstrates; on any device it also counters NIC
//! power-save (`iw dev wlan0 set power_save off` territory) without
//! needing privileges.
//!
//! ```no_run
//! use acutemon_live::{run, LiveConfig};
//!
//! let cfg = LiveConfig::new("93.184.216.34:80".parse().unwrap(), 100);
//! let report = run(cfg).unwrap();
//! println!("median RTT: {:?} ms", report.summary().map(|s| s.mean));
//! ```

#![warn(missing_docs)]

mod config;
mod session;

pub use config::{LiveConfig, LiveProbe};
pub use session::{run, run_traced, run_with_registry, LiveBtStats, LiveReport, LiveSample};
