//! The live measurement session: a background-traffic thread (BT) and a
//! measurement loop (MT), exactly the Fig. 6 choreography of the paper,
//! over real sockets.

use std::io;
use std::net::{TcpStream, UdpSocket};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use obs::{Registry, Tracer};

use crate::config::{LiveConfig, LiveProbe};

/// Telemetry handles for a live session (`live.*`). Defaults to
/// disabled no-op handles.
#[derive(Default)]
struct LiveMetrics {
    probes_sent: obs::Counter,
    probes_received: obs::Counter,
    warmup_sent: obs::Counter,
    background_sent: obs::Counter,
    rtt_ms: obs::Histogram,
}

impl LiveMetrics {
    fn from_registry(reg: &Registry) -> LiveMetrics {
        LiveMetrics {
            probes_sent: reg.counter("live.probes_sent"),
            probes_received: reg.counter("live.probes_received"),
            warmup_sent: reg.counter("live.warmup_sent"),
            background_sent: reg.counter("live.background_sent"),
            rtt_ms: reg.histogram_ms("live.rtt_ms"),
        }
    }
}

/// One probe's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveSample {
    /// Probe index.
    pub probe: u32,
    /// RTT in ms, if the probe completed in time.
    pub rtt_ms: Option<f64>,
}

/// Counters from the background thread.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LiveBtStats {
    /// Warm-up datagrams sent (normally 1).
    pub warmup_sent: u64,
    /// Background datagrams sent.
    pub background_sent: u64,
    /// Send errors (e.g. ICMP errors surfaced on the UDP socket) — these
    /// are expected with TTL=1 and are ignored, like the paper ignores
    /// the responses.
    pub send_errors: u64,
}

/// The result of a live run.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Per-probe samples, in probe order.
    pub samples: Vec<LiveSample>,
    /// Background accounting.
    pub bt: LiveBtStats,
    /// Wall-clock duration of the measurement phase.
    pub elapsed: Duration,
}

impl LiveReport {
    /// Completed RTTs in ms.
    pub fn rtts_ms(&self) -> Vec<f64> {
        self.samples.iter().filter_map(|s| s.rtt_ms).collect()
    }

    /// Completion fraction.
    pub fn completion(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.rtt_ms.is_some()).count() as f64
            / self.samples.len() as f64
    }

    /// Mean/CI summary of the completed RTTs.
    pub fn summary(&self) -> Option<am_stats::Summary> {
        am_stats::Summary::of(&self.rtts_ms())
    }
}

/// The background thread body: one warm-up datagram, then keep-awake
/// datagrams every `db` until `stop` fires.
fn bt_loop(
    cfg: LiveConfig,
    stats: Arc<Mutex<LiveBtStats>>,
    metrics: Arc<LiveMetrics>,
    stop: Receiver<()>,
) -> io::Result<()> {
    let socket = UdpSocket::bind("0.0.0.0:0")?;
    socket.set_ttl(cfg.warmup_ttl)?;
    // Warm-up packet.
    match socket.send_to(&[0u8; 8], cfg.warmup_dst) {
        Ok(_) => {
            stats.lock().unwrap().warmup_sent += 1;
            metrics.warmup_sent.inc();
        }
        Err(_) => stats.lock().unwrap().send_errors += 1,
    }
    if !cfg.background_enabled {
        // Warm-up only: wait for the stop signal so the session still
        // controls our lifetime.
        let _ = stop.recv();
        return Ok(());
    }
    loop {
        // `recv_timeout` doubles as the db pacing clock.
        match stop.recv_timeout(cfg.db) {
            Ok(()) => return Ok(()),
            Err(RecvTimeoutError::Timeout) => {
                match socket.send_to(&[0u8; 8], cfg.warmup_dst) {
                    Ok(_) => {
                        stats.lock().unwrap().background_sent += 1;
                        metrics.background_sent.inc();
                    }
                    // With TTL=1 the kernel may surface the gateway's ICMP
                    // Time Exceeded as an error on the next send; that is
                    // exactly the by-design behaviour — count and go on.
                    Err(_) => stats.lock().unwrap().send_errors += 1,
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

fn probe_once(cfg: &LiveConfig, probe: u32) -> Option<f64> {
    match cfg.probe {
        LiveProbe::TcpConnect => {
            let t0 = Instant::now();
            match TcpStream::connect_timeout(&cfg.target, cfg.probe_timeout) {
                Ok(stream) => {
                    let rtt = t0.elapsed();
                    drop(stream);
                    Some(rtt.as_secs_f64() * 1e3)
                }
                Err(_) => None,
            }
        }
        LiveProbe::UdpEcho => {
            let socket = UdpSocket::bind("0.0.0.0:0").ok()?;
            socket.set_read_timeout(Some(cfg.probe_timeout)).ok()?;
            let payload = probe.to_be_bytes();
            let t0 = Instant::now();
            socket.send_to(&payload, cfg.target).ok()?;
            let mut buf = [0u8; 64];
            loop {
                match socket.recv_from(&mut buf) {
                    Ok((n, from)) => {
                        if from == cfg.target && n >= 4 && buf[..4] == payload {
                            return Some(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        if t0.elapsed() >= cfg.probe_timeout {
                            return None;
                        }
                        // A stray datagram; keep waiting.
                    }
                    Err(_) => return None,
                }
            }
        }
    }
}

/// Wall-clock ns since the session epoch. Live spans use this as their
/// timebase so a trace starts at t=0 like the simulated ones.
fn since_ns(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// Emit the per-probe span pair for a live probe: a `probe` root and one
/// `tcp_connect` / `udp_echo` leaf covering the socket operation. Unlike
/// the simulated pipeline we cannot see inside the kernel from userland,
/// so the leaf is the whole du — the waterfall still shows which probes
/// stalled and by how much.
fn trace_probe(tracer: &Tracer, epoch: Instant, cfg: &LiveConfig, probe: u32) -> Option<f64> {
    if !tracer.is_enabled() {
        return probe_once(cfg, probe);
    }
    let trace = tracer.begin_trace();
    let start = since_ns(epoch);
    let root = tracer.start_span(trace, None, "probe", "live", start);
    tracer.attr(root, "probe", probe);
    tracer.attr(root, "tool", "acutemon-cli");
    let leaf_name = match cfg.probe {
        LiveProbe::TcpConnect => "tcp_connect",
        LiveProbe::UdpEcho => "udp_echo",
    };
    let io_start = since_ns(epoch);
    let rtt_ms = probe_once(cfg, probe);
    let io_end = since_ns(epoch);
    let leaf = tracer.span(trace, Some(root), leaf_name, "net", io_start, io_end);
    match rtt_ms {
        Some(ms) => tracer.attr(leaf, "rtt_ms", ms),
        None => tracer.attr(leaf, "lost", true),
    }
    tracer.end_span(root, since_ns(epoch));
    rtt_ms
}

/// Run a complete AcuteMon session over real sockets: start the BT, wait
/// `dpre`, fire `K` sequential probes, stop the BT.
pub fn run(cfg: LiveConfig) -> io::Result<LiveReport> {
    run_with_registry(cfg, &Registry::disabled())
}

/// Like [`run`], recording per-probe telemetry (`live.*`) into `reg`.
pub fn run_with_registry(cfg: LiveConfig, reg: &Registry) -> io::Result<LiveReport> {
    run_traced(cfg, reg, &Tracer::disabled())
}

/// Like [`run_with_registry`], additionally emitting per-probe spans into
/// `tracer` (wall-clock ns since the measurement phase began). Pass
/// [`Tracer::disabled`] for a zero-cost no-op.
pub fn run_traced(cfg: LiveConfig, reg: &Registry, tracer: &Tracer) -> io::Result<LiveReport> {
    let metrics = Arc::new(LiveMetrics::from_registry(reg));
    let stats = Arc::new(Mutex::new(LiveBtStats::default()));
    let (stop_tx, stop_rx): (SyncSender<()>, Receiver<()>) = sync_channel(1);
    let bt_cfg = cfg.clone();
    let bt_stats = Arc::clone(&stats);
    let bt_metrics = Arc::clone(&metrics);
    let bt = thread::Builder::new()
        .name("acutemon-bt".into())
        .spawn(move || bt_loop(bt_cfg, bt_stats, bt_metrics, stop_rx))?;

    thread::sleep(cfg.dpre);
    let t_start = Instant::now();
    let mut samples = Vec::with_capacity(cfg.k as usize);
    for probe in 0..cfg.k {
        metrics.probes_sent.inc();
        let rtt_ms = trace_probe(tracer, t_start, &cfg, probe);
        if let Some(ms) = rtt_ms {
            metrics.probes_received.inc();
            metrics.rtt_ms.observe(ms);
        }
        samples.push(LiveSample { probe, rtt_ms });
    }
    let elapsed = t_start.elapsed();

    let _ = stop_tx.send(());
    let _ = bt.join().expect("bt thread panicked");
    let bt_stats = *stats.lock().unwrap();
    Ok(LiveReport {
        samples,
        bt: bt_stats,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{SocketAddr, TcpListener};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// A loopback TCP acceptor that accepts and drops connections.
    fn tcp_server() -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        listener.set_nonblocking(true).expect("nonblocking");
        thread::spawn(move || {
            while !s2.load(Ordering::Relaxed) {
                // Drain the whole backlog before napping, or a burst of
                // connects overflows it and SYNs retransmit after 1 s.
                while let Ok((stream, _)) = listener.accept() {
                    drop(stream);
                }
                thread::sleep(Duration::from_micros(200));
            }
        });
        (addr, stop)
    }

    /// A loopback UDP echo server.
    fn udp_echo_server() -> (SocketAddr, Arc<AtomicBool>) {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let addr = socket.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        socket
            .set_read_timeout(Some(Duration::from_millis(5)))
            .expect("timeout");
        thread::spawn(move || {
            let mut buf = [0u8; 256];
            while !s2.load(Ordering::Relaxed) {
                if let Ok((n, from)) = socket.recv_from(&mut buf) {
                    let _ = socket.send_to(&buf[..n], from);
                }
            }
        });
        (addr, stop)
    }

    #[test]
    fn tcp_connect_probing_on_loopback() {
        let (addr, stop) = tcp_server();
        // Loopback probes are microseconds, so stretch the session with a
        // large K and a 1 ms db to observe background pacing at all.
        let cfg = LiveConfig::new(addr, 200)
            .with_timing(Duration::from_millis(2), Duration::from_millis(1))
            // Loopback has no gateway: use a TTL that still delivers so
            // the BT socket sees no errors.
            .with_warmup_ttl(8);
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        assert_eq!(report.samples.len(), 200);
        assert!(
            report.completion() > 0.9,
            "completion {}",
            report.completion()
        );
        // Sandboxed/proxied environments occasionally add a retransmit-
        // scale outlier to a loopback connect; judge the bulk, not the
        // worst case.
        let mut rtts = report.rtts_ms();
        rtts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let p90 = rtts[rtts.len() * 9 / 10];
        assert!(p90 < 200.0, "loopback p90 rtt {p90}");
        assert_eq!(report.bt.warmup_sent, 1);
        assert!(report.bt.background_sent > 0);
        assert!(report.summary().is_some());
    }

    #[test]
    fn udp_echo_probing_on_loopback() {
        let (addr, stop) = udp_echo_server();
        let cfg = LiveConfig::new(addr, 8)
            .with_probe(LiveProbe::UdpEcho)
            .with_timing(Duration::from_millis(2), Duration::from_millis(5))
            .with_warmup_ttl(8);
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        assert_eq!(report.samples.len(), 8);
        assert!(
            report.completion() > 0.8,
            "completion {}",
            report.completion()
        );
    }

    #[test]
    fn traced_run_emits_one_span_tree_per_probe() {
        let (addr, stop) = tcp_server();
        let cfg = LiveConfig::new(addr, 5)
            .with_timing(Duration::from_millis(2), Duration::from_millis(5))
            .with_warmup_ttl(8);
        let tracer = Tracer::new();
        let report = run_traced(cfg, &Registry::disabled(), &tracer).expect("run");
        stop.store(true, Ordering::Relaxed);
        let spans = tracer.spans();
        let traces = tracer.trace_ids();
        assert_eq!(traces.len(), 5, "one trace per probe");
        for (i, trace) in traces.iter().enumerate() {
            let root = obs::build_trace_tree(&spans, *trace).expect("tree");
            assert_eq!(root.span.name, "probe");
            assert_eq!(
                root.span.attr("probe"),
                Some(&obs::AttrValue::Int(i as i64))
            );
            assert_eq!(root.children.len(), 1);
            let leaf = &root.children[0];
            assert_eq!(leaf.span.name, "tcp_connect");
            // The leaf IO interval nests inside the root probe span.
            assert!(leaf.span.start_ns >= root.span.start_ns);
            assert!(leaf.span.end_ns.unwrap() <= root.span.end_ns.unwrap());
            // A completed probe carries its RTT as a span attribute.
            if report.samples[i].rtt_ms.is_some() {
                assert!(leaf.span.attr("rtt_ms").is_some());
            }
        }
    }

    #[test]
    fn without_background_sends_only_warmup() {
        let (addr, stop) = tcp_server();
        let cfg = LiveConfig::new(addr, 3)
            .with_timing(Duration::from_millis(2), Duration::from_millis(5))
            .with_warmup_ttl(8)
            .without_background();
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        assert_eq!(report.bt.warmup_sent, 1);
        assert_eq!(report.bt.background_sent, 0);
        assert_eq!(report.samples.len(), 3);
    }

    #[test]
    fn refused_target_reports_losses_not_hangs() {
        // Bind a port, then free it: connects to it are refused, and the
        // probe must come back as lost quickly (no hang, no panic).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let cfg = LiveConfig {
            probe_timeout: Duration::from_millis(50),
            ..LiveConfig::new(addr, 3)
        }
        .with_timing(Duration::from_millis(1), Duration::from_millis(5))
        .with_warmup_ttl(8);
        let t0 = Instant::now();
        let report = run(cfg).expect("run");
        assert_eq!(report.completion(), 0.0);
        assert!(t0.elapsed() < Duration::from_secs(3));
    }

    #[test]
    fn background_pacing_roughly_matches_db() {
        let (addr, stop) = tcp_server();
        let cfg = LiveConfig::new(addr, 1)
            .with_timing(Duration::from_millis(2), Duration::from_millis(10))
            .with_warmup_ttl(8);
        // One fast probe: the session lives ~dpre + probe time. To get a
        // stable count, use a UDP-echo target that responds slowly? —
        // instead run with more probes to stretch the session.
        let cfg = LiveConfig { k: 20, ..cfg };
        let t0 = Instant::now();
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        let expected = elapsed_ms / 10.0;
        assert!(
            (report.bt.background_sent as f64) < expected * 2.0 + 6.0,
            "bg={} expected~{expected}",
            report.bt.background_sent
        );
    }
}
