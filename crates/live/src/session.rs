//! The live measurement session: a background-traffic thread (BT) and a
//! measurement loop (MT), exactly the Fig. 6 choreography of the paper,
//! over real sockets.

use std::io;
use std::net::{TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use measure::ProbeError;
use obs::{Registry, Tracer};

use crate::config::{LiveConfig, LiveProbe};

/// Lock a mutex, recovering from poisoning: a panicked BT must not take
/// the measurement report down with it — counters are plain integers and
/// stay consistent under any interleaving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Telemetry handles for a live session (`live.*`). Defaults to
/// disabled no-op handles.
#[derive(Default)]
struct LiveMetrics {
    probes_sent: obs::Counter,
    probes_received: obs::Counter,
    probe_errors: obs::Counter,
    retries: obs::Counter,
    rewarms: obs::Counter,
    warmup_sent: obs::Counter,
    background_sent: obs::Counter,
    bt_rewarms: obs::Counter,
    bt_degraded: obs::Counter,
    rtt_ms: obs::Histogram,
}

impl LiveMetrics {
    fn from_registry(reg: &Registry) -> LiveMetrics {
        LiveMetrics {
            probes_sent: reg.counter("live.probes_sent"),
            probes_received: reg.counter("live.probes_received"),
            probe_errors: reg.counter("live.probe_errors"),
            retries: reg.counter("live.retries"),
            rewarms: reg.counter("live.rewarms"),
            warmup_sent: reg.counter("live.warmup_sent"),
            background_sent: reg.counter("live.background_sent"),
            bt_rewarms: reg.counter("live.bt_rewarms"),
            bt_degraded: reg.counter("live.bt_degraded"),
            rtt_ms: reg.histogram_ms("live.rtt_ms"),
        }
    }
}

/// One probe's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveSample {
    /// Probe index.
    pub probe: u32,
    /// RTT in ms, if the probe completed in time.
    pub rtt_ms: Option<f64>,
    /// Send attempts spent on this probe (1 = first try succeeded).
    pub attempts: u32,
    /// Why the probe ultimately failed, if it did.
    pub error: Option<ProbeError>,
}

/// Counters from the background thread.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LiveBtStats {
    /// Warm-up datagrams sent (normally 1).
    pub warmup_sent: u64,
    /// Background datagrams sent.
    pub background_sent: u64,
    /// Send errors (e.g. ICMP errors surfaced on the UDP socket) — these
    /// are expected with TTL=1 and are ignored, like the paper ignores
    /// the responses.
    pub send_errors: u64,
    /// Keep-awake ticks the BT noticed it had missed (descheduled thread
    /// or an error streak left the radio uncovered for > 3×`db`).
    pub missed_ticks: u64,
    /// Fresh warm-ups sent to recover from a missed-tick gap.
    pub rewarms_sent: u64,
    /// Whether the BT was degraded (≥ `bt_error_threshold` consecutive
    /// send errors) when the run ended.
    pub degraded: bool,
}

/// The result of a live run.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Per-probe samples, in probe order.
    pub samples: Vec<LiveSample>,
    /// Background accounting.
    pub bt: LiveBtStats,
    /// Wall-clock duration of the measurement phase.
    pub elapsed: Duration,
}

impl LiveReport {
    /// Completed RTTs in ms.
    pub fn rtts_ms(&self) -> Vec<f64> {
        self.samples.iter().filter_map(|s| s.rtt_ms).collect()
    }

    /// Completion fraction.
    pub fn completion(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.rtt_ms.is_some()).count() as f64
            / self.samples.len() as f64
    }

    /// Mean/CI summary of the completed RTTs.
    pub fn summary(&self) -> Option<am_stats::Summary> {
        am_stats::Summary::of(&self.rtts_ms())
    }

    /// The RTTs as a right-censored sample: lost probes stay in the
    /// denominator instead of silently vanishing from the quantiles.
    pub fn censored(&self) -> am_stats::CensoredSample {
        am_stats::CensoredSample::from_outcomes(self.samples.iter().map(|s| s.rtt_ms))
    }

    /// Total retry attempts beyond the first try, across all probes.
    pub fn total_retries(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| u64::from(s.attempts.saturating_sub(1)))
            .sum()
    }
}

/// The background thread body: one warm-up datagram, then keep-awake
/// datagrams every `db` until `stop` fires.
///
/// Self-healing: if the cadence slips by more than 3×`db` (the thread was
/// descheduled, or sends kept erroring), the radio may have dozed — the
/// next successful send is a fresh warm-up rather than a plain keep-awake
/// tick, and it is counted as such. After `bt_error_threshold`
/// consecutive send errors the shared `degraded` flag is raised so the
/// measurement loop knows the keep-awake cover is gone; the first
/// successful send clears it again.
fn bt_loop(
    cfg: LiveConfig,
    stats: Arc<Mutex<LiveBtStats>>,
    metrics: Arc<LiveMetrics>,
    degraded: Arc<AtomicBool>,
    stop: Receiver<()>,
) -> io::Result<()> {
    let socket = UdpSocket::bind("0.0.0.0:0")?;
    socket.set_ttl(cfg.warmup_ttl)?;
    let mut consecutive_errors: u32 = 0;
    // Warm-up packet.
    match socket.send_to(&[0u8; 8], cfg.warmup_dst) {
        Ok(_) => {
            lock(&stats).warmup_sent += 1;
            metrics.warmup_sent.inc();
        }
        Err(_) => {
            lock(&stats).send_errors += 1;
            consecutive_errors += 1;
        }
    }
    if !cfg.background_enabled {
        // Warm-up only: wait for the stop signal so the session still
        // controls our lifetime.
        let _ = stop.recv();
        return Ok(());
    }
    let mut last_sent = Instant::now();
    loop {
        // `recv_timeout` doubles as the db pacing clock.
        match stop.recv_timeout(cfg.db) {
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return Ok(()),
            Err(RecvTimeoutError::Timeout) => {}
        }
        let missed = last_sent.elapsed() > cfg.db * 3;
        if missed {
            lock(&stats).missed_ticks += 1;
        }
        match socket.send_to(&[0u8; 8], cfg.warmup_dst) {
            Ok(_) => {
                {
                    let mut s = lock(&stats);
                    if missed {
                        // The gap exceeded the keep-awake guarantee: this
                        // send is a re-warm, not a routine tick.
                        s.rewarms_sent += 1;
                        metrics.bt_rewarms.inc();
                    } else {
                        s.background_sent += 1;
                        metrics.background_sent.inc();
                    }
                }
                last_sent = Instant::now();
                consecutive_errors = 0;
                degraded.store(false, Ordering::Relaxed);
            }
            // With TTL=1 the kernel may surface the gateway's ICMP
            // Time Exceeded as an error on the next send; that is
            // exactly the by-design behaviour — count and go on.
            Err(_) => {
                lock(&stats).send_errors += 1;
                consecutive_errors += 1;
                if consecutive_errors >= cfg.bt_error_threshold
                    && !degraded.swap(true, Ordering::Relaxed)
                {
                    metrics.bt_degraded.inc();
                }
            }
        }
    }
}

fn probe_once(cfg: &LiveConfig, probe: u32) -> Result<f64, ProbeError> {
    match cfg.probe {
        LiveProbe::TcpConnect => {
            let t0 = Instant::now();
            match TcpStream::connect_timeout(&cfg.target, cfg.probe_timeout) {
                Ok(stream) => {
                    let rtt = t0.elapsed();
                    drop(stream);
                    Ok(rtt.as_secs_f64() * 1e3)
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => Err(ProbeError::Timeout),
                Err(e) => Err(ProbeError::Connect(e.kind())),
            }
        }
        LiveProbe::UdpEcho => {
            let socket = UdpSocket::bind("0.0.0.0:0").map_err(|e| ProbeError::Bind(e.kind()))?;
            socket
                .set_read_timeout(Some(cfg.probe_timeout))
                .map_err(|e| ProbeError::Bind(e.kind()))?;
            let payload = probe.to_be_bytes();
            let t0 = Instant::now();
            socket
                .send_to(&payload, cfg.target)
                .map_err(|e| ProbeError::Send(e.kind()))?;
            let mut buf = [0u8; 64];
            loop {
                match socket.recv_from(&mut buf) {
                    Ok((n, from)) => {
                        if from == cfg.target && n >= 4 && buf[..4] == payload {
                            return Ok(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        if t0.elapsed() >= cfg.probe_timeout {
                            return Err(ProbeError::Timeout);
                        }
                        // A stray datagram; keep waiting.
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        return Err(ProbeError::Timeout)
                    }
                    Err(e) => return Err(ProbeError::Recv(e.kind())),
                }
            }
        }
    }
}

/// Wall-clock ns since the session epoch. Live spans use this as their
/// timebase so a trace starts at t=0 like the simulated ones.
fn since_ns(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// Deterministic retry jitter in [0, 0.5): a hash of (probe, attempt) so
/// replays of the same run shape are identical without an RNG dependency.
fn retry_jitter(probe: u32, attempt: u32) -> f64 {
    let h = u64::from(probe)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt).wrapping_mul(0x2545_F491_4F6C_DD1D));
    (h % 512) as f64 / 1024.0
}

/// One probe end-to-end: fire it, and on a retryable failure back off
/// (exponentially, with deterministic jitter), re-warm the path, and try
/// again up to `max_retries` times.
///
/// The whole recovery is one span tree: a `probe` root with one
/// `tcp_connect`/`udp_echo` leaf per attempt, plus `rewarm`/`retry`
/// spans (category `fault`) covering each backoff window. Unlike the
/// simulated pipeline we cannot see inside the kernel from userland, so
/// each leaf is that attempt's whole du — the waterfall still shows
/// which probes stalled, by how much, and what it cost to recover them.
fn run_probe(
    cfg: &LiveConfig,
    tracer: &Tracer,
    epoch: Instant,
    probe: u32,
    metrics: &LiveMetrics,
    rewarm: Option<&UdpSocket>,
    bt_degraded: &AtomicBool,
) -> LiveSample {
    let tctx = tracer.is_enabled().then(|| {
        let trace = tracer.begin_trace();
        let root = tracer.start_span(trace, None, "probe", "live", since_ns(epoch));
        tracer.attr(root, "probe", probe);
        tracer.attr(root, "tool", "acutemon-cli");
        (trace, root)
    });
    let leaf_name = match cfg.probe {
        LiveProbe::TcpConnect => "tcp_connect",
        LiveProbe::UdpEcho => "udp_echo",
    };
    // The BT lost its keep-awake cover: lead with our own warm-up so this
    // probe doesn't pay the wake cost the BT was supposed to absorb.
    if bt_degraded.load(Ordering::Relaxed) {
        if let Some(sock) = rewarm {
            if sock.send_to(&[0u8; 8], cfg.warmup_dst).is_ok() {
                metrics.rewarms.inc();
            }
        }
    }
    let mut attempts: u32 = 0;
    let sample = loop {
        attempts += 1;
        metrics.probes_sent.inc();
        let io_start = since_ns(epoch);
        let res = probe_once(cfg, probe);
        let io_end = since_ns(epoch);
        if let Some((trace, root)) = tctx {
            let leaf = tracer.span(trace, Some(root), leaf_name, "net", io_start, io_end);
            tracer.attr(leaf, "attempt", attempts);
            match &res {
                Ok(ms) => tracer.attr(leaf, "rtt_ms", *ms),
                Err(e) => {
                    tracer.attr(leaf, "lost", true);
                    tracer.attr(leaf, "error", e.label());
                }
            }
        }
        match res {
            Ok(ms) => {
                metrics.probes_received.inc();
                metrics.rtt_ms.observe(ms);
                break LiveSample {
                    probe,
                    rtt_ms: Some(ms),
                    attempts,
                    error: None,
                };
            }
            Err(e) => {
                metrics.probe_errors.inc();
                if attempts > cfg.max_retries || !e.is_retryable() {
                    break LiveSample {
                        probe,
                        rtt_ms: None,
                        attempts,
                        error: Some(if attempts > 1 {
                            ProbeError::Exhausted { attempts }
                        } else {
                            e
                        }),
                    };
                }
                metrics.retries.inc();
                let shift = (attempts - 1).min(10);
                let mut delay = cfg.retry_backoff * (1u32 << shift);
                delay += delay.mul_f64(retry_jitter(probe, attempts));
                let retry_start = since_ns(epoch);
                if cfg.rewarm_on_retry {
                    if let Some(sock) = rewarm {
                        if sock.send_to(&[0u8; 8], cfg.warmup_dst).is_ok() {
                            metrics.rewarms.inc();
                            if let Some((trace, root)) = tctx {
                                let rw = tracer.span(
                                    trace,
                                    Some(root),
                                    "rewarm",
                                    "fault",
                                    retry_start,
                                    retry_start + cfg.dpre.as_nanos() as u64,
                                );
                                tracer.attr(rw, "probe", probe);
                            }
                        }
                    }
                    // The fresh warm-up needs `dpre` to take effect
                    // before the resend, like the initial choreography.
                    delay = delay.max(cfg.dpre);
                }
                thread::sleep(delay);
                if let Some((trace, root)) = tctx {
                    let sp = tracer.span(
                        trace,
                        Some(root),
                        "retry",
                        "fault",
                        retry_start,
                        since_ns(epoch),
                    );
                    tracer.attr(sp, "attempt", attempts + 1);
                }
            }
        }
    };
    if let Some((_, root)) = tctx {
        tracer.end_span(root, since_ns(epoch));
    }
    sample
}

/// Run a complete AcuteMon session over real sockets: start the BT, wait
/// `dpre`, fire `K` sequential probes, stop the BT.
pub fn run(cfg: LiveConfig) -> io::Result<LiveReport> {
    run_with_registry(cfg, &Registry::disabled())
}

/// Like [`run`], recording per-probe telemetry (`live.*`) into `reg`.
pub fn run_with_registry(cfg: LiveConfig, reg: &Registry) -> io::Result<LiveReport> {
    run_traced(cfg, reg, &Tracer::disabled())
}

/// Like [`run_with_registry`], additionally emitting per-probe spans into
/// `tracer` (wall-clock ns since the measurement phase began). Pass
/// [`Tracer::disabled`] for a zero-cost no-op.
pub fn run_traced(cfg: LiveConfig, reg: &Registry, tracer: &Tracer) -> io::Result<LiveReport> {
    let metrics = Arc::new(LiveMetrics::from_registry(reg));
    let stats = Arc::new(Mutex::new(LiveBtStats::default()));
    let degraded = Arc::new(AtomicBool::new(false));
    let (stop_tx, stop_rx): (SyncSender<()>, Receiver<()>) = sync_channel(1);
    let bt_cfg = cfg.clone();
    let bt_stats = Arc::clone(&stats);
    let bt_metrics = Arc::clone(&metrics);
    let bt_degraded = Arc::clone(&degraded);
    let bt = thread::Builder::new()
        .name("acutemon-bt".into())
        .spawn(move || bt_loop(bt_cfg, bt_stats, bt_metrics, bt_degraded, stop_rx))?;

    // The MT's own warm-up socket, for re-warming ahead of retries (and
    // for covering probes while the BT is degraded). Best-effort: if it
    // can't be set up, retries simply go out un-warmed.
    let rewarm_socket = UdpSocket::bind("0.0.0.0:0")
        .and_then(|s| s.set_ttl(cfg.warmup_ttl).map(|()| s))
        .ok();

    thread::sleep(cfg.dpre);
    let t_start = Instant::now();
    let mut samples = Vec::with_capacity(cfg.k as usize);
    for probe in 0..cfg.k {
        samples.push(run_probe(
            &cfg,
            tracer,
            t_start,
            probe,
            &metrics,
            rewarm_socket.as_ref(),
            &degraded,
        ));
    }
    let elapsed = t_start.elapsed();

    let _ = stop_tx.send(());
    bt.join()
        .map_err(|_| io::Error::other("background thread panicked"))??;
    let mut bt_stats = *lock(&stats);
    bt_stats.degraded = degraded.load(Ordering::Relaxed);
    Ok(LiveReport {
        samples,
        bt: bt_stats,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{SocketAddr, TcpListener};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// A loopback TCP acceptor that accepts and drops connections.
    fn tcp_server() -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        listener.set_nonblocking(true).expect("nonblocking");
        thread::spawn(move || {
            while !s2.load(Ordering::Relaxed) {
                // Drain the whole backlog before napping, or a burst of
                // connects overflows it and SYNs retransmit after 1 s.
                while let Ok((stream, _)) = listener.accept() {
                    drop(stream);
                }
                thread::sleep(Duration::from_micros(200));
            }
        });
        (addr, stop)
    }

    /// A loopback UDP echo server.
    fn udp_echo_server() -> (SocketAddr, Arc<AtomicBool>) {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let addr = socket.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        socket
            .set_read_timeout(Some(Duration::from_millis(5)))
            .expect("timeout");
        thread::spawn(move || {
            let mut buf = [0u8; 256];
            while !s2.load(Ordering::Relaxed) {
                if let Ok((n, from)) = socket.recv_from(&mut buf) {
                    let _ = socket.send_to(&buf[..n], from);
                }
            }
        });
        (addr, stop)
    }

    #[test]
    fn tcp_connect_probing_on_loopback() {
        let (addr, stop) = tcp_server();
        // Loopback probes are microseconds, so stretch the session with a
        // large K and a 1 ms db to observe background pacing at all.
        let cfg = LiveConfig::new(addr, 200)
            .with_timing(Duration::from_millis(2), Duration::from_millis(1))
            // Loopback has no gateway: use a TTL that still delivers so
            // the BT socket sees no errors.
            .with_warmup_ttl(8);
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        assert_eq!(report.samples.len(), 200);
        assert!(
            report.completion() > 0.9,
            "completion {}",
            report.completion()
        );
        // Sandboxed/proxied environments occasionally add a retransmit-
        // scale outlier to a loopback connect; judge the bulk, not the
        // worst case.
        let mut rtts = report.rtts_ms();
        rtts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let p90 = rtts[rtts.len() * 9 / 10];
        assert!(p90 < 200.0, "loopback p90 rtt {p90}");
        assert_eq!(report.bt.warmup_sent, 1);
        assert!(report.bt.background_sent > 0);
        assert!(report.summary().is_some());
    }

    #[test]
    fn udp_echo_probing_on_loopback() {
        let (addr, stop) = udp_echo_server();
        let cfg = LiveConfig::new(addr, 8)
            .with_probe(LiveProbe::UdpEcho)
            .with_timing(Duration::from_millis(2), Duration::from_millis(5))
            .with_warmup_ttl(8);
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        assert_eq!(report.samples.len(), 8);
        assert!(
            report.completion() > 0.8,
            "completion {}",
            report.completion()
        );
    }

    #[test]
    fn traced_run_emits_one_span_tree_per_probe() {
        let (addr, stop) = tcp_server();
        let cfg = LiveConfig::new(addr, 5)
            .with_timing(Duration::from_millis(2), Duration::from_millis(5))
            .with_warmup_ttl(8);
        let tracer = Tracer::new();
        let report = run_traced(cfg, &Registry::disabled(), &tracer).expect("run");
        stop.store(true, Ordering::Relaxed);
        let spans = tracer.spans();
        let traces = tracer.trace_ids();
        assert_eq!(traces.len(), 5, "one trace per probe");
        for (i, trace) in traces.iter().enumerate() {
            let root = obs::build_trace_tree(&spans, *trace).expect("tree");
            assert_eq!(root.span.name, "probe");
            assert_eq!(
                root.span.attr("probe"),
                Some(&obs::AttrValue::Int(i as i64))
            );
            assert_eq!(root.children.len(), 1);
            let leaf = &root.children[0];
            assert_eq!(leaf.span.name, "tcp_connect");
            // The leaf IO interval nests inside the root probe span.
            assert!(leaf.span.start_ns >= root.span.start_ns);
            assert!(leaf.span.end_ns.unwrap() <= root.span.end_ns.unwrap());
            // A completed probe carries its RTT as a span attribute.
            if report.samples[i].rtt_ms.is_some() {
                assert!(leaf.span.attr("rtt_ms").is_some());
            }
        }
    }

    #[test]
    fn without_background_sends_only_warmup() {
        let (addr, stop) = tcp_server();
        let cfg = LiveConfig::new(addr, 3)
            .with_timing(Duration::from_millis(2), Duration::from_millis(5))
            .with_warmup_ttl(8)
            .without_background();
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        assert_eq!(report.bt.warmup_sent, 1);
        assert_eq!(report.bt.background_sent, 0);
        assert_eq!(report.samples.len(), 3);
    }

    /// A UDP echo server that drops every other datagram (the first,
    /// third, … are eaten): each probe's first attempt times out and its
    /// retry is answered.
    fn flaky_udp_echo_server() -> (SocketAddr, Arc<AtomicBool>) {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let addr = socket.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        socket
            .set_read_timeout(Some(Duration::from_millis(5)))
            .expect("timeout");
        thread::spawn(move || {
            let mut buf = [0u8; 256];
            let mut n_seen = 0u64;
            while !s2.load(Ordering::Relaxed) {
                if let Ok((n, from)) = socket.recv_from(&mut buf) {
                    if n_seen % 2 == 1 {
                        let _ = socket.send_to(&buf[..n], from);
                    }
                    n_seen += 1;
                }
            }
        });
        (addr, stop)
    }

    /// A loopback UDP echo server that answers after `delay` — pins the
    /// per-probe RTT so tests can stretch a session deterministically.
    fn slow_udp_echo_server(delay: Duration) -> (SocketAddr, Arc<AtomicBool>) {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let addr = socket.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        socket
            .set_read_timeout(Some(Duration::from_millis(5)))
            .expect("timeout");
        thread::spawn(move || {
            let mut buf = [0u8; 256];
            while !s2.load(Ordering::Relaxed) {
                if let Ok((n, from)) = socket.recv_from(&mut buf) {
                    thread::sleep(delay);
                    let _ = socket.send_to(&buf[..n], from);
                }
            }
        });
        (addr, stop)
    }

    #[test]
    fn retries_recover_probes_through_a_flaky_path() {
        let (addr, stop) = flaky_udp_echo_server();
        let cfg = LiveConfig {
            probe_timeout: Duration::from_millis(60),
            ..LiveConfig::new(addr, 4)
        }
        .with_probe(LiveProbe::UdpEcho)
        .with_timing(Duration::from_millis(2), Duration::from_millis(5))
        .with_warmup_ttl(8)
        .with_retries(2)
        .with_retry_backoff(Duration::from_millis(5));
        let tracer = Tracer::new();
        let report = run_traced(cfg, &Registry::disabled(), &tracer).expect("run");
        stop.store(true, Ordering::Relaxed);
        assert_eq!(report.samples.len(), 4);
        assert!(
            (report.completion() - 1.0).abs() < 1e-12,
            "completion {} (attempts {:?})",
            report.completion(),
            report
                .samples
                .iter()
                .map(|s| s.attempts)
                .collect::<Vec<_>>()
        );
        // Every probe needed exactly its one retry, and no error stuck.
        assert!(report.samples.iter().all(|s| s.attempts == 2));
        assert!(report.samples.iter().all(|s| s.error.is_none()));
        assert_eq!(report.total_retries(), 4);
        // The recovery is visible: retry + rewarm spans, and two attempt
        // leaves under each probe root.
        let spans = tracer.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "retry").count(), 4);
        assert_eq!(spans.iter().filter(|s| s.name == "rewarm").count(), 4);
        assert_eq!(spans.iter().filter(|s| s.name == "udp_echo").count(), 8);
        // Censored view: nothing censored, quantiles come from all 4.
        let cs = report.censored();
        assert_eq!(cs.censored(), 0);
        assert!(cs.median().is_some());
    }

    #[test]
    fn exhausted_retry_budget_reports_probe_error() {
        // Bind a port, then free it: connects are refused every time, so
        // the budget runs out and the sample carries Exhausted.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let cfg = LiveConfig {
            probe_timeout: Duration::from_millis(50),
            ..LiveConfig::new(addr, 2)
        }
        .with_timing(Duration::from_millis(1), Duration::from_millis(5))
        .with_warmup_ttl(8)
        .with_retries(1)
        .with_retry_backoff(Duration::from_millis(2));
        let report = run(cfg).expect("run");
        assert_eq!(report.completion(), 0.0);
        for s in &report.samples {
            assert_eq!(s.attempts, 2);
            assert_eq!(
                s.error,
                Some(measure::ProbeError::Exhausted { attempts: 2 })
            );
        }
        // All four du values are censored: no quantile is identifiable.
        let cs = report.censored();
        assert_eq!(cs.censored(), 2);
        assert_eq!(cs.quantile(0.1), None);
    }

    #[test]
    fn bt_reports_degraded_after_consecutive_send_errors() {
        // 255.255.255.255 without SO_BROADCAST: every send fails with
        // EACCES, deterministically. The BT must notice the streak, flag
        // itself degraded, and the run must still finish cleanly. A slow
        // echo target stretches the session so the BT gets enough ticks
        // regardless of scheduler load.
        let (addr, stop) = slow_udp_echo_server(Duration::from_millis(20));
        let cfg = LiveConfig {
            warmup_dst: "255.255.255.255:9".parse().expect("addr"),
            probe_timeout: Duration::from_millis(500),
            ..LiveConfig::new(addr, 5)
        }
        .with_probe(LiveProbe::UdpEcho)
        .with_timing(Duration::from_millis(2), Duration::from_millis(1))
        .with_bt_error_threshold(3);
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        assert!(
            report.bt.send_errors >= 3,
            "errors {}",
            report.bt.send_errors
        );
        assert!(report.bt.degraded);
        assert_eq!(report.bt.background_sent, 0);
        // Probing itself is unaffected by the broken keep-awake path.
        assert!(report.completion() > 0.9);
    }

    #[test]
    fn refused_target_reports_losses_not_hangs() {
        // Bind a port, then free it: connects to it are refused, and the
        // probe must come back as lost quickly (no hang, no panic).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let cfg = LiveConfig {
            probe_timeout: Duration::from_millis(50),
            ..LiveConfig::new(addr, 3)
        }
        .with_timing(Duration::from_millis(1), Duration::from_millis(5))
        .with_warmup_ttl(8);
        let t0 = Instant::now();
        let report = run(cfg).expect("run");
        assert_eq!(report.completion(), 0.0);
        assert!(t0.elapsed() < Duration::from_secs(3));
    }

    #[test]
    fn background_pacing_roughly_matches_db() {
        let (addr, stop) = tcp_server();
        let cfg = LiveConfig::new(addr, 1)
            .with_timing(Duration::from_millis(2), Duration::from_millis(10))
            .with_warmup_ttl(8);
        // One fast probe: the session lives ~dpre + probe time. To get a
        // stable count, use a UDP-echo target that responds slowly? —
        // instead run with more probes to stretch the session.
        let cfg = LiveConfig { k: 20, ..cfg };
        let t0 = Instant::now();
        let report = run(cfg).expect("run");
        stop.store(true, Ordering::Relaxed);
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        let expected = elapsed_ms / 10.0;
        assert!(
            (report.bt.background_sent as f64) < expected * 2.0 + 6.0,
            "bg={} expected~{expected}",
            report.bt.background_sent
        );
    }
}
