//! The typed error a probe can fail with, shared by the simulated
//! measurement apps (`acutemon`) and the live session (`am-live`).
//!
//! The variants are `Copy` (socket errors carry an [`io::ErrorKind`],
//! not the full `io::Error`) so [`RttRecord`](crate::RttRecord) and the
//! live sample types stay `Copy + PartialEq` and records can be compared
//! in tests and serialized cheaply.

use std::fmt;
use std::io;

/// Why one probe (or one attempt of a probe) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeError {
    /// No response within the per-probe deadline.
    Timeout,
    /// Creating/binding the local socket failed.
    Bind(io::ErrorKind),
    /// The TCP connect failed outright (refused, unreachable, …).
    Connect(io::ErrorKind),
    /// Sending the probe failed.
    Send(io::ErrorKind),
    /// Receiving the response failed (not a timeout).
    Recv(io::ErrorKind),
    /// The background (keep-awake) thread declared itself degraded, so
    /// the probe's precondition — a warm radio path — no longer holds.
    Degraded,
    /// All retry attempts were spent without a response.
    Exhausted {
        /// Total attempts made (initial try + retries).
        attempts: u32,
    },
}

impl ProbeError {
    /// Whether retrying the probe could plausibly succeed. Socket *setup*
    /// failures (bind) and a degraded background thread are not helped by
    /// resending; timeouts and transient send/recv/connect errors are.
    pub fn is_retryable(&self) -> bool {
        match self {
            ProbeError::Timeout
            | ProbeError::Connect(_)
            | ProbeError::Send(_)
            | ProbeError::Recv(_) => true,
            ProbeError::Bind(_) | ProbeError::Degraded | ProbeError::Exhausted { .. } => false,
        }
    }

    /// Short stable label for metrics/trace attributes.
    pub fn label(&self) -> &'static str {
        match self {
            ProbeError::Timeout => "timeout",
            ProbeError::Bind(_) => "bind",
            ProbeError::Connect(_) => "connect",
            ProbeError::Send(_) => "send",
            ProbeError::Recv(_) => "recv",
            ProbeError::Degraded => "degraded",
            ProbeError::Exhausted { .. } => "exhausted",
        }
    }
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::Timeout => write!(f, "probe timed out"),
            ProbeError::Bind(k) => write!(f, "socket bind failed: {k}"),
            ProbeError::Connect(k) => write!(f, "connect failed: {k}"),
            ProbeError::Send(k) => write!(f, "send failed: {k}"),
            ProbeError::Recv(k) => write!(f, "recv failed: {k}"),
            ProbeError::Degraded => write!(f, "background thread degraded"),
            ProbeError::Exhausted { attempts } => {
                write!(f, "probe failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ProbeError {}

impl From<io::Error> for ProbeError {
    /// A bare `io::Error` from a send/recv path maps by its kind:
    /// timeouts become [`ProbeError::Timeout`], everything else
    /// [`ProbeError::Recv`] (callers with more context construct the
    /// specific variant directly).
    fn from(e: io::Error) -> ProbeError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ProbeError::Timeout,
            k => ProbeError::Recv(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability() {
        assert!(ProbeError::Timeout.is_retryable());
        assert!(ProbeError::Send(io::ErrorKind::ConnectionReset).is_retryable());
        assert!(!ProbeError::Bind(io::ErrorKind::AddrInUse).is_retryable());
        assert!(!ProbeError::Degraded.is_retryable());
        assert!(!ProbeError::Exhausted { attempts: 3 }.is_retryable());
    }

    #[test]
    fn io_timeout_maps_to_timeout() {
        let e = io::Error::new(io::ErrorKind::WouldBlock, "t");
        assert_eq!(ProbeError::from(e), ProbeError::Timeout);
        let e = io::Error::new(io::ErrorKind::BrokenPipe, "p");
        assert_eq!(
            ProbeError::from(e),
            ProbeError::Recv(io::ErrorKind::BrokenPipe)
        );
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(ProbeError::Timeout.to_string(), "probe timed out");
        assert_eq!(
            ProbeError::Exhausted { attempts: 4 }.to_string(),
            "probe failed after 4 attempts"
        );
        assert_eq!(ProbeError::Timeout.label(), "timeout");
    }
}
