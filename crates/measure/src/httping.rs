//! `httping` \[18\], cross-compiled for Android in the paper's comparison
//! (§4.3): per probe it opens a fresh TCP connection to the web server and
//! measures the connect (SYN → SYN/ACK) round trip, at a 1 s default
//! interval — so every probe pays the energy-saving wake-up penalties.

use phone::{App, AppCtx};
use simcore::SimDuration;
use wire::{Ip, Packet, PacketTag, TcpFlags, L4};

use crate::metrics::ProbeMetrics;
use crate::record::RttRecord;

/// httping configuration.
#[derive(Debug, Clone)]
pub struct HttpingConfig {
    /// Target server.
    pub dst: Ip,
    /// Target TCP port.
    pub port: u16,
    /// Number of probes.
    pub count: u32,
    /// Inter-probe interval (httping default 1 s).
    pub interval: SimDuration,
    /// Base source port; each probe uses `base + probe`.
    pub src_port_base: u16,
}

impl HttpingConfig {
    /// Standard httping run against port 80.
    pub fn new(dst: Ip, count: u32, interval: SimDuration) -> HttpingConfig {
        HttpingConfig {
            dst,
            port: 80,
            count,
            interval,
            src_port_base: 42_000,
        }
    }
}

const TAG_SEND: u32 = 1;

/// The httping app.
pub struct HttpingApp {
    cfg: HttpingConfig,
    /// Per-probe records.
    pub records: Vec<RttRecord>,
    sent: u32,
    metrics: ProbeMetrics,
}

impl HttpingApp {
    /// Create an httping session.
    pub fn new(cfg: HttpingConfig) -> HttpingApp {
        HttpingApp {
            cfg,
            records: Vec::new(),
            sent: 0,
            metrics: ProbeMetrics::default(),
        }
    }

    /// Register this session's telemetry as `measure.httping.*` in `reg`.
    pub fn attach_metrics(&mut self, reg: &obs::Registry) {
        self.metrics = ProbeMetrics::from_registry(reg, "httping");
    }

    fn send_probe(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let src_port = self.cfg.src_port_base.wrapping_add(self.sent as u16);
        let id = ctx.send(
            self.cfg.dst,
            64,
            L4::Tcp {
                src_port,
                dst_port: self.cfg.port,
                flags: TcpFlags::SYN,
                seq: 1000 + self.sent,
                ack: 0,
            },
            0,
            PacketTag::Probe(self.sent),
        );
        self.metrics.on_send();
        self.records.push(RttRecord::sent(self.sent, id, ctx.now()));
        self.sent += 1;
        if self.sent < self.cfg.count {
            ctx.set_timer(self.cfg.interval, TAG_SEND);
        }
    }

    fn probe_for_port(&self, dst_port: u16) -> Option<usize> {
        let base = self.cfg.src_port_base;
        let idx = dst_port.wrapping_sub(base) as u32;
        (idx < self.sent).then_some(idx as usize)
    }
}

impl App for HttpingApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.send_probe(ctx);
    }

    fn wants(&self, packet: &Packet) -> bool {
        match packet.l4 {
            L4::Tcp {
                src_port, dst_port, ..
            } => src_port == self.cfg.port && self.probe_for_port(dst_port).is_some(),
            _ => false,
        }
    }

    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet) {
        if !packet.tcp_has(TcpFlags::SYN | TcpFlags::ACK) {
            return;
        }
        let L4::Tcp { dst_port, .. } = packet.l4 else {
            return;
        };
        let Some(idx) = self.probe_for_port(dst_port) else {
            return;
        };
        let rec = &mut self.records[idx];
        if rec.tiu.is_some() {
            return;
        }
        let now = ctx.now();
        rec.resp_id = Some(packet.id);
        rec.tiu = Some(now);
        let rtt = now.saturating_since(rec.tou).as_ms_f64();
        rec.reported_ms = Some(rtt);
        self.metrics.on_reply(rtt);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
        if tag == TAG_SEND {
            self.send_probe(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordSet;
    use crate::testutil::{EchoWire, TestWorld};
    use phone::RuntimeKind;

    #[test]
    fn connect_rtt_measured() {
        let mut w = TestWorld::new(7, EchoWire::delay_ms(30));
        let app = w.install(
            Box::new(HttpingApp::new(HttpingConfig::new(
                phone::wired_ip(1),
                10,
                SimDuration::from_millis(200),
            ))),
            RuntimeKind::Native,
        );
        w.run_secs(10);
        let h = w.app::<HttpingApp>(app);
        assert_eq!(h.records.len(), 10);
        assert!((h.records.completion() - 1.0).abs() < 1e-12);
        for du in h.records.du() {
            assert!((30.0..60.0).contains(&du), "du={du}");
        }
    }

    #[test]
    fn default_interval_pays_wake_penalty() {
        let mut w = TestWorld::new(8, EchoWire::delay_ms(30));
        let app = w.install(
            Box::new(HttpingApp::new(HttpingConfig::new(
                phone::wired_ip(1),
                10,
                SimDuration::from_secs(1),
            ))),
            RuntimeKind::Native,
        );
        w.run_secs(15);
        let du = w.app::<HttpingApp>(app).records.du();
        let mean = du.iter().sum::<f64>() / du.len() as f64;
        // Every probe pays ~10 ms TX wake on a Nexus 5.
        assert!(mean > 39.0, "mean={mean}");
    }

    #[test]
    fn each_probe_uses_fresh_connection() {
        let mut w = TestWorld::new(9, EchoWire::delay_ms(10));
        let app = w.install(
            Box::new(HttpingApp::new(HttpingConfig::new(
                phone::wired_ip(1),
                5,
                SimDuration::from_millis(100),
            ))),
            RuntimeKind::Native,
        );
        w.run_secs(5);
        let h = w.app::<HttpingApp>(app);
        let mut req_ids: Vec<u64> = h.records.iter().map(|r| r.req_id).collect();
        req_ids.dedup();
        assert_eq!(req_ids.len(), 5);
    }
}
