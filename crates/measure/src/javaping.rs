//! "Java ping": MobiPerf's second measurement method (§4.3), reimplemented
//! the way the paper did — a Java app using `InetAddress`-style
//! reachability probes, which boil down to TCP control messages
//! (SYN → RST on a closed port). Because it runs in the Dalvik VM it also
//! pays the user–kernel overhead a native tool avoids; install it with
//! [`phone::RuntimeKind::Dalvik`].

use phone::{App, AppCtx};
use simcore::SimDuration;
use wire::{Ip, Packet, PacketTag, TcpFlags, L4};

use crate::metrics::ProbeMetrics;
use crate::record::RttRecord;

/// Java-ping configuration.
#[derive(Debug, Clone)]
pub struct JavaPingConfig {
    /// Target server.
    pub dst: Ip,
    /// Target port; `InetAddress.isReachable` falls back to TCP port 7
    /// (echo), normally closed → RST.
    pub port: u16,
    /// Number of probes.
    pub count: u32,
    /// Inter-probe interval.
    pub interval: SimDuration,
    /// Base source port.
    pub src_port_base: u16,
}

impl JavaPingConfig {
    /// The MobiPerf-style configuration.
    pub fn new(dst: Ip, count: u32, interval: SimDuration) -> JavaPingConfig {
        JavaPingConfig {
            dst,
            port: 7,
            count,
            interval,
            src_port_base: 51_000,
        }
    }
}

const TAG_SEND: u32 = 1;

/// The Java-ping app.
pub struct JavaPingApp {
    cfg: JavaPingConfig,
    /// Per-probe records.
    pub records: Vec<RttRecord>,
    sent: u32,
    metrics: ProbeMetrics,
}

impl JavaPingApp {
    /// Create a session.
    pub fn new(cfg: JavaPingConfig) -> JavaPingApp {
        JavaPingApp {
            cfg,
            records: Vec::new(),
            sent: 0,
            metrics: ProbeMetrics::default(),
        }
    }

    /// Register this session's telemetry as `measure.javaping.*` in `reg`.
    pub fn attach_metrics(&mut self, reg: &obs::Registry) {
        self.metrics = ProbeMetrics::from_registry(reg, "javaping");
    }

    fn probe_for_port(&self, dst_port: u16) -> Option<usize> {
        let idx = dst_port.wrapping_sub(self.cfg.src_port_base) as u32;
        (idx < self.sent).then_some(idx as usize)
    }

    fn send_probe(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let src_port = self.cfg.src_port_base.wrapping_add(self.sent as u16);
        let id = ctx.send(
            self.cfg.dst,
            64,
            L4::Tcp {
                src_port,
                dst_port: self.cfg.port,
                flags: TcpFlags::SYN,
                seq: 7000 + self.sent,
                ack: 0,
            },
            0,
            PacketTag::Probe(self.sent),
        );
        self.metrics.on_send();
        self.records.push(RttRecord::sent(self.sent, id, ctx.now()));
        self.sent += 1;
        if self.sent < self.cfg.count {
            ctx.set_timer(self.cfg.interval, TAG_SEND);
        }
    }
}

impl App for JavaPingApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.send_probe(ctx);
    }

    fn wants(&self, packet: &Packet) -> bool {
        match packet.l4 {
            L4::Tcp {
                src_port, dst_port, ..
            } => src_port == self.cfg.port && self.probe_for_port(dst_port).is_some(),
            _ => false,
        }
    }

    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet) {
        // Either RST (closed port) or SYN/ACK (open) completes the probe.
        if !(packet.tcp_has(TcpFlags::RST) || packet.tcp_has(TcpFlags::SYN | TcpFlags::ACK)) {
            return;
        }
        let L4::Tcp { dst_port, .. } = packet.l4 else {
            return;
        };
        let Some(idx) = self.probe_for_port(dst_port) else {
            return;
        };
        let rec = &mut self.records[idx];
        if rec.tiu.is_some() {
            return;
        }
        let now = ctx.now();
        rec.resp_id = Some(packet.id);
        rec.tiu = Some(now);
        let rtt = now.saturating_since(rec.tou).as_ms_f64();
        rec.reported_ms = Some(rtt);
        self.metrics.on_reply(rtt);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
        if tag == TAG_SEND {
            self.send_probe(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordSet;
    use crate::testutil::{EchoWire, TestWorld};
    use phone::RuntimeKind;

    #[test]
    fn completes_via_rst_from_closed_port() {
        let mut w = TestWorld::new(11, EchoWire::delay_ms(30));
        let app = w.install(
            Box::new(JavaPingApp::new(JavaPingConfig::new(
                phone::wired_ip(1),
                10,
                SimDuration::from_millis(200),
            ))),
            RuntimeKind::Dalvik,
        );
        w.run_secs(10);
        let j = w.app::<JavaPingApp>(app);
        assert_eq!(j.records.len(), 10);
        assert!((j.records.completion() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dalvik_overhead_makes_it_slower_than_native_httping() {
        // Same probe pattern, same network: the Dalvik runtime crossing
        // should show up in du.
        let mut w = TestWorld::new(12, EchoWire::delay_ms(30));
        let jp = w.install(
            Box::new(JavaPingApp::new(JavaPingConfig::new(
                phone::wired_ip(1),
                30,
                SimDuration::from_millis(50),
            ))),
            RuntimeKind::Dalvik,
        );
        let hp = w.install(
            Box::new(crate::httping::HttpingApp::new(
                crate::httping::HttpingConfig::new(
                    phone::wired_ip(1),
                    30,
                    SimDuration::from_millis(50),
                ),
            )),
            RuntimeKind::Native,
        );
        w.run_secs(10);
        let jdu = w.app::<JavaPingApp>(jp).records.du();
        let hdu = w.app::<crate::httping::HttpingApp>(hp).records.du();
        let jm = jdu.iter().sum::<f64>() / jdu.len() as f64;
        let hm = hdu.iter().sum::<f64>() / hdu.len() as f64;
        assert!(jm > hm, "java {jm} vs native {hm}");
    }
}
