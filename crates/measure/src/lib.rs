//! # measure — measurement tools and baselines
//!
//! The probe tools the paper runs and compares against (§3.1, §4.3):
//!
//! * [`PingApp`]: ICMP ping as run from `adb shell`, with configurable
//!   interval (10 ms vs the 1 s default drives the whole root-cause
//!   analysis of §3) and the integer-rounding reporting quirk that
//!   produces the negative ∆du−k of Fig. 3;
//! * [`HttpingApp`]: httping \[18\] — per-probe TCP connect RTT at 1 s
//!   intervals;
//! * [`JavaPingApp`]: MobiPerf's `InetAddress` method — TCP control
//!   messages from a Dalvik app;
//! * [`MobiperfHttpApp`]: MobiPerf's `HttpURLConnection` method —
//!   handshake RTT followed by a real GET;
//! * [`Ping2Prober`]: the server-side double-ping of Sui et al. \[34\],
//!   kept for the ablation showing it cannot fix long paths.
//!
//! All phone-side tools implement [`phone::App`] and produce
//! [`RttRecord`]s that join against the phone ledger and sniffer captures.

#![warn(missing_docs)]

mod error;
mod httping;
mod javaping;
mod metrics;
mod mobiperf_http;
mod ping;
mod ping2;
mod record;
#[cfg(test)]
mod testutil;

pub use error::ProbeError;
pub use httping::{HttpingApp, HttpingConfig};
pub use javaping::{JavaPingApp, JavaPingConfig};
pub use metrics::ProbeMetrics;
pub use mobiperf_http::{MobiperfHttpApp, MobiperfHttpConfig};
pub use ping::{PingApp, PingConfig};
pub use ping2::{Ping2Config, Ping2Prober, Ping2Record};
pub use record::{ping_report_quirk, RecordSet, RttRecord};
