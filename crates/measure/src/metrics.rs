//! Shared probe telemetry for the measurement tools.
//!
//! Every tool counts probes out, replies in, and the per-probe RTT it
//! reports; registering them under a per-tool prefix
//! (`measure.<tool>.*`) keeps runs comparable across tools.

use obs::{Counter, Histogram, Registry};

/// Telemetry handles for one probing session. Defaults to disabled
/// no-op handles, so tools that never call
/// [`ProbeMetrics::from_registry`] pay one branch per event.
#[derive(Debug, Clone, Default)]
pub struct ProbeMetrics {
    sent: Counter,
    received: Counter,
    timeouts: Counter,
    retries: Counter,
    rewarms: Counter,
    rtt_ms: Histogram,
}

impl ProbeMetrics {
    /// Register
    /// `measure.<tool>.{sent,received,timeouts,retries,rewarms,rtt_ms}`
    /// in `reg`.
    pub fn from_registry(reg: &Registry, tool: &str) -> ProbeMetrics {
        ProbeMetrics {
            sent: reg.counter(&format!("measure.{tool}.sent")),
            received: reg.counter(&format!("measure.{tool}.received")),
            timeouts: reg.counter(&format!("measure.{tool}.timeouts")),
            retries: reg.counter(&format!("measure.{tool}.retries")),
            rewarms: reg.counter(&format!("measure.{tool}.rewarms")),
            rtt_ms: reg.histogram_ms(&format!("measure.{tool}.rtt_ms")),
        }
    }

    /// A probe left the tool.
    pub fn on_send(&self) {
        self.sent.inc();
    }

    /// A reply completed a probe with the given reported RTT.
    pub fn on_reply(&self, rtt_ms: f64) {
        self.received.inc();
        self.rtt_ms.observe(rtt_ms);
    }

    /// A probe attempt hit its deadline with no reply.
    pub fn on_timeout(&self) {
        self.timeouts.inc();
    }

    /// A timed-out probe was re-sent.
    pub fn on_retry(&self) {
        self.retries.inc();
    }

    /// A fresh warm-up packet was sent to re-warm a dozed radio path.
    pub fn on_rewarm(&self) {
        self.rewarms.inc();
    }
}
