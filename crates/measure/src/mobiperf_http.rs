//! MobiPerf's third measurement method (§4.3): `HttpURLConnection`.
//!
//! Per probe it opens a fresh connection and issues an HTTP GET; the RTT
//! is taken from the TCP control handshake (SYN → SYN/ACK), which is why
//! the paper lumps methods 2 and 3 together ("SYN/RST vs SYN/SYN ACK").
//! Unlike the bare `InetAddress` method, the GET exchange that follows
//! adds extra traffic after each probe — which slightly changes how the
//! phone's idle timers behave between probes. Runs in the Dalvik VM.

use phone::{App, AppCtx};
use simcore::SimDuration;
use wire::{Ip, Packet, PacketTag, TcpFlags, L4};

use crate::metrics::ProbeMetrics;
use crate::record::RttRecord;

/// Configuration for the HttpURLConnection prober.
#[derive(Debug, Clone)]
pub struct MobiperfHttpConfig {
    /// Target server.
    pub dst: Ip,
    /// Target HTTP port.
    pub port: u16,
    /// Number of probes.
    pub count: u32,
    /// Inter-probe interval.
    pub interval: SimDuration,
    /// Base source port.
    pub src_port_base: u16,
    /// HTTP request payload size (headers etc.).
    pub request_len: usize,
}

impl MobiperfHttpConfig {
    /// The MobiPerf defaults.
    pub fn new(dst: Ip, count: u32, interval: SimDuration) -> MobiperfHttpConfig {
        MobiperfHttpConfig {
            dst,
            port: 80,
            count,
            interval,
            src_port_base: 55_000,
            request_len: 160,
        }
    }
}

const TAG_SEND: u32 = 1;

/// The HttpURLConnection app.
pub struct MobiperfHttpApp {
    cfg: MobiperfHttpConfig,
    /// Per-probe records (RTT = connect handshake).
    pub records: Vec<RttRecord>,
    /// HTTP responses received (the GET after the handshake).
    pub http_responses: u64,
    sent: u32,
    metrics: ProbeMetrics,
}

impl MobiperfHttpApp {
    /// Create a session.
    pub fn new(cfg: MobiperfHttpConfig) -> MobiperfHttpApp {
        MobiperfHttpApp {
            cfg,
            records: Vec::new(),
            http_responses: 0,
            sent: 0,
            metrics: ProbeMetrics::default(),
        }
    }

    /// Register this session's telemetry as `measure.mobiperf_http.*`
    /// in `reg`.
    pub fn attach_metrics(&mut self, reg: &obs::Registry) {
        self.metrics = ProbeMetrics::from_registry(reg, "mobiperf_http");
    }

    fn probe_for_port(&self, dst_port: u16) -> Option<usize> {
        let idx = dst_port.wrapping_sub(self.cfg.src_port_base) as u32;
        (idx < self.sent).then_some(idx as usize)
    }

    fn send_probe(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let src_port = self.cfg.src_port_base.wrapping_add(self.sent as u16);
        let id = ctx.send(
            self.cfg.dst,
            64,
            L4::Tcp {
                src_port,
                dst_port: self.cfg.port,
                flags: TcpFlags::SYN,
                seq: 9_000 + self.sent,
                ack: 0,
            },
            0,
            PacketTag::Probe(self.sent),
        );
        self.metrics.on_send();
        self.records.push(RttRecord::sent(self.sent, id, ctx.now()));
        self.sent += 1;
        if self.sent < self.cfg.count {
            ctx.set_timer(self.cfg.interval, TAG_SEND);
        }
    }

    fn send_get(&mut self, ctx: &mut AppCtx<'_, '_>, src_port: u16, ack: u32) {
        ctx.send(
            self.cfg.dst,
            64,
            L4::Tcp {
                src_port,
                dst_port: self.cfg.port,
                flags: TcpFlags::PSH | TcpFlags::ACK,
                seq: ack, // continue the handshake's sequence space
                ack: 1,
            },
            self.cfg.request_len,
            PacketTag::Other,
        );
    }
}

impl App for MobiperfHttpApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.send_probe(ctx);
    }

    fn wants(&self, packet: &Packet) -> bool {
        match packet.l4 {
            L4::Tcp {
                src_port, dst_port, ..
            } => src_port == self.cfg.port && self.probe_for_port(dst_port).is_some(),
            _ => false,
        }
    }

    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet) {
        let L4::Tcp { dst_port, seq, .. } = packet.l4 else {
            return;
        };
        let Some(idx) = self.probe_for_port(dst_port) else {
            return;
        };
        if packet.tcp_has(TcpFlags::SYN | TcpFlags::ACK) {
            // Handshake complete: this IS the reported RTT...
            let now = ctx.now();
            let rec = &mut self.records[idx];
            if rec.tiu.is_none() {
                rec.resp_id = Some(packet.id);
                rec.tiu = Some(now);
                let rtt = now.saturating_since(rec.tou).as_ms_f64();
                rec.reported_ms = Some(rtt);
                self.metrics.on_reply(rtt);
            }
            // ...and HttpURLConnection then actually issues the GET.
            self.send_get(ctx, dst_port, seq.wrapping_add(1));
        } else if packet.tcp_has(TcpFlags::PSH) {
            self.http_responses += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
        if tag == TAG_SEND {
            self.send_probe(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordSet;
    use crate::testutil::{EchoWire, TestWorld};
    use phone::RuntimeKind;

    #[test]
    fn handshake_rtt_and_get_both_happen() {
        let mut w = TestWorld::new(13, EchoWire::delay_ms(30));
        let app = w.install(
            Box::new(MobiperfHttpApp::new(MobiperfHttpConfig::new(
                phone::wired_ip(1),
                8,
                SimDuration::from_millis(300),
            ))),
            RuntimeKind::Dalvik,
        );
        w.run_secs(10);
        let m = w.app::<MobiperfHttpApp>(app);
        assert_eq!(m.records.len(), 8);
        assert!((m.records.completion() - 1.0).abs() < 1e-12);
        // The follow-up GETs got answered too.
        assert_eq!(m.http_responses, 8);
        for du in m.records.du() {
            assert!((30.0..60.0).contains(&du), "du={du}");
        }
    }

    #[test]
    fn reported_rtt_is_handshake_not_get() {
        let mut w = TestWorld::new(14, EchoWire::delay_ms(40));
        let app = w.install(
            Box::new(MobiperfHttpApp::new(MobiperfHttpConfig::new(
                phone::wired_ip(1),
                5,
                SimDuration::from_millis(300),
            ))),
            RuntimeKind::Dalvik,
        );
        w.run_secs(10);
        let m = w.app::<MobiperfHttpApp>(app);
        for r in &m.records {
            // One RTT (~40), not two (~80).
            let rep = r.reported_ms.unwrap();
            assert!(rep < 60.0, "reported {rep}");
        }
    }
}
