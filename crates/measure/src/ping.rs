//! ICMP `ping`, as run from `adb shell` (§3.1): a native binary sending
//! echo requests at a configurable interval. This is the probe tool of the
//! paper's root-cause analysis — at a 10 ms interval it keeps the phone
//! awake and measures clean RTTs; at the 1 s default it hits the SDIO
//! demotion and PSM timeouts on every probe.

use phone::{App, AppCtx};
use simcore::{SimDuration, SimTime};
use wire::{IcmpKind, Ip, Packet, PacketTag, L4};

use crate::metrics::ProbeMetrics;
use crate::record::{ping_report_quirk, RttRecord};

/// Ping configuration.
#[derive(Debug, Clone)]
pub struct PingConfig {
    /// Target address.
    pub dst: Ip,
    /// Number of probes.
    pub count: u32,
    /// Inter-probe interval (ping's `-i`; 1 s default, 10 ms for the
    /// small-interval experiment).
    pub interval: SimDuration,
    /// ICMP identifier of this session.
    pub ident: u16,
    /// Echo payload size (ping default 56).
    pub payload: usize,
    /// Per-probe timeout used to mark losses in the records.
    pub timeout: SimDuration,
}

impl PingConfig {
    /// The paper's configuration: `count` probes to `dst` at `interval`.
    pub fn new(dst: Ip, count: u32, interval: SimDuration) -> PingConfig {
        PingConfig {
            dst,
            count,
            interval,
            ident: 0x1111,
            payload: 56,
            timeout: SimDuration::from_secs(3),
        }
    }
}

const TAG_SEND: u32 = 1;
const TAG_DEADLINE: u32 = 2;

/// The ping app. Install with [`phone::RuntimeKind::Native`] to model the
/// adb-shell binary, or `Dalvik` to model a Java wrapper.
pub struct PingApp {
    cfg: PingConfig,
    /// Per-probe records (index = probe number).
    pub records: Vec<RttRecord>,
    sent: u32,
    finished_at: Option<SimTime>,
    metrics: ProbeMetrics,
}

impl PingApp {
    /// Create a ping session.
    pub fn new(cfg: PingConfig) -> PingApp {
        PingApp {
            cfg,
            records: Vec::new(),
            sent: 0,
            finished_at: None,
            metrics: ProbeMetrics::default(),
        }
    }

    /// Register this session's telemetry as `measure.ping.*` in `reg`.
    pub fn attach_metrics(&mut self, reg: &obs::Registry) {
        self.metrics = ProbeMetrics::from_registry(reg, "ping");
    }

    /// When the last probe completed or timed out (None while running).
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    fn send_probe(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let seq = self.sent as u16;
        let id = ctx.send(
            self.cfg.dst,
            64,
            L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident: self.cfg.ident,
                seq,
            },
            self.cfg.payload,
            PacketTag::Probe(self.sent),
        );
        if let Some(tc) = ctx.tracer().packet_ctx(id) {
            ctx.tracer().attr(tc.root, "tool", "ping");
        }
        self.metrics.on_send();
        self.records.push(RttRecord::sent(self.sent, id, ctx.now()));
        self.sent += 1;
        if self.sent < self.cfg.count {
            ctx.set_timer(self.cfg.interval, TAG_SEND);
        } else {
            ctx.set_timer(self.cfg.timeout, TAG_DEADLINE);
        }
    }
}

impl App for PingApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.send_probe(ctx);
    }

    fn wants(&self, packet: &Packet) -> bool {
        matches!(
            packet.l4,
            L4::Icmp {
                kind: IcmpKind::EchoReply,
                ident,
                ..
            } if ident == self.cfg.ident
        )
    }

    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet) {
        let L4::Icmp { seq, .. } = packet.l4 else {
            return;
        };
        let Some(rec) = self.records.get_mut(seq as usize) else {
            return;
        };
        if rec.tiu.is_some() {
            return; // duplicate reply
        }
        let now = ctx.now();
        rec.resp_id = Some(packet.id);
        rec.tiu = Some(now);
        let du = now.saturating_since(rec.tou).as_ms_f64();
        rec.reported_ms = Some(ping_report_quirk(du, ctx.profile().ping_integer_rounding));
        self.metrics.on_reply(du);
        if self.sent == self.cfg.count && self.records.iter().all(|r| r.completed()) {
            self.finished_at = Some(now);
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
        match tag {
            TAG_SEND => self.send_probe(ctx),
            TAG_DEADLINE if self.finished_at.is_none() => {
                self.finished_at = Some(ctx.now());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordSet;
    use crate::testutil::{EchoWire, TestWorld};
    use phone::RuntimeKind;

    #[test]
    fn hundred_probes_complete() {
        let mut w = TestWorld::new(3, EchoWire::delay_ms(30));
        let app = w.install(
            Box::new(PingApp::new(PingConfig::new(
                phone::wired_ip(1),
                100,
                SimDuration::from_millis(10),
            ))),
            RuntimeKind::Native,
        );
        w.run_secs(10);
        let ping = w.app::<PingApp>(app);
        assert_eq!(ping.records.len(), 100);
        assert!((ping.records.completion() - 1.0).abs() < 1e-12);
        assert!(ping.finished_at().is_some());
        // All RTTs at least the network delay.
        for du in ping.records.du() {
            assert!(du >= 30.0, "du={du}");
        }
    }

    #[test]
    fn small_interval_keeps_rtts_tight() {
        let mut w = TestWorld::new(4, EchoWire::delay_ms(30));
        let app = w.install(
            Box::new(PingApp::new(PingConfig::new(
                phone::wired_ip(1),
                50,
                SimDuration::from_millis(10),
            ))),
            RuntimeKind::Native,
        );
        w.run_secs(10);
        let du = w.app::<PingApp>(app).records.du();
        // After the first (cold) probe, the bus stays awake: RTTs ~30-35.
        let warm = &du[1..];
        let mean = warm.iter().sum::<f64>() / warm.len() as f64;
        assert!(mean < 36.0, "mean={mean}");
    }

    #[test]
    fn one_second_interval_inflates_rtts() {
        let mut w = TestWorld::new(5, EchoWire::delay_ms(60));
        let app = w.install(
            Box::new(PingApp::new(PingConfig::new(
                phone::wired_ip(1),
                20,
                SimDuration::from_secs(1),
            ))),
            RuntimeKind::Native,
        );
        w.run_secs(30);
        let du = w.app::<PingApp>(app).records.du();
        let mean = du.iter().sum::<f64>() / du.len() as f64;
        // Nexus 5 pattern: TX wake (~10) + RX wake (~12) on top of 60.
        assert!(mean > 75.0, "mean={mean}");
        assert!(mean < 95.0, "mean={mean}");
    }

    #[test]
    fn unanswered_probes_recorded_as_lost() {
        let mut w = TestWorld::new(6, EchoWire::blackhole());
        let app = w.install(
            Box::new(PingApp::new(PingConfig::new(
                phone::wired_ip(1),
                5,
                SimDuration::from_millis(100),
            ))),
            RuntimeKind::Native,
        );
        w.run_secs(10);
        let ping = w.app::<PingApp>(app);
        assert_eq!(ping.records.len(), 5);
        assert_eq!(ping.records.completion(), 0.0);
        assert!(ping.finished_at().is_some());
    }
}
