//! `ping2` (Sui et al. \[34\]): server-side double ping.
//!
//! The server sends a first ping to wake the phone and, immediately upon
//! receiving its reply, a second ping whose RTT is taken as the
//! measurement. The paper's critique (§1): when the nRTT is long, the
//! phone falls back to the inactive state *before the second ping
//! arrives*, so the inflation is not fully removed — exactly what this
//! model reproduces (the gap between the phone's reply transmission and
//! the second ping's arrival is one full nRTT).
//!
//! This is a wired-side node (it probes *towards* the phone), relying on
//! the phone's kernel ICMP echo responder.

use simcore::{Ctx, Node, NodeId, SimDuration, SimTime};
use wire::{IcmpKind, Ip, Msg, Packet, PacketIdGen, PacketTag, L4};

/// ping2 configuration.
#[derive(Debug, Clone)]
pub struct Ping2Config {
    /// The prober's own address (a wired host).
    pub src: Ip,
    /// The phone's address.
    pub dst: Ip,
    /// Number of ping-pairs.
    pub pairs: u32,
    /// Interval between pairs.
    pub interval: SimDuration,
    /// ICMP ident.
    pub ident: u16,
}

impl Ping2Config {
    /// A standard ping2 run.
    pub fn new(src: Ip, dst: Ip, pairs: u32, interval: SimDuration) -> Ping2Config {
        Ping2Config {
            src,
            dst,
            pairs,
            interval,
            ident: 0x2222,
        }
    }
}

/// One measured pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ping2Record {
    /// Pair index.
    pub pair: u32,
    /// RTT of the first (wake-up) ping, ms.
    pub rtt1_ms: Option<f64>,
    /// RTT of the second (measurement) ping, ms.
    pub rtt2_ms: Option<f64>,
}

const TAG_NEXT_PAIR: u64 = 1;

/// The ping2 prober node (attach on the wired side, e.g. to the switch).
pub struct Ping2Prober {
    cfg: Ping2Config,
    /// The wired next hop (switch/link towards the phone).
    via: NodeId,
    ids: PacketIdGen,
    /// Completed and in-progress records.
    pub records: Vec<Ping2Record>,
    /// seq → send time of outstanding pings. Even seq = first ping of the
    /// pair, odd = second.
    outstanding: std::collections::HashMap<u16, SimTime>,
    sent_pairs: u32,
    metrics: crate::metrics::ProbeMetrics,
}

impl Ping2Prober {
    /// Create a prober; `source` seeds the packet-id space.
    pub fn new(source: u32, cfg: Ping2Config, via: NodeId) -> Ping2Prober {
        Ping2Prober {
            cfg,
            via,
            ids: PacketIdGen::new(source),
            records: Vec::new(),
            outstanding: std::collections::HashMap::new(),
            sent_pairs: 0,
            metrics: crate::metrics::ProbeMetrics::default(),
        }
    }

    /// Register this prober's telemetry as `measure.ping2.*` in `reg`.
    pub fn attach_metrics(&mut self, reg: &obs::Registry) {
        self.metrics = crate::metrics::ProbeMetrics::from_registry(reg, "ping2");
    }

    /// Re-point the wired next hop.
    pub fn set_via(&mut self, via: NodeId) {
        self.via = via;
    }

    fn send_ping(&mut self, ctx: &mut Ctx<'_, Msg>, seq: u16) {
        let p = Packet {
            id: self.ids.next_id(),
            src: self.cfg.src,
            dst: self.cfg.dst,
            ttl: 64,
            l4: L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident: self.cfg.ident,
                seq,
            },
            payload_len: 56,
            tag: PacketTag::Probe(u32::from(seq)),
        };
        self.outstanding.insert(seq, ctx.now());
        self.metrics.on_send();
        ctx.send(self.via, SimDuration::ZERO, Msg::Wire(p));
    }

    fn start_pair(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let pair = self.sent_pairs;
        self.records.push(Ping2Record {
            pair,
            rtt1_ms: None,
            rtt2_ms: None,
        });
        self.send_ping(ctx, (pair * 2) as u16);
        self.sent_pairs += 1;
        if self.sent_pairs < self.cfg.pairs {
            ctx.set_timer(self.cfg.interval, TAG_NEXT_PAIR);
        }
    }
}

impl Node<Msg> for Ping2Prober {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.start_pair(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::Wire(packet) = msg else { return };
        let L4::Icmp {
            kind: IcmpKind::EchoReply,
            ident,
            seq,
        } = packet.l4
        else {
            return;
        };
        if ident != self.cfg.ident {
            return;
        }
        let Some(sent) = self.outstanding.remove(&seq) else {
            return;
        };
        let rtt = ctx.now().saturating_since(sent).as_ms_f64();
        self.metrics.on_reply(rtt);
        let pair = (seq / 2) as usize;
        let second = seq % 2 == 1;
        if let Some(rec) = self.records.get_mut(pair) {
            if second {
                rec.rtt2_ms = Some(rtt);
            } else {
                rec.rtt1_ms = Some(rtt);
                // First reply arrived: fire the measurement ping at once.
                self.send_ping(ctx, seq + 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if tag == TAG_NEXT_PAIR {
            self.start_pair(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netem::{LinkNode, LinkParams};
    use phone::PhoneNode;
    use simcore::Sim;

    /// A mini-world: prober ↔ link ↔ phone; the phone's kernel answers
    /// the echoes.
    fn with_prober(rtt_ms: u64, pairs: u32) -> (Sim<Msg>, NodeId) {
        let mut sim = Sim::new(21);
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(rtt_ms / 2))));
        let phone = sim.add_node(Box::new(PhoneNode::new(
            1,
            phone::nexus5(),
            phone::wlan_ip(100),
            link,
        )));
        let prober = sim.add_node(Box::new(Ping2Prober::new(
            70,
            Ping2Config::new(
                phone::wired_ip(2),
                phone::wlan_ip(100),
                pairs,
                SimDuration::from_secs(1),
            ),
            link,
        )));
        sim.node_mut::<LinkNode>(link).connect(phone, prober);
        (sim, prober)
    }

    #[test]
    fn short_rtt_second_ping_is_clean() {
        let (mut sim, prober) = with_prober(20, 10);
        sim.run_until(SimTime::from_secs(15));
        let recs = &sim.node::<Ping2Prober>(prober).records;
        assert_eq!(recs.len(), 10);
        for r in recs {
            let r1 = r.rtt1_ms.unwrap();
            let r2 = r.rtt2_ms.unwrap();
            // First ping pays the RX wake; second is clean (20 < Tis).
            assert!(r2 < r1, "r1={r1} r2={r2}");
            assert!(r2 < 25.0, "r2={r2}");
        }
    }

    #[test]
    fn long_rtt_second_ping_still_inflated() {
        // With nRTT 120 ms > Tis=50ms, the phone's bus re-sleeps before
        // the second ping arrives — the paper's critique of ping2.
        let (mut sim, prober) = with_prober(120, 8);
        sim.run_until(SimTime::from_secs(20));
        let recs = &sim.node::<Ping2Prober>(prober).records;
        let mean2: f64 = recs.iter().filter_map(|r| r.rtt2_ms).sum::<f64>()
            / recs.iter().filter(|r| r.rtt2_ms.is_some()).count() as f64;
        assert!(mean2 > 120.0 + 8.0, "mean2={mean2}");
    }
}
