//! Per-probe RTT records shared by every measurement tool.

use simcore::SimTime;

/// The outcome of one probe as the tool itself sees it (user level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttRecord {
    /// Probe index within the run.
    pub probe: u32,
    /// Packet id of the request (joins the phone ledger / sniffers).
    pub req_id: u64,
    /// Packet id of the response, if one arrived.
    pub resp_id: Option<u64>,
    /// User-level send time `tou`.
    pub tou: SimTime,
    /// User-level receive time `tiu`.
    pub tiu: Option<SimTime>,
    /// The RTT the tool *reports*, after any tool-specific quirks (e.g.
    /// ping's integer rounding above 100 ms), in ms.
    pub reported_ms: Option<f64>,
}

impl RttRecord {
    /// The true user-level RTT `du = tiu − tou` in ms (no quirks).
    pub fn du_ms(&self) -> Option<f64> {
        Some(self.tiu?.saturating_since(self.tou).as_ms_f64())
    }

    /// Whether the probe completed.
    pub fn completed(&self) -> bool {
        self.tiu.is_some()
    }
}

/// Summary helpers over a set of records.
pub trait RecordSet {
    /// All completed reported RTTs in ms.
    fn reported(&self) -> Vec<f64>;
    /// All completed true `du` values in ms.
    fn du(&self) -> Vec<f64>;
    /// Completed fraction.
    fn completion(&self) -> f64;
}

impl RecordSet for [RttRecord] {
    fn reported(&self) -> Vec<f64> {
        self.iter().filter_map(|r| r.reported_ms).collect()
    }
    fn du(&self) -> Vec<f64> {
        self.iter().filter_map(|r| r.du_ms()).collect()
    }
    fn completion(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.iter().filter(|r| r.completed()).count() as f64 / self.len() as f64
    }
}

/// Apply ping's reporting quirk: busybox/toolbox ping on some phones
/// prints RTTs above 100 ms with no fractional digits, truncating the
/// fraction (§3.1: "the round-down RTT could be smaller than the tcpdump
/// measurement", producing negative ∆du−k).
pub fn ping_report_quirk(du_ms: f64, integer_rounding: bool) -> f64 {
    if integer_rounding && du_ms >= 100.0 {
        du_ms.floor()
    } else {
        // Normal ping resolution: 1 µs.
        (du_ms * 1000.0).round() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(probe: u32, tou_ms: u64, tiu_ms: Option<u64>) -> RttRecord {
        RttRecord {
            probe,
            req_id: u64::from(probe),
            resp_id: tiu_ms.map(|_| 1000 + u64::from(probe)),
            tou: SimTime::from_millis(tou_ms),
            tiu: tiu_ms.map(SimTime::from_millis),
            reported_ms: tiu_ms.map(|t| (t - tou_ms) as f64),
        }
    }

    #[test]
    fn du_and_completion() {
        let rs = [
            rec(0, 0, Some(30)),
            rec(1, 100, None),
            rec(2, 200, Some(233)),
        ];
        assert_eq!(rs[0].du_ms(), Some(30.0));
        assert_eq!(rs[1].du_ms(), None);
        assert!(!rs[1].completed());
        assert_eq!(rs.du(), vec![30.0, 33.0]);
        assert_eq!(rs.reported(), vec![30.0, 33.0]);
        assert!((rs.completion() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set() {
        let rs: [RttRecord; 0] = [];
        assert_eq!(rs.completion(), 0.0);
        assert!(rs.du().is_empty());
    }

    #[test]
    fn quirk_rounds_down_only_above_100() {
        assert_eq!(ping_report_quirk(136.66, true), 136.0);
        assert_eq!(ping_report_quirk(99.87, true), 99.87);
        assert_eq!(ping_report_quirk(136.66, false), 136.66);
        assert_eq!(ping_report_quirk(33.1604, false), 33.16);
    }
}
