//! Per-probe RTT records shared by every measurement tool.

use crate::error::ProbeError;
use simcore::SimTime;

/// The outcome of one probe as the tool itself sees it (user level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttRecord {
    /// Probe index within the run.
    pub probe: u32,
    /// Packet id of the request (joins the phone ledger / sniffers).
    /// When the probe was retried this is the id of the attempt that
    /// produced the response (or the last attempt, if none did).
    pub req_id: u64,
    /// Packet id of the response, if one arrived.
    pub resp_id: Option<u64>,
    /// User-level send time `tou` (of the successful/last attempt).
    pub tou: SimTime,
    /// User-level receive time `tiu`.
    pub tiu: Option<SimTime>,
    /// The RTT the tool *reports*, after any tool-specific quirks (e.g.
    /// ping's integer rounding above 100 ms), in ms.
    pub reported_ms: Option<f64>,
    /// Send attempts spent on this probe (1 = first try succeeded).
    pub attempts: u32,
    /// Why the probe ultimately failed, if it did.
    pub error: Option<ProbeError>,
}

impl RttRecord {
    /// A freshly-sent, not-yet-answered probe (first attempt, no error).
    /// Tools fill in `resp_id`/`tiu`/`reported_ms` when the reply lands,
    /// or `error` when the probe is given up.
    pub fn sent(probe: u32, req_id: u64, tou: SimTime) -> RttRecord {
        RttRecord {
            probe,
            req_id,
            resp_id: None,
            tou,
            tiu: None,
            reported_ms: None,
            attempts: 1,
            error: None,
        }
    }

    /// The true user-level RTT `du = tiu − tou` in ms (no quirks).
    pub fn du_ms(&self) -> Option<f64> {
        Some(self.tiu?.saturating_since(self.tou).as_ms_f64())
    }

    /// Whether the probe completed.
    pub fn completed(&self) -> bool {
        self.tiu.is_some()
    }

    /// Whether the probe completed but needed more than one attempt
    /// (recovered via retry).
    pub fn recovered(&self) -> bool {
        self.completed() && self.attempts > 1
    }
}

/// Summary helpers over a set of records.
pub trait RecordSet {
    /// All completed reported RTTs in ms.
    fn reported(&self) -> Vec<f64>;
    /// All completed true `du` values in ms.
    fn du(&self) -> Vec<f64>;
    /// Completed fraction.
    fn completion(&self) -> f64;
    /// The `du` values as a right-censored sample: every lost probe is
    /// kept in the denominator, so loss-aware quantiles don't silently
    /// drop timeouts.
    fn du_censored(&self) -> am_stats::CensoredSample;
    /// Total retry attempts beyond the first try, across all probes.
    fn total_retries(&self) -> u64;
}

impl RecordSet for [RttRecord] {
    fn reported(&self) -> Vec<f64> {
        self.iter().filter_map(|r| r.reported_ms).collect()
    }
    fn du(&self) -> Vec<f64> {
        self.iter().filter_map(|r| r.du_ms()).collect()
    }
    fn completion(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.iter().filter(|r| r.completed()).count() as f64 / self.len() as f64
    }
    fn du_censored(&self) -> am_stats::CensoredSample {
        am_stats::CensoredSample::from_outcomes(self.iter().map(|r| r.du_ms()))
    }
    fn total_retries(&self) -> u64 {
        self.iter()
            .map(|r| u64::from(r.attempts.saturating_sub(1)))
            .sum()
    }
}

/// Apply ping's reporting quirk: busybox/toolbox ping on some phones
/// prints RTTs above 100 ms with no fractional digits, truncating the
/// fraction (§3.1: "the round-down RTT could be smaller than the tcpdump
/// measurement", producing negative ∆du−k).
pub fn ping_report_quirk(du_ms: f64, integer_rounding: bool) -> f64 {
    if integer_rounding && du_ms >= 100.0 {
        du_ms.floor()
    } else {
        // Normal ping resolution: 1 µs.
        (du_ms * 1000.0).round() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(probe: u32, tou_ms: u64, tiu_ms: Option<u64>) -> RttRecord {
        RttRecord {
            resp_id: tiu_ms.map(|_| 1000 + u64::from(probe)),
            tiu: tiu_ms.map(SimTime::from_millis),
            reported_ms: tiu_ms.map(|t| (t - tou_ms) as f64),
            error: tiu_ms.is_none().then_some(ProbeError::Timeout),
            ..RttRecord::sent(probe, u64::from(probe), SimTime::from_millis(tou_ms))
        }
    }

    #[test]
    fn du_and_completion() {
        let rs = [
            rec(0, 0, Some(30)),
            rec(1, 100, None),
            rec(2, 200, Some(233)),
        ];
        assert_eq!(rs[0].du_ms(), Some(30.0));
        assert_eq!(rs[1].du_ms(), None);
        assert!(!rs[1].completed());
        assert_eq!(rs.du(), vec![30.0, 33.0]);
        assert_eq!(rs.reported(), vec![30.0, 33.0]);
        assert!((rs.completion() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set() {
        let rs: [RttRecord; 0] = [];
        assert_eq!(rs.completion(), 0.0);
        assert!(rs.du().is_empty());
        assert_eq!(rs.total_retries(), 0);
        assert!(rs.du_censored().is_empty());
    }

    #[test]
    fn censored_view_keeps_lost_probes() {
        let rs = [
            rec(0, 0, Some(30)),
            rec(1, 100, None),
            rec(2, 200, Some(233)),
            rec(3, 300, None),
        ];
        let cs = rs.du_censored();
        assert_eq!(cs.len(), 4);
        assert_eq!(cs.censored(), 2);
        // Median interpolates into the censored mass (n = 4, 2 lost):
        // not identifiable; the 25th percentile is — h = 0.75 between
        // the 30 ms and 33 ms order statistics.
        assert_eq!(cs.median(), None);
        assert_eq!(cs.quantile(0.25), Some(32.25));
    }

    #[test]
    fn retries_and_recovery() {
        let mut r = rec(0, 0, Some(30));
        assert!(!r.recovered());
        r.attempts = 3;
        assert!(r.recovered());
        let rs = [r, rec(1, 100, None)];
        assert_eq!(rs.total_retries(), 2);
        assert_eq!(rs[1].error, Some(ProbeError::Timeout));
    }

    #[test]
    fn quirk_rounds_down_only_above_100() {
        assert_eq!(ping_report_quirk(136.66, true), 136.0);
        assert_eq!(ping_report_quirk(99.87, true), 99.87);
        assert_eq!(ping_report_quirk(136.66, false), 136.66);
        assert_eq!(ping_report_quirk(33.1604, false), 33.16);
    }
}
