//! Test scaffolding: a phone wired straight to a measurement server
//! through a delay link (no WiFi), to exercise tool logic and the phone
//! pipeline in isolation. The full testbed lives in the `testbed` crate.

use netem::{LinkNode, LinkParams, ServerConfig, ServerNode};
use phone::{App, PhoneNode, RuntimeKind};
use simcore::{Ctx, Node, NodeId, Sim, SimDuration};
use wire::Msg;

/// The wire between phone and server.
pub enum EchoWire {
    /// A responsive server behind a symmetric path with this RTT (ms).
    Rtt(u64),
    /// A server that never answers.
    Blackhole,
}

impl EchoWire {
    /// Convenience constructor: a path with the given RTT in ms.
    pub fn delay_ms(rtt: u64) -> EchoWire {
        EchoWire::Rtt(rtt)
    }

    /// A black-hole wire.
    pub fn blackhole() -> EchoWire {
        EchoWire::Blackhole
    }
}

/// Discards everything.
struct Blackhole;
impl Node<Msg> for Blackhole {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {}
}

/// A minimal world: phone ↔ link ↔ server.
pub struct TestWorld {
    /// The simulator.
    pub sim: Sim<Msg>,
    /// The phone node id.
    pub phone: NodeId,
    /// The server node id (or black hole).
    #[allow(dead_code)]
    pub server: NodeId,
}

impl TestWorld {
    /// Build the world. Install apps before the first `run_*` call.
    pub fn new(seed: u64, wire: EchoWire) -> TestWorld {
        let mut sim = Sim::new(seed);
        let (server, one_way) = match wire {
            EchoWire::Rtt(rtt) => {
                let s = sim.add_node(Box::new(ServerNode::new(
                    50,
                    ServerConfig::standard(phone::wired_ip(1)),
                )));
                (s, rtt / 2)
            }
            EchoWire::Blackhole => (sim.add_node(Box::new(Blackhole)), 0),
        };
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(one_way))));
        let phone = PhoneNode::new(1, phone::nexus5(), phone::wlan_ip(100), link);
        let phone_id = sim.add_node(Box::new(phone));
        sim.node_mut::<LinkNode>(link).connect(phone_id, server);
        TestWorld {
            sim,
            phone: phone_id,
            server,
        }
    }

    /// Install an app on the phone.
    pub fn install(&mut self, app: Box<dyn App>, runtime: RuntimeKind) -> usize {
        self.sim
            .node_mut::<PhoneNode>(self.phone)
            .install_app(app, runtime)
    }

    /// Run `s` seconds of simulated time.
    pub fn run_secs(&mut self, s: u64) {
        let deadline = self.sim.now() + SimDuration::from_secs(s);
        self.sim.run_until(deadline);
    }

    /// Typed app view.
    pub fn app<T: 'static>(&self, idx: usize) -> &T {
        self.sim.node::<PhoneNode>(self.phone).app::<T>(idx)
    }
}
