//! Deterministic fault injection for the testbed.
//!
//! A [`FaultPlan`] describes the faults one component should inject —
//! loss (Bernoulli or bursty Gilbert–Elliott), reordering, duplication,
//! extra jitter, and timed link-flap windows — and a [`FaultState`] is
//! the running instance of a plan: it carries the Gilbert–Elliott channel
//! state and a private [`DetRng`] stream per direction, so the verdict
//! sequence is a pure function of the plan (including its seed) and the
//! order of packets offered. Two runs with the same plan and the same
//! traffic replay byte-identically, independent of the engine's shared
//! RNG stream — adding a fault plan to one link never perturbs the draws
//! of any other component.
//!
//! The plan is consumed by [`LinkNode`](crate::LinkNode),
//! [`SwitchNode`](crate::SwitchNode), [`ServerNode`](crate::ServerNode)
//! and (for post-MAC wireless loss) `phy80211::MediumNode`; the topology
//! builders in `testbed` expose per-scenario knobs.
//!
//! ```
//! use netem::{FaultPlan, FaultState, FaultVerdict};
//! use simcore::SimTime;
//!
//! let plan = FaultPlan::gilbert_elliott(0.2, 4.0).with_seed(7);
//! let mut state = FaultState::new(&plan);
//! match state.decide(0, SimTime::ZERO) {
//!     FaultVerdict::Drop(reason) => println!("lost ({reason:?})"),
//!     FaultVerdict::Deliver { copies, extra_delay } => {
//!         println!("{copies} copies after +{extra_delay}");
//!     }
//! }
//! ```

use obs::{Counter, Registry};
use simcore::{Ctx, DetRng, SimDuration, SimTime};
use wire::Msg;

/// Emit a zero-length `lost` span under the packet's trace (if any), so
/// injected drops show up in the span waterfall instead of vanishing
/// silently. `layer` names the component that ate the packet ("link",
/// "switch", "server", "medium").
pub fn trace_drop(ctx: &mut Ctx<'_, Msg>, packet_id: u64, layer: &'static str, reason: DropReason) {
    let now = ctx.now().as_nanos();
    let tracer = ctx.tracer();
    if let Some(tc) = tracer.packet_ctx(packet_id) {
        let span = tracer.span(tc.trace, Some(tc.root), "lost", "fault", now, now);
        tracer.attr(span, "layer", layer);
        tracer.attr(
            span,
            "reason",
            match reason {
                DropReason::Loss => "loss",
                DropReason::Flap => "flap",
            },
        );
    }
}

/// The loss process of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent per-packet loss with probability `p`.
    Bernoulli(f64),
    /// The classic two-state bursty-loss channel: packets are lost with
    /// `loss_good` in the good state and `loss_bad` in the bad state; the
    /// chain moves good→bad with `p_good_to_bad` and bad→good with
    /// `p_bad_to_good` per packet.
    GilbertElliott {
        /// Transition probability good→bad, per packet.
        p_good_to_bad: f64,
        /// Transition probability bad→good, per packet.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// The long-run average loss rate of the model.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli(p) => p.clamp(0.0, 1.0),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the two-state chain.
                let denom = p_good_to_bad + p_bad_to_good;
                if denom <= 0.0 {
                    return loss_good;
                }
                let pi_bad = p_good_to_bad / denom;
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The loss process fired (random loss).
    Loss,
    /// The packet fell inside a link-flap window (deterministic outage).
    Flap,
}

/// The per-packet decision of a [`FaultState`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultVerdict {
    /// The packet is dropped. It is delivered zero times — a packet is
    /// never both lost and delivered.
    Drop(DropReason),
    /// The packet is delivered `copies` times (1 normally, 2 when the
    /// duplication process fired), the first copy after `extra_delay`
    /// beyond the component's nominal latency (reordering/jitter).
    Deliver {
        /// Number of deliveries (≥ 1; 2 = duplicated).
        copies: u8,
        /// Extra latency added to the nominal delivery time.
        extra_delay: SimDuration,
    },
}

impl FaultVerdict {
    /// Whether the packet is dropped.
    pub fn is_drop(&self) -> bool {
        matches!(self, FaultVerdict::Drop(_))
    }
}

/// A declarative fault specification for one component (link direction,
/// switch, server, or wireless medium). Everything is off by default;
/// build the faults you want with the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The loss process.
    pub loss: LossModel,
    /// Probability a delivered packet is reordered: it is held back by
    /// `reorder_extra_ms`, letting packets behind it overtake.
    pub reorder_prob: f64,
    /// Hold-back applied to reordered packets, ms.
    pub reorder_extra_ms: f64,
    /// Probability a delivered packet is duplicated (delivered twice).
    pub duplicate_prob: f64,
    /// Extra one-way jitter (clamped normal around 0), ms, on top of the
    /// component's own latency model.
    pub jitter_std_ms: f64,
    /// Timed outage windows `[from, to)`: every packet offered inside one
    /// is dropped (`DropReason::Flap`).
    pub flaps: Vec<(SimTime, SimTime)>,
    /// Seed of the plan's private RNG streams. Two states built from
    /// equal plans produce identical verdict sequences.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a sweep baseline).
    pub fn none() -> FaultPlan {
        FaultPlan {
            loss: LossModel::None,
            reorder_prob: 0.0,
            reorder_extra_ms: 0.0,
            duplicate_prob: 0.0,
            jitter_std_ms: 0.0,
            flaps: Vec::new(),
            seed: 0,
        }
    }

    /// Independent (Bernoulli) loss at rate `p`.
    pub fn bernoulli(p: f64) -> FaultPlan {
        FaultPlan {
            loss: LossModel::Bernoulli(p),
            ..FaultPlan::none()
        }
    }

    /// Bursty Gilbert–Elliott loss with long-run rate `mean_loss` and
    /// mean bad-burst length `burst_len` packets. The bad state always
    /// loses (`loss_bad = 1`), the good state never does — the standard
    /// two-parameter Gilbert channel.
    pub fn gilbert_elliott(mean_loss: f64, burst_len: f64) -> FaultPlan {
        let mean_loss = mean_loss.clamp(0.0, 0.95);
        let burst_len = burst_len.max(1.0);
        // pi_bad = mean_loss (loss_bad = 1, loss_good = 0); the mean
        // sojourn in bad is 1/p_bg = burst_len.
        let p_bad_to_good = 1.0 / burst_len;
        let p_good_to_bad = if mean_loss >= 1.0 {
            1.0
        } else {
            p_bad_to_good * mean_loss / (1.0 - mean_loss)
        };
        FaultPlan {
            loss: LossModel::GilbertElliott {
                p_good_to_bad: p_good_to_bad.clamp(0.0, 1.0),
                p_bad_to_good: p_bad_to_good.clamp(0.0, 1.0),
                loss_good: 0.0,
                loss_bad: 1.0,
            },
            ..FaultPlan::none()
        }
    }

    /// Builder: set the loss model explicitly.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Builder: reorder a fraction `prob` of packets by holding them back
    /// `extra_ms`.
    pub fn with_reordering(mut self, prob: f64, extra_ms: f64) -> Self {
        self.reorder_prob = prob;
        self.reorder_extra_ms = extra_ms;
        self
    }

    /// Builder: duplicate a fraction `prob` of delivered packets.
    pub fn with_duplication(mut self, prob: f64) -> Self {
        self.duplicate_prob = prob;
        self
    }

    /// Builder: add extra jitter (std `std_ms`, clamped to `[0, 4·std]`).
    pub fn with_jitter(mut self, std_ms: f64) -> Self {
        self.jitter_std_ms = std_ms;
        self
    }

    /// Builder: add an outage window `[from, to)`.
    pub fn with_flap(mut self, from: SimTime, to: SimTime) -> Self {
        self.flaps.push((from, to));
        self
    }

    /// Builder: seed the plan's private RNG streams.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.loss != LossModel::None
            || self.reorder_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.jitter_std_ms > 0.0
            || !self.flaps.is_empty()
    }
}

/// Counters a [`FaultState`] accumulates (also exported as `fault.*`
/// metrics when [`FaultState::attach_metrics`] is called).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets offered to the fault process.
    pub offered: u64,
    /// Packets dropped by the loss process.
    pub dropped_loss: u64,
    /// Packets dropped inside a flap window.
    pub dropped_flap: u64,
    /// Packets delivered twice.
    pub duplicated: u64,
    /// Packets held back by the reordering process.
    pub reordered: u64,
}

impl FaultStats {
    /// Total drops, any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_flap
    }
}

/// Telemetry handles (`fault.<label>.*`). Defaults to disabled no-ops.
#[derive(Default)]
struct FaultMetrics {
    dropped_loss: Counter,
    dropped_flap: Counter,
    duplicated: Counter,
    reordered: Counter,
}

impl FaultMetrics {
    fn from_registry(reg: &Registry, label: &str) -> FaultMetrics {
        FaultMetrics {
            dropped_loss: reg.counter(&format!("fault.{label}.dropped_loss")),
            dropped_flap: reg.counter(&format!("fault.{label}.dropped_flap")),
            duplicated: reg.counter(&format!("fault.{label}.duplicated")),
            reordered: reg.counter(&format!("fault.{label}.reordered")),
        }
    }
}

/// Number of independent directions a [`FaultState`] tracks (links are
/// two-sided; single-direction users pass `dir = 0`).
pub const FAULT_DIRS: usize = 2;

/// A running instance of a [`FaultPlan`]: Gilbert–Elliott channel state
/// plus a private seeded RNG per direction.
pub struct FaultState {
    plan: FaultPlan,
    /// Per-direction RNG streams, forked from the plan seed so the two
    /// directions are independent but each is individually replayable.
    rng: [DetRng; FAULT_DIRS],
    /// Per-direction Gilbert–Elliott "currently bad" flag.
    bad: [bool; FAULT_DIRS],
    /// Counters.
    pub stats: FaultStats,
    metrics: FaultMetrics,
}

impl FaultState {
    /// Instantiate a plan. Equal plans yield identical verdict streams.
    pub fn new(plan: &FaultPlan) -> FaultState {
        let mut root = DetRng::new(plan.seed ^ 0xFA17_FA17_FA17_FA17);
        let rng = [root.fork(1), root.fork(2)];
        FaultState {
            plan: plan.clone(),
            rng,
            bad: [false; FAULT_DIRS],
            stats: FaultStats::default(),
            metrics: FaultMetrics::default(),
        }
    }

    /// The plan this state runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Register `fault.<label>.*` counters in `reg`. Without this call
    /// every metric handle is a disabled no-op.
    pub fn attach_metrics(&mut self, reg: &Registry, label: &str) {
        self.metrics = FaultMetrics::from_registry(reg, label);
    }

    /// Whether `now` falls inside a flap window.
    pub fn in_flap(&self, now: SimTime) -> bool {
        self.plan.flaps.iter().any(|&(a, b)| now >= a && now < b)
    }

    fn loss_fires(&mut self, dir: usize) -> bool {
        let dir = dir % FAULT_DIRS;
        match self.plan.loss {
            LossModel::None => false,
            LossModel::Bernoulli(p) => self.rng[dir].chance(p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Transition first, then sample loss in the new state, so
                // a burst begins with the packet that flipped the chain.
                let flip = if self.bad[dir] {
                    self.rng[dir].chance(p_bad_to_good)
                } else {
                    self.rng[dir].chance(p_good_to_bad)
                };
                if flip {
                    self.bad[dir] = !self.bad[dir];
                }
                let p = if self.bad[dir] { loss_bad } else { loss_good };
                self.rng[dir].chance(p)
            }
        }
    }

    /// Decide the fate of one packet offered in direction `dir` at `now`.
    ///
    /// Exactly one of the invariants holds for every offered packet:
    /// dropped (0 deliveries) or delivered `copies ≥ 1` times — never
    /// both. The RNG draw order is fixed (loss → duplicate → reorder →
    /// jitter) so verdict streams replay exactly.
    pub fn decide(&mut self, dir: usize, now: SimTime) -> FaultVerdict {
        self.stats.offered += 1;
        if self.in_flap(now) {
            self.stats.dropped_flap += 1;
            self.metrics.dropped_flap.inc();
            return FaultVerdict::Drop(DropReason::Flap);
        }
        if self.loss_fires(dir) {
            self.stats.dropped_loss += 1;
            self.metrics.dropped_loss.inc();
            return FaultVerdict::Drop(DropReason::Loss);
        }
        let dir = dir % FAULT_DIRS;
        let copies =
            if self.plan.duplicate_prob > 0.0 && self.rng[dir].chance(self.plan.duplicate_prob) {
                self.stats.duplicated += 1;
                self.metrics.duplicated.inc();
                2
            } else {
                1
            };
        let mut extra_ms = 0.0;
        if self.plan.reorder_prob > 0.0 && self.rng[dir].chance(self.plan.reorder_prob) {
            self.stats.reordered += 1;
            self.metrics.reordered.inc();
            extra_ms += self.plan.reorder_extra_ms;
        }
        if self.plan.jitter_std_ms > 0.0 {
            extra_ms += self.rng[dir].normal_clamped(
                0.0,
                self.plan.jitter_std_ms,
                0.0,
                self.plan.jitter_std_ms * 4.0,
            );
        }
        FaultVerdict::Deliver {
            copies,
            extra_delay: SimDuration::from_ms_f64(extra_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_stream(plan: &FaultPlan, n: usize) -> Vec<FaultVerdict> {
        let mut st = FaultState::new(plan);
        (0..n).map(|i| st.decide(i % 2, SimTime::ZERO)).collect()
    }

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let mut st = FaultState::new(&plan);
        for _ in 0..100 {
            assert_eq!(
                st.decide(0, SimTime::ZERO),
                FaultVerdict::Deliver {
                    copies: 1,
                    extra_delay: SimDuration::ZERO
                }
            );
        }
        assert_eq!(st.stats.offered, 100);
        assert_eq!(st.stats.dropped(), 0);
    }

    #[test]
    fn gilbert_elliott_same_plan_is_byte_identical() {
        // Same plan ⇒ byte-identical event stream (the determinism
        // contract the `repro faults` sweep depends on).
        let plan = FaultPlan::gilbert_elliott(0.2, 4.0)
            .with_duplication(0.05)
            .with_reordering(0.1, 3.0)
            .with_jitter(0.5)
            .with_seed(42);
        assert_eq!(verdict_stream(&plan, 5000), verdict_stream(&plan, 5000));
        // And a different seed gives a different stream.
        let other = plan.clone().with_seed(43);
        assert_ne!(verdict_stream(&plan, 5000), verdict_stream(&other, 5000));
    }

    #[test]
    fn bernoulli_rate_is_close() {
        let plan = FaultPlan::bernoulli(0.25).with_seed(9);
        let mut st = FaultState::new(&plan);
        let n = 20_000;
        for _ in 0..n {
            st.decide(0, SimTime::ZERO);
        }
        let rate = st.stats.dropped_loss as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn gilbert_elliott_mean_rate_and_bursts() {
        let plan = FaultPlan::gilbert_elliott(0.2, 5.0).with_seed(3);
        assert!((plan.loss.mean_loss() - 0.2).abs() < 1e-9);
        let mut st = FaultState::new(&plan);
        let n = 50_000;
        let mut drops = Vec::with_capacity(n);
        for _ in 0..n {
            drops.push(st.decide(0, SimTime::ZERO).is_drop());
        }
        let rate = drops.iter().filter(|&&d| d).count() as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "rate={rate}");
        // Burstiness: mean run length of consecutive drops well above 1
        // (a Bernoulli channel at the same rate would sit near 1.25).
        let mut runs = Vec::new();
        let mut cur = 0usize;
        for &d in &drops {
            if d {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(mean_run > 2.5, "mean burst {mean_run}");
    }

    #[test]
    fn drop_and_deliver_are_exclusive() {
        // No packet is both lost and delivered: every verdict is either
        // Drop (0 copies) or Deliver with copies >= 1.
        let plan = FaultPlan::gilbert_elliott(0.3, 3.0)
            .with_duplication(0.2)
            .with_reordering(0.2, 2.0)
            .with_seed(11);
        let mut st = FaultState::new(&plan);
        let mut delivered = 0u64;
        for _ in 0..10_000 {
            match st.decide(0, SimTime::ZERO) {
                FaultVerdict::Drop(_) => {}
                FaultVerdict::Deliver { copies, .. } => {
                    assert!(copies >= 1);
                    delivered += 1;
                }
            }
        }
        assert_eq!(st.stats.offered, 10_000);
        assert_eq!(delivered + st.stats.dropped(), 10_000);
        // Duplicates/reorders only happen to delivered packets.
        assert!(st.stats.duplicated <= delivered);
        assert!(st.stats.reordered <= delivered);
    }

    #[test]
    fn flap_window_drops_everything_inside() {
        let plan = FaultPlan::none()
            .with_flap(SimTime::from_millis(100), SimTime::from_millis(200))
            .with_seed(1);
        assert!(plan.is_active());
        let mut st = FaultState::new(&plan);
        assert!(!st.decide(0, SimTime::from_millis(99)).is_drop());
        assert_eq!(
            st.decide(0, SimTime::from_millis(100)),
            FaultVerdict::Drop(DropReason::Flap)
        );
        assert_eq!(
            st.decide(1, SimTime::from_millis(199)),
            FaultVerdict::Drop(DropReason::Flap)
        );
        assert!(!st.decide(0, SimTime::from_millis(200)).is_drop());
        assert_eq!(st.stats.dropped_flap, 2);
    }

    #[test]
    fn directions_are_independent_streams() {
        let plan = FaultPlan::bernoulli(0.5).with_seed(21);
        // Consuming draws in dir 0 must not change dir 1's stream.
        let mut a = FaultState::new(&plan);
        let mut b = FaultState::new(&plan);
        for _ in 0..100 {
            a.decide(0, SimTime::ZERO);
        }
        let sa: Vec<_> = (0..100).map(|_| a.decide(1, SimTime::ZERO)).collect();
        let sb: Vec<_> = (0..100).map(|_| b.decide(1, SimTime::ZERO)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn duplication_fires_at_rate() {
        let plan = FaultPlan::none().with_duplication(0.3).with_seed(5);
        let mut st = FaultState::new(&plan);
        let mut copies = 0u64;
        for _ in 0..10_000 {
            if let FaultVerdict::Deliver { copies: c, .. } = st.decide(0, SimTime::ZERO) {
                copies += u64::from(c);
            }
        }
        let rate = (copies - 10_000) as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "dup rate={rate}");
    }

    #[test]
    fn reorder_adds_the_configured_holdback() {
        let plan = FaultPlan::none().with_reordering(1.0, 7.5).with_seed(2);
        let mut st = FaultState::new(&plan);
        match st.decide(0, SimTime::ZERO) {
            FaultVerdict::Deliver { extra_delay, .. } => {
                assert_eq!(extra_delay, SimDuration::from_us_f64(7500.0));
            }
            v => panic!("unexpected {v:?}"),
        }
        assert_eq!(st.stats.reordered, 1);
    }

    #[test]
    fn metrics_exported_under_label() {
        let reg = Registry::new();
        let plan = FaultPlan::bernoulli(1.0).with_seed(1);
        let mut st = FaultState::new(&plan);
        st.attach_metrics(&reg, "server");
        st.decide(0, SimTime::ZERO);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("fault.server.dropped_loss"), Some(1));
    }
}
