//! # netem — the wired-network substrate
//!
//! The fixed half of the Fig. 2 testbed:
//!
//! * [`LinkNode`]: delay/jitter/loss links — the `tc netem` the paper uses
//!   to emulate 20–135 ms paths on the server side;
//! * [`SwitchNode`]: destination-routed forwarding;
//! * [`ServerNode`]: the measurement server (ICMP echo, TCP SYN/ACK and
//!   RST, HTTP-style data responses, UDP echo/discard);
//! * [`UdpBlasterNode`]: the iPerf-style cross-traffic generator of §4.3
//!   (10 × 2.5 Mbit/s UDP flows).
//!
//! ```
//! use netem::{LinkNode, LinkParams, ServerConfig, ServerNode};
//! use simcore::{Sim, SimTime};
//! use wire::{IcmpKind, Ip, Msg, Packet, PacketTag, L4};
//!
//! // Client -> 15 ms link -> server; the server echoes the ping.
//! let mut sim: Sim<Msg> = Sim::new(1);
//! struct Client(Option<SimTime>);
//! impl simcore::Node<Msg> for Client {
//!     fn on_message(&mut self, ctx: &mut simcore::Ctx<'_, Msg>, _: simcore::NodeId, m: Msg) {
//!         if matches!(m, Msg::Wire(_)) { self.0 = Some(ctx.now()); }
//!     }
//! }
//! let client = sim.add_node(Box::new(Client(None)));
//! let server_ip = Ip::new(10, 0, 0, 1);
//! let server = sim.add_node(Box::new(ServerNode::new(9, ServerConfig::standard(server_ip))));
//! let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(15))));
//! sim.node_mut::<LinkNode>(link).connect(client, server);
//! let ping = Packet {
//!     id: 1, src: Ip::new(10, 0, 0, 9), dst: server_ip, ttl: 64,
//!     l4: L4::Icmp { kind: IcmpKind::EchoRequest, ident: 7, seq: 0 },
//!     payload_len: 56, tag: PacketTag::Probe(0),
//! };
//! sim.inject(client, link, SimTime::ZERO, Msg::Wire(ping));
//! sim.run_until_idle(100);
//! let rtt = sim.node::<Client>(client).0.expect("echo came back");
//! assert!(rtt >= SimTime::from_millis(30)); // 2 × 15 ms + processing
//! ```

#![warn(missing_docs)]

mod fault;
mod link;
mod load;
mod server;
mod switch;

pub use fault::{
    trace_drop, DropReason, FaultPlan, FaultState, FaultStats, FaultVerdict, LossModel, FAULT_DIRS,
};
pub use link::{LinkNode, LinkParams, LinkStats};
pub use load::{LoadConfig, UdpBlasterNode};
pub use server::{ServerConfig, ServerNode, ServerStats};
pub use switch::SwitchNode;
