//! Emulated wired links: fixed delay, jitter, and loss — the `tc netem`
//! of the testbed. The paper adds delay on the server side to emulate
//! nRTTs of 20–135 ms; experiments here do the same with a [`LinkNode`]
//! in front of the measurement server.

use crate::fault::{trace_drop, FaultPlan, FaultState, FaultVerdict};
use obs::{Counter, Gauge, Registry};
use simcore::{Ctx, LatencyDist, Node, NodeId, SimDuration};
use wire::Msg;

/// Telemetry handles for one link (`netem.link.<label>.*`). Defaults to
/// disabled no-op handles.
#[derive(Default)]
struct LinkMetrics {
    forwarded: Counter,
    lost: Counter,
    /// Serialization backlog on the wire after the most recent enqueue,
    /// µs (0 when the link is unlimited).
    occupancy_us: Gauge,
}

impl LinkMetrics {
    fn from_registry(reg: &Registry, label: &str) -> LinkMetrics {
        LinkMetrics {
            forwarded: reg.counter(&format!("netem.link.{label}.forwarded")),
            lost: reg.counter(&format!("netem.link.{label}.lost")),
            occupancy_us: reg.gauge(&format!("netem.link.{label}.occupancy_us")),
        }
    }
}

/// Link parameters.
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// One-way fixed delay.
    pub delay: SimDuration,
    /// Additional one-way jitter in ms (clamped normal around 0).
    pub jitter_std_ms: f64,
    /// Packet loss probability per direction.
    pub loss: f64,
    /// Serialization rate limit in Mbit/s (`None` = unlimited). Packets
    /// occupy the wire for `size/rate` and queue FIFO behind each other
    /// per direction — the `tc tbf` of the testbed.
    pub rate_mbps: Option<f64>,
}

impl LinkParams {
    /// An ideal (zero-delay, lossless) link.
    pub fn ideal() -> LinkParams {
        LinkParams {
            delay: SimDuration::ZERO,
            jitter_std_ms: 0.0,
            loss: 0.0,
            rate_mbps: None,
        }
    }

    /// A link adding `ms` of one-way delay (use `rtt/2` per side to
    /// emulate a symmetric path).
    pub fn delay_ms(ms: u64) -> LinkParams {
        LinkParams {
            delay: SimDuration::from_millis(ms),
            jitter_std_ms: 0.0,
            loss: 0.0,
            rate_mbps: None,
        }
    }

    /// Builder: cap the link's serialization rate.
    pub fn with_rate_mbps(mut self, mbps: f64) -> LinkParams {
        self.rate_mbps = Some(mbps);
        self
    }
}

/// Counters for a link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped by the loss process.
    pub lost: u64,
}

/// A two-sided wired link. Packets arriving from endpoint `a` exit at `b`
/// after the configured delay, and vice versa. Packets from any other
/// node are rejected (a wiring bug).
pub struct LinkNode {
    params: LinkParams,
    a: Option<NodeId>,
    b: Option<NodeId>,
    /// Per-direction wire occupancy (a→b, b→a) for the rate limiter.
    busy_until: [simcore::SimTime; 2],
    /// Injected faults (loss/reorder/duplicate/jitter/flap), if any.
    fault: Option<FaultState>,
    /// Counters.
    pub stats: LinkStats,
    metrics: LinkMetrics,
}

impl LinkNode {
    /// Create an unconnected link.
    pub fn new(params: LinkParams) -> LinkNode {
        LinkNode {
            params,
            a: None,
            b: None,
            busy_until: [simcore::SimTime::ZERO; 2],
            fault: None,
            stats: LinkStats::default(),
            metrics: LinkMetrics::default(),
        }
    }

    /// Register this link's telemetry as `netem.link.<label>.*` in `reg`.
    /// Without this call every metric handle is a disabled no-op.
    pub fn attach_metrics(&mut self, reg: &Registry, label: &str) {
        self.metrics = LinkMetrics::from_registry(reg, label);
    }

    /// Install a fault plan (replacing any previous one). The plan's own
    /// seed drives its verdicts, so the link's behavior under faults is
    /// independent of the engine's shared RNG stream.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault = plan.is_active().then(|| FaultState::new(plan));
    }

    /// Register the fault layer's counters as `fault.<label>.*` in `reg`.
    /// Call after [`LinkNode::set_fault_plan`].
    pub fn attach_fault_metrics(&mut self, reg: &Registry, label: &str) {
        if let Some(fault) = &mut self.fault {
            fault.attach_metrics(reg, label);
        }
    }

    /// Fault-layer counters, if a plan is installed.
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.fault.as_ref().map(|f| f.stats)
    }

    /// Connect the two endpoints.
    pub fn connect(&mut self, a: NodeId, b: NodeId) {
        self.a = Some(a);
        self.b = Some(b);
    }

    fn one_way(&mut self, ctx: &mut Ctx<'_, Msg>) -> SimDuration {
        let jitter = if self.params.jitter_std_ms > 0.0 {
            let dist = LatencyDist::normal(
                0.0,
                self.params.jitter_std_ms,
                0.0,
                self.params.jitter_std_ms * 4.0,
            );
            dist.sample(ctx.rng())
        } else {
            SimDuration::ZERO
        };
        self.params.delay + jitter
    }
}

impl Node<Msg> for LinkNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        let Msg::Wire(packet) = msg else {
            debug_assert!(false, "link got non-wire message");
            return;
        };
        let out = if Some(from) == self.a {
            self.b
        } else if Some(from) == self.b {
            self.a
        } else {
            debug_assert!(false, "link got packet from unconnected node {from:?}");
            None
        };
        let Some(out) = out else { return };
        let dir = usize::from(Some(from) == self.b);
        let loss = self.params.loss;
        if loss > 0.0 && ctx.rng().chance(loss) {
            self.stats.lost += 1;
            self.metrics.lost.inc();
            return;
        }
        // The injected fault layer sits behind the intrinsic loss model:
        // its verdict either drops the packet (never delivered) or
        // delivers `copies ≥ 1` with extra latency.
        let verdict = match &mut self.fault {
            Some(fault) => fault.decide(dir, ctx.now()),
            None => FaultVerdict::Deliver {
                copies: 1,
                extra_delay: SimDuration::ZERO,
            },
        };
        let (copies, extra_delay) = match verdict {
            FaultVerdict::Drop(reason) => {
                self.stats.lost += 1;
                self.metrics.lost.inc();
                trace_drop(ctx, packet.id, "link", reason);
                return;
            }
            FaultVerdict::Deliver {
                copies,
                extra_delay,
            } => (copies, extra_delay),
        };
        self.stats.forwarded += 1;
        self.metrics.forwarded.inc();
        let mut d = self.one_way(ctx) + extra_delay;
        if let Some(rate) = self.params.rate_mbps {
            // Serialization: the packet occupies the wire for size/rate
            // and queues FIFO behind whatever is already on it.
            let now = ctx.now();
            let xmit = SimDuration::from_us_f64(packet.wire_len() as f64 * 8.0 / rate);
            let start = self.busy_until[dir].max(now);
            self.busy_until[dir] = start + xmit;
            let backlog = self.busy_until[dir].saturating_since(now);
            self.metrics
                .occupancy_us
                .set((backlog.as_nanos() / 1_000) as i64);
            d += backlog;
        }
        let tracer = ctx.tracer();
        if let Some(tc) = tracer.packet_ctx(packet.id) {
            let now = ctx.now();
            tracer.span(
                tc.trace,
                Some(tc.root),
                "link",
                "net",
                now.as_nanos(),
                (now + d).as_nanos(),
            );
        }
        for _ in 1..copies {
            ctx.send(out, d, Msg::Wire(packet));
        }
        ctx.send(out, d, Msg::Wire(packet));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Sim, SimTime};
    use wire::{Ip, Packet, PacketTag, L4};

    struct Sink {
        got: Vec<(SimTime, u64)>,
    }
    impl Node<Msg> for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Wire(p) = msg {
                self.got.push((ctx.now(), p.id));
            }
        }
    }

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            src: Ip::new(10, 0, 0, 2),
            dst: Ip::new(10, 0, 0, 1),
            ttl: 64,
            l4: L4::Udp {
                src_port: 1,
                dst_port: 2,
            },
            payload_len: 0,
            tag: PacketTag::Other,
        }
    }

    #[test]
    fn forwards_with_delay_both_ways() {
        let mut sim = Sim::new(0);
        let a = sim.add_node(Box::new(Sink { got: vec![] }));
        let b = sim.add_node(Box::new(Sink { got: vec![] }));
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(15))));
        sim.node_mut::<LinkNode>(link).connect(a, b);
        sim.inject(a, link, SimTime::ZERO, Msg::Wire(pkt(1)));
        sim.inject(b, link, SimTime::from_millis(1), Msg::Wire(pkt(2)));
        sim.run_until_idle(100);
        assert_eq!(sim.node::<Sink>(b).got, vec![(SimTime::from_millis(15), 1)]);
        assert_eq!(sim.node::<Sink>(a).got, vec![(SimTime::from_millis(16), 2)]);
    }

    #[test]
    fn lossy_link_drops() {
        let mut sim = Sim::new(1);
        let a = sim.add_node(Box::new(Sink { got: vec![] }));
        let b = sim.add_node(Box::new(Sink { got: vec![] }));
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams {
            delay: SimDuration::ZERO,
            jitter_std_ms: 0.0,
            loss: 0.5,
            rate_mbps: None,
        })));
        sim.node_mut::<LinkNode>(link).connect(a, b);
        for i in 0..200 {
            sim.inject(a, link, SimTime::ZERO, Msg::Wire(pkt(i)));
        }
        sim.run_until_idle(1000);
        let delivered = sim.node::<Sink>(b).got.len();
        assert!((60..140).contains(&delivered), "delivered={delivered}");
        let st = sim.node::<LinkNode>(link).stats;
        assert_eq!(st.forwarded + st.lost, 200);
    }

    #[test]
    fn rate_limit_serializes_and_queues() {
        let mut sim = Sim::new(3);
        let a = sim.add_node(Box::new(Sink { got: vec![] }));
        let b = sim.add_node(Box::new(Sink { got: vec![] }));
        // 8 Mbit/s: a 28-byte datagram (224 bits) takes 28 µs on the wire.
        let link = sim.add_node(Box::new(LinkNode::new(
            LinkParams::delay_ms(0).with_rate_mbps(8.0),
        )));
        sim.node_mut::<LinkNode>(link).connect(a, b);
        for i in 0..10 {
            sim.inject(a, link, SimTime::ZERO, Msg::Wire(pkt(i)));
        }
        sim.run_until_idle(100);
        let got = &sim.node::<Sink>(b).got;
        assert_eq!(got.len(), 10);
        // Arrivals spaced by exactly one serialization time.
        for w in got.windows(2) {
            let gap = w[1].0 - w[0].0;
            assert_eq!(gap, SimDuration::from_micros(28), "{gap}");
        }
        // And the reverse direction is independent: a packet b→a at t=0
        // would not queue behind a's burst.
        sim.inject(b, link, sim.now(), Msg::Wire(pkt(99)));
        let t0 = sim.now();
        sim.run_until_idle(100);
        let back = sim.node::<Sink>(a).got.last().unwrap().0;
        assert_eq!(back - t0, SimDuration::from_micros(28));
    }

    #[test]
    fn fault_plan_drops_and_duplicates_on_link() {
        use crate::fault::FaultPlan;
        let mut sim = Sim::new(7);
        let a = sim.add_node(Box::new(Sink { got: vec![] }));
        let b = sim.add_node(Box::new(Sink { got: vec![] }));
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(1))));
        sim.node_mut::<LinkNode>(link).connect(a, b);
        let plan = FaultPlan::bernoulli(0.4).with_duplication(0.2).with_seed(5);
        sim.node_mut::<LinkNode>(link).set_fault_plan(&plan);
        for i in 0..500 {
            sim.inject(a, link, SimTime::ZERO, Msg::Wire(pkt(i)));
        }
        sim.run_until_idle(1000);
        let st = sim.node::<LinkNode>(link).stats;
        let fs = sim.node::<LinkNode>(link).fault_stats().unwrap();
        assert_eq!(fs.offered, 500);
        assert_eq!(st.forwarded + st.lost, 500);
        assert_eq!(st.lost, fs.dropped());
        // Every arrival is either a unique forwarded packet or a duplicate.
        let arrivals = sim.node::<Sink>(b).got.len() as u64;
        assert_eq!(arrivals, st.forwarded + fs.duplicated);
        assert!((150..250).contains(&st.lost), "lost={}", st.lost);
    }

    #[test]
    fn fault_plan_replays_identically_on_link() {
        use crate::fault::FaultPlan;
        let run = |engine_seed: u64| {
            let mut sim = Sim::new(engine_seed);
            let a = sim.add_node(Box::new(Sink { got: vec![] }));
            let b = sim.add_node(Box::new(Sink { got: vec![] }));
            let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(1))));
            sim.node_mut::<LinkNode>(link).connect(a, b);
            let plan = FaultPlan::gilbert_elliott(0.3, 4.0).with_seed(99);
            sim.node_mut::<LinkNode>(link).set_fault_plan(&plan);
            for i in 0..300 {
                sim.inject(a, link, SimTime::ZERO, Msg::Wire(pkt(i)));
            }
            sim.run_until_idle(1000);
            sim.node::<Sink>(b)
                .got
                .iter()
                .map(|g| g.1)
                .collect::<Vec<_>>()
        };
        // Same plan seed ⇒ identical delivered-id stream, even under a
        // different *engine* seed: the fault layer owns its randomness.
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn flap_window_silences_link_then_recovers() {
        use crate::fault::FaultPlan;
        let mut sim = Sim::new(0);
        let a = sim.add_node(Box::new(Sink { got: vec![] }));
        let b = sim.add_node(Box::new(Sink { got: vec![] }));
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams::delay_ms(1))));
        sim.node_mut::<LinkNode>(link).connect(a, b);
        let plan = FaultPlan::none().with_flap(SimTime::from_millis(10), SimTime::from_millis(20));
        sim.node_mut::<LinkNode>(link).set_fault_plan(&plan);
        for (i, t) in [(1u64, 5u64), (2, 15), (3, 25)] {
            sim.inject(a, link, SimTime::from_millis(t), Msg::Wire(pkt(i)));
        }
        sim.run_until_idle(100);
        let ids: Vec<u64> = sim.node::<Sink>(b).got.iter().map(|g| g.1).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn jitter_spreads_arrivals() {
        let mut sim = Sim::new(2);
        let a = sim.add_node(Box::new(Sink { got: vec![] }));
        let b = sim.add_node(Box::new(Sink { got: vec![] }));
        let link = sim.add_node(Box::new(LinkNode::new(LinkParams {
            delay: SimDuration::from_millis(10),
            jitter_std_ms: 2.0,
            loss: 0.0,
            rate_mbps: None,
        })));
        sim.node_mut::<LinkNode>(link).connect(a, b);
        for i in 0..50 {
            sim.inject(a, link, SimTime::ZERO, Msg::Wire(pkt(i)));
        }
        sim.run_until_idle(1000);
        let times: Vec<SimTime> = sim.node::<Sink>(b).got.iter().map(|g| g.0).collect();
        let min = times.iter().min().unwrap();
        let max = times.iter().max().unwrap();
        assert!(*min >= SimTime::from_millis(10));
        assert!(*max > *min, "jitter should spread arrivals");
    }
}
