//! The iPerf-style load generator (§4.3): a UDP blaster that saturates the
//! WiFi channel with cross traffic.
//!
//! The paper's load generator opens 10 connections, each sending UDP at
//! 2.5 Mbit/s — 25 Mbit/s aggregate into a channel whose UDP capacity is
//! below 20 Mbit/s, so the network congests and the observed goodput drops
//! to ~10 Mbit/s. The blaster reproduces the aggregate arrival process:
//! `flows` staggered constant-bit-rate streams of `payload` bytes.

use simcore::{Ctx, Node, NodeId, SimDuration, SimTime};
use wire::{Ip, Msg, Packet, PacketIdGen, PacketTag, L4};

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Source IP (the wireless load generator).
    pub src: Ip,
    /// Destination IP (the fixed load server).
    pub dst: Ip,
    /// Destination UDP port (a discard port on the load server).
    pub dst_port: u16,
    /// Number of parallel flows.
    pub flows: u32,
    /// Per-flow rate in Mbit/s.
    pub rate_mbps_per_flow: f64,
    /// UDP payload bytes per datagram.
    pub payload: usize,
    /// When to start blasting.
    pub start: SimTime,
    /// When to stop.
    pub stop: SimTime,
    /// Emission scheduling: `true` drives every datagram off its own
    /// per-flow timer (one timer dispatch per packet — the reference
    /// path); `false` uses the batched fast path, where a single timer
    /// fires once per gap period and schedules the whole period's
    /// datagrams (all flows) at their exact per-packet instants via
    /// `send_at`. Packet ids, emission times, and emission order are
    /// identical; the batched path just spends one timer dispatch per
    /// period instead of one per packet. Campaign byte-identity between
    /// the two is asserted by the fleet equivalence tests and CI.
    pub per_packet: bool,
}

impl LoadConfig {
    /// The paper's cross-traffic setting: 10 × 2.5 Mbit/s UDP, 1470-byte
    /// datagrams.
    pub fn paper_cross_traffic(src: Ip, dst: Ip, stop: SimTime) -> LoadConfig {
        LoadConfig {
            src,
            dst,
            dst_port: 5001,
            flows: 10,
            rate_mbps_per_flow: 2.5,
            payload: 1470,
            start: SimTime::ZERO,
            stop,
            per_packet: true,
        }
    }

    /// Switch to the batched emission fast path (see
    /// [`LoadConfig::per_packet`]).
    pub fn batched(mut self) -> LoadConfig {
        self.per_packet = false;
        self
    }
}

/// The blaster node: emits `Msg::Wire` packets to its NIC (`via`, usually
/// a CAM-mode `phy80211::StaMacNode`) on a CBR schedule per flow.
pub struct UdpBlasterNode {
    cfg: LoadConfig,
    via: NodeId,
    ids: PacketIdGen,
    /// Packets emitted.
    pub sent: u64,
}

impl UdpBlasterNode {
    /// Create a blaster; `source` seeds the packet-id space.
    pub fn new(source: u32, cfg: LoadConfig, via: NodeId) -> UdpBlasterNode {
        UdpBlasterNode {
            cfg,
            via,
            ids: PacketIdGen::new(source),
            sent: 0,
        }
    }

    /// Re-point the NIC (wiring order helper).
    pub fn set_via(&mut self, via: NodeId) {
        self.via = via;
    }

    fn gap(&self) -> SimDuration {
        // Per-flow inter-packet gap for the configured CBR.
        let bits = self.cfg.payload as f64 * 8.0;
        let secs = bits / (self.cfg.rate_mbps_per_flow * 1e6);
        SimDuration::from_nanos((secs * 1e9) as u64)
    }

    /// Per-flow start offset within a gap period (flows are staggered
    /// across one gap so the aggregate is a smooth CBR rather than
    /// synchronized bursts). Offsets are distinct, so two flows never
    /// emit at the same nanosecond — which is what lets the batched
    /// path reproduce the per-packet emission order exactly.
    fn offset(&self, flow: u32) -> SimDuration {
        SimDuration::from_nanos(
            self.gap().as_nanos() * u64::from(flow) / u64::from(self.cfg.flows.max(1)),
        )
    }

    fn next_packet(&mut self, flow: u32) -> Packet {
        self.sent += 1;
        Packet {
            id: self.ids.next_id(),
            src: self.cfg.src,
            dst: self.cfg.dst,
            ttl: 64,
            l4: L4::Udp {
                src_port: 30_000 + flow as u16,
                dst_port: self.cfg.dst_port,
            },
            payload_len: self.cfg.payload,
            tag: PacketTag::CrossTraffic,
        }
    }

    fn emit(&mut self, ctx: &mut Ctx<'_, Msg>, flow: u32) {
        let packet = self.next_packet(flow);
        ctx.send(self.via, SimDuration::ZERO, Msg::Wire(packet));
    }

    /// Batched fast path: called once per gap period at the period
    /// start; schedules every flow's datagram for this period at its
    /// exact per-packet instant. Flow offsets ascend, so ids are
    /// assigned in emission-time order — the same id↔packet mapping
    /// the per-packet path produces.
    fn emit_period(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let period_start = ctx.now();
        for flow in 0..self.cfg.flows {
            let at = period_start + self.offset(flow);
            if at >= self.cfg.stop {
                break;
            }
            let packet = self.next_packet(flow);
            ctx.send_at(self.via, at, Msg::Wire(packet));
        }
    }
}

impl Node<Msg> for UdpBlasterNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.cfg.per_packet {
            for flow in 0..self.cfg.flows {
                let first = self.cfg.start + self.offset(flow);
                let delay = first.saturating_since(ctx.now());
                ctx.set_timer(delay, u64::from(flow));
            }
        } else {
            // Batched: one timer per gap period, firing at period start.
            let delay = self.cfg.start.saturating_since(ctx.now());
            ctx.set_timer(delay, 0);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {
        // Ignore deliveries (ICMP errors, echoes): a blaster only sends.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if ctx.now() >= self.cfg.stop {
            return;
        }
        let gap = self.gap();
        if self.cfg.per_packet {
            self.emit(ctx, tag as u32);
        } else {
            self.emit_period(ctx);
        }
        ctx.set_timer(gap, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    struct Counter {
        n: u64,
        bytes: u64,
        first: Option<SimTime>,
        last: Option<SimTime>,
    }
    impl Node<Msg> for Counter {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Wire(p) = msg {
                self.n += 1;
                self.bytes += p.payload_len as u64;
                self.first.get_or_insert(ctx.now());
                self.last = Some(ctx.now());
            }
        }
    }

    #[test]
    fn aggregate_rate_matches_config() {
        let mut sim = Sim::new(0);
        let sink = sim.add_node(Box::new(Counter {
            n: 0,
            bytes: 0,
            first: None,
            last: None,
        }));
        let cfg = LoadConfig::paper_cross_traffic(
            Ip::new(192, 168, 1, 101),
            Ip::new(10, 0, 0, 2),
            SimTime::from_secs(1),
        );
        let blaster = sim.add_node(Box::new(UdpBlasterNode::new(60, cfg, sink)));
        sim.run_until(SimTime::from_secs(1));
        let c = sim.node::<Counter>(sink);
        // 25 Mbit/s for 1 s = 3.125 MB ≈ 2126 datagrams of 1470 B.
        let mbps = c.bytes as f64 * 8.0 / 1e6;
        assert!((mbps - 25.0).abs() < 1.5, "rate={mbps} Mbps");
        assert_eq!(c.n, sim.node::<UdpBlasterNode>(blaster).sent);
    }

    #[test]
    fn stops_at_configured_time() {
        let mut sim = Sim::new(0);
        let sink = sim.add_node(Box::new(Counter {
            n: 0,
            bytes: 0,
            first: None,
            last: None,
        }));
        let mut cfg = LoadConfig::paper_cross_traffic(
            Ip::new(192, 168, 1, 101),
            Ip::new(10, 0, 0, 2),
            SimTime::from_millis(100),
        );
        cfg.start = SimTime::from_millis(50);
        sim.add_node(Box::new(UdpBlasterNode::new(60, cfg, sink)));
        sim.run_until(SimTime::from_secs(1));
        let c = sim.node::<Counter>(sink);
        assert!(c.first.unwrap() >= SimTime::from_millis(50));
        assert!(c.last.unwrap() <= SimTime::from_millis(101));
        assert!(c.n > 0);
    }

    /// Record of everything a sink can observe about an emission.
    fn observed(per_packet: bool, start_ms: u64, stop_ms: u64) -> Vec<(SimTime, u64, u16, u64)> {
        struct Recorder {
            seen: Vec<(SimTime, u64, u16, u64)>,
        }
        impl Node<Msg> for Recorder {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
                if let Msg::Wire(p) = msg {
                    let port = match p.l4 {
                        wire::L4::Udp { src_port, .. } => src_port,
                        _ => 0,
                    };
                    self.seen
                        .push((ctx.now(), p.id, port, p.payload_len as u64));
                }
            }
        }
        let mut sim = Sim::new(0);
        let sink = sim.add_node(Box::new(Recorder { seen: vec![] }));
        let mut cfg = LoadConfig::paper_cross_traffic(
            Ip::new(192, 168, 1, 101),
            Ip::new(10, 0, 0, 2),
            SimTime::from_millis(stop_ms),
        );
        cfg.start = SimTime::from_millis(start_ms);
        cfg.per_packet = per_packet;
        sim.add_node(Box::new(UdpBlasterNode::new(60, cfg, sink)));
        sim.run_until(SimTime::from_secs(10));
        sim.node::<Recorder>(sink).seen.clone()
    }

    #[test]
    fn batched_emissions_are_identical_to_per_packet() {
        // The batched path must reproduce the per-packet emission
        // process exactly: same instants, same packet ids, same flow
        // (src port) order — including around start/stop edges.
        for (start_ms, stop_ms) in [(0, 200), (50, 103), (7, 8)] {
            let reference = observed(true, start_ms, stop_ms);
            let batched = observed(false, start_ms, stop_ms);
            assert!(!reference.is_empty());
            assert_eq!(
                reference, batched,
                "batched emission stream diverged (start={start_ms}ms stop={stop_ms}ms)"
            );
        }
    }

    #[test]
    fn flows_are_staggered() {
        let mut sim = Sim::new(0);
        let sink = sim.add_node(Box::new(Counter {
            n: 0,
            bytes: 0,
            first: None,
            last: None,
        }));
        let cfg = LoadConfig::paper_cross_traffic(
            Ip::new(192, 168, 1, 101),
            Ip::new(10, 0, 0, 2),
            SimTime::from_millis(20),
        );
        sim.add_node(Box::new(UdpBlasterNode::new(60, cfg, sink)));
        sim.run_until(SimTime::from_millis(20));
        // 10 flows at 2.5 Mbps / 1470 B: per-flow gap 4.7 ms; in 20 ms we
        // expect roughly 10 * (20/4.7) ≈ 42 packets, spread out.
        let c = sim.node::<Counter>(sink);
        assert!(c.n >= 30 && c.n <= 60, "n={}", c.n);
    }
}
