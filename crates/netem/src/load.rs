//! The iPerf-style load generator (§4.3): a UDP blaster that saturates the
//! WiFi channel with cross traffic.
//!
//! The paper's load generator opens 10 connections, each sending UDP at
//! 2.5 Mbit/s — 25 Mbit/s aggregate into a channel whose UDP capacity is
//! below 20 Mbit/s, so the network congests and the observed goodput drops
//! to ~10 Mbit/s. The blaster reproduces the aggregate arrival process:
//! `flows` staggered constant-bit-rate streams of `payload` bytes.

use simcore::{Ctx, Node, NodeId, SimDuration, SimTime};
use wire::{Ip, Msg, Packet, PacketIdGen, PacketTag, L4};

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Source IP (the wireless load generator).
    pub src: Ip,
    /// Destination IP (the fixed load server).
    pub dst: Ip,
    /// Destination UDP port (a discard port on the load server).
    pub dst_port: u16,
    /// Number of parallel flows.
    pub flows: u32,
    /// Per-flow rate in Mbit/s.
    pub rate_mbps_per_flow: f64,
    /// UDP payload bytes per datagram.
    pub payload: usize,
    /// When to start blasting.
    pub start: SimTime,
    /// When to stop.
    pub stop: SimTime,
}

impl LoadConfig {
    /// The paper's cross-traffic setting: 10 × 2.5 Mbit/s UDP, 1470-byte
    /// datagrams.
    pub fn paper_cross_traffic(src: Ip, dst: Ip, stop: SimTime) -> LoadConfig {
        LoadConfig {
            src,
            dst,
            dst_port: 5001,
            flows: 10,
            rate_mbps_per_flow: 2.5,
            payload: 1470,
            start: SimTime::ZERO,
            stop,
        }
    }
}

/// The blaster node: emits `Msg::Wire` packets to its NIC (`via`, usually
/// a CAM-mode `phy80211::StaMacNode`) on a CBR schedule per flow.
pub struct UdpBlasterNode {
    cfg: LoadConfig,
    via: NodeId,
    ids: PacketIdGen,
    /// Packets emitted.
    pub sent: u64,
}

impl UdpBlasterNode {
    /// Create a blaster; `source` seeds the packet-id space.
    pub fn new(source: u32, cfg: LoadConfig, via: NodeId) -> UdpBlasterNode {
        UdpBlasterNode {
            cfg,
            via,
            ids: PacketIdGen::new(source),
            sent: 0,
        }
    }

    /// Re-point the NIC (wiring order helper).
    pub fn set_via(&mut self, via: NodeId) {
        self.via = via;
    }

    fn gap(&self) -> SimDuration {
        // Per-flow inter-packet gap for the configured CBR.
        let bits = self.cfg.payload as f64 * 8.0;
        let secs = bits / (self.cfg.rate_mbps_per_flow * 1e6);
        SimDuration::from_nanos((secs * 1e9) as u64)
    }

    fn emit(&mut self, ctx: &mut Ctx<'_, Msg>, flow: u32) {
        let packet = Packet {
            id: self.ids.next_id(),
            src: self.cfg.src,
            dst: self.cfg.dst,
            ttl: 64,
            l4: L4::Udp {
                src_port: 30_000 + flow as u16,
                dst_port: self.cfg.dst_port,
            },
            payload_len: self.cfg.payload,
            tag: PacketTag::CrossTraffic,
        };
        self.sent += 1;
        ctx.send(self.via, SimDuration::ZERO, Msg::Wire(packet));
    }
}

impl Node<Msg> for UdpBlasterNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let gap = self.gap();
        for flow in 0..self.cfg.flows {
            // Stagger flow starts across one gap so the aggregate is a
            // smooth CBR rather than synchronized bursts.
            let offset = SimDuration::from_nanos(
                gap.as_nanos() * u64::from(flow) / u64::from(self.cfg.flows.max(1)),
            );
            let first = self.cfg.start + offset;
            let delay = first.saturating_since(ctx.now());
            ctx.set_timer(delay, u64::from(flow));
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {
        // Ignore deliveries (ICMP errors, echoes): a blaster only sends.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if ctx.now() >= self.cfg.stop {
            return;
        }
        let flow = tag as u32;
        self.emit(ctx, flow);
        let gap = self.gap();
        ctx.set_timer(gap, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    struct Counter {
        n: u64,
        bytes: u64,
        first: Option<SimTime>,
        last: Option<SimTime>,
    }
    impl Node<Msg> for Counter {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Wire(p) = msg {
                self.n += 1;
                self.bytes += p.payload_len as u64;
                self.first.get_or_insert(ctx.now());
                self.last = Some(ctx.now());
            }
        }
    }

    #[test]
    fn aggregate_rate_matches_config() {
        let mut sim = Sim::new(0);
        let sink = sim.add_node(Box::new(Counter {
            n: 0,
            bytes: 0,
            first: None,
            last: None,
        }));
        let cfg = LoadConfig::paper_cross_traffic(
            Ip::new(192, 168, 1, 101),
            Ip::new(10, 0, 0, 2),
            SimTime::from_secs(1),
        );
        let blaster = sim.add_node(Box::new(UdpBlasterNode::new(60, cfg, sink)));
        sim.run_until(SimTime::from_secs(1));
        let c = sim.node::<Counter>(sink);
        // 25 Mbit/s for 1 s = 3.125 MB ≈ 2126 datagrams of 1470 B.
        let mbps = c.bytes as f64 * 8.0 / 1e6;
        assert!((mbps - 25.0).abs() < 1.5, "rate={mbps} Mbps");
        assert_eq!(c.n, sim.node::<UdpBlasterNode>(blaster).sent);
    }

    #[test]
    fn stops_at_configured_time() {
        let mut sim = Sim::new(0);
        let sink = sim.add_node(Box::new(Counter {
            n: 0,
            bytes: 0,
            first: None,
            last: None,
        }));
        let mut cfg = LoadConfig::paper_cross_traffic(
            Ip::new(192, 168, 1, 101),
            Ip::new(10, 0, 0, 2),
            SimTime::from_millis(100),
        );
        cfg.start = SimTime::from_millis(50);
        sim.add_node(Box::new(UdpBlasterNode::new(60, cfg, sink)));
        sim.run_until(SimTime::from_secs(1));
        let c = sim.node::<Counter>(sink);
        assert!(c.first.unwrap() >= SimTime::from_millis(50));
        assert!(c.last.unwrap() <= SimTime::from_millis(101));
        assert!(c.n > 0);
    }

    #[test]
    fn flows_are_staggered() {
        let mut sim = Sim::new(0);
        let sink = sim.add_node(Box::new(Counter {
            n: 0,
            bytes: 0,
            first: None,
            last: None,
        }));
        let cfg = LoadConfig::paper_cross_traffic(
            Ip::new(192, 168, 1, 101),
            Ip::new(10, 0, 0, 2),
            SimTime::from_millis(20),
        );
        sim.add_node(Box::new(UdpBlasterNode::new(60, cfg, sink)));
        sim.run_until(SimTime::from_millis(20));
        // 10 flows at 2.5 Mbps / 1470 B: per-flow gap 4.7 ms; in 20 ms we
        // expect roughly 10 * (20/4.7) ≈ 42 packets, spread out.
        let c = sim.node::<Counter>(sink);
        assert!(c.n >= 30 && c.n <= 60, "n={}", c.n);
    }
}
