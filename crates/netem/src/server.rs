//! The measurement server: responds to every probe type the tools use.
//!
//! * ICMP echo request → echo reply;
//! * TCP SYN to a listening port → SYN/ACK (httping's and MobiPerf's
//!   control-message RTT);
//! * TCP SYN to a closed port → RST (the InetAddress/Java-ping method
//!   also measures RTT from this);
//! * TCP PSH/ACK ("HTTP request") to a listening port → PSH/ACK response
//!   (AcuteMon's data probe);
//! * UDP to an echo port → echoed back; anything else → discarded
//!   (the iPerf load sink).
//!
//! Per \[24\] (cited in §2.1), server-side turnaround for TCP data packets
//! is microsecond-level; the model uses a small processing distribution.

use std::collections::HashSet;

use crate::fault::{trace_drop, FaultPlan, FaultState, FaultVerdict};
use obs::{Counter, Registry};
use simcore::{Ctx, LatencyDist, Node, NodeId};
use wire::{IcmpKind, Ip, Msg, Packet, PacketIdGen, PacketTag, TcpFlags, L4};

/// Telemetry handles for a server (`netem.server.*`). Defaults to
/// disabled no-op handles.
#[derive(Default)]
struct ServerMetrics {
    requests: Counter,
    responses: Counter,
    discarded: Counter,
}

impl ServerMetrics {
    fn from_registry(reg: &Registry) -> ServerMetrics {
        ServerMetrics {
            requests: reg.counter("netem.server.requests"),
            responses: reg.counter("netem.server.responses"),
            discarded: reg.counter("netem.server.discarded"),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The server's IP address.
    pub ip: Ip,
    /// TCP ports answered with SYN/ACK (and PSH/ACK for data probes).
    pub tcp_listen: HashSet<u16>,
    /// UDP ports echoed back; other UDP is silently discarded.
    pub udp_echo: HashSet<u16>,
    /// Server processing time, ms.
    pub processing: LatencyDist,
    /// Payload size of the HTTP-style response to a data probe.
    pub http_response_len: usize,
}

impl ServerConfig {
    /// A typical measurement server at `ip`: HTTP on 80, echo on UDP 7.
    pub fn standard(ip: Ip) -> ServerConfig {
        ServerConfig {
            ip,
            tcp_listen: [80u16, 8080].into_iter().collect(),
            udp_echo: [7u16].into_iter().collect(),
            processing: LatencyDist::normal(0.08, 0.03, 0.02, 0.25),
            http_response_len: 220,
        }
    }
}

/// Counters for a server.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// ICMP echo replies sent.
    pub icmp_replies: u64,
    /// SYN/ACKs sent.
    pub syn_acks: u64,
    /// RSTs sent.
    pub rsts: u64,
    /// HTTP-style data responses sent.
    pub http_responses: u64,
    /// UDP datagrams echoed.
    pub udp_echoed: u64,
    /// UDP datagrams discarded (load sink).
    pub udp_discarded: u64,
    /// UDP payload bytes discarded (goodput accounting for the load sink).
    pub udp_discarded_bytes: u64,
}

/// The server node. It answers on the wire to whatever node delivered the
/// packet (its upstream switch/link).
pub struct ServerNode {
    cfg: ServerConfig,
    ids: PacketIdGen,
    /// Injected faults applied to outgoing responses, if any (models a
    /// dropped/duplicated reply, e.g. an overloaded responder or a lossy
    /// server-side LAN).
    fault: Option<FaultState>,
    /// Counters.
    pub stats: ServerStats,
    metrics: ServerMetrics,
}

impl ServerNode {
    /// Create a server; `source` seeds its packet-id space.
    pub fn new(source: u32, cfg: ServerConfig) -> ServerNode {
        ServerNode {
            cfg,
            ids: PacketIdGen::new(source),
            fault: None,
            stats: ServerStats::default(),
            metrics: ServerMetrics::default(),
        }
    }

    /// Register this server's telemetry (`netem.server.*`) in `reg`.
    /// Without this call every metric handle is a disabled no-op.
    pub fn attach_metrics(&mut self, reg: &Registry) {
        self.metrics = ServerMetrics::from_registry(reg);
    }

    /// Install a fault plan applied to outgoing responses (replacing any
    /// previous one). The plan's own seed drives its verdicts.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault = plan.is_active().then(|| FaultState::new(plan));
    }

    /// Register the fault layer's counters as `fault.<label>.*` in `reg`.
    /// Call after [`ServerNode::set_fault_plan`].
    pub fn attach_fault_metrics(&mut self, reg: &Registry, label: &str) {
        if let Some(fault) = &mut self.fault {
            fault.attach_metrics(reg, label);
        }
    }

    fn reply_tag(req: &Packet) -> PacketTag {
        match req.tag {
            PacketTag::Probe(n) => PacketTag::ProbeReply(n),
            _ => PacketTag::Other,
        }
    }

    fn respond(&mut self, ctx: &mut Ctx<'_, Msg>, to: NodeId, req: &Packet, l4: L4, len: usize) {
        let reply = req.reply(self.ids.next_id(), l4, len, Self::reply_tag(req));
        let mut d = self.cfg.processing.sample(ctx.rng());
        // The injected fault layer may drop, duplicate, or delay the reply.
        let copies = match &mut self.fault {
            Some(fault) => match fault.decide(0, ctx.now()) {
                FaultVerdict::Drop(reason) => {
                    // Account the turnaround first so the waterfall shows
                    // the server answered and the reply was lost in flight.
                    trace_drop(ctx, req.id, "server", reason);
                    return;
                }
                FaultVerdict::Deliver {
                    copies,
                    extra_delay,
                } => {
                    d += extra_delay;
                    copies
                }
            },
            None => 1,
        };
        self.metrics.responses.inc();
        // Carry the probe's trace over to the reply packet id and account
        // the turnaround time as a `server` span.
        let tracer = ctx.tracer();
        if tracer.packet_ctx(req.id).is_some() {
            tracer.rebind_packet(req.id, reply.id);
            if let Some(tc) = tracer.packet_ctx(reply.id) {
                let now = ctx.now();
                tracer.span(
                    tc.trace,
                    Some(tc.root),
                    "server",
                    "net",
                    now.as_nanos(),
                    (now + d).as_nanos(),
                );
            }
        }
        for _ in 0..copies {
            ctx.send(to, d, Msg::Wire(reply));
        }
    }
}

impl Node<Msg> for ServerNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        let Msg::Wire(packet) = msg else {
            debug_assert!(false, "server got non-wire message");
            return;
        };
        if packet.dst != self.cfg.ip {
            return; // not ours; a real host would drop silently
        }
        self.metrics.requests.inc();
        match packet.l4 {
            L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident,
                seq,
            } => {
                self.stats.icmp_replies += 1;
                self.respond(
                    ctx,
                    from,
                    &packet,
                    L4::Icmp {
                        kind: IcmpKind::EchoReply,
                        ident,
                        seq,
                    },
                    packet.payload_len,
                );
            }
            L4::Icmp { .. } => {}
            L4::Tcp {
                src_port,
                dst_port,
                flags,
                seq,
                ..
            } => {
                let listening = self.cfg.tcp_listen.contains(&dst_port);
                if flags.contains(TcpFlags::SYN) && !flags.contains(TcpFlags::ACK) {
                    if listening {
                        self.stats.syn_acks += 1;
                        self.respond(
                            ctx,
                            from,
                            &packet,
                            L4::Tcp {
                                src_port: dst_port,
                                dst_port: src_port,
                                flags: TcpFlags::SYN | TcpFlags::ACK,
                                seq: 0x1000_0000,
                                ack: seq.wrapping_add(1),
                            },
                            0,
                        );
                    } else {
                        self.stats.rsts += 1;
                        self.respond(
                            ctx,
                            from,
                            &packet,
                            L4::Tcp {
                                src_port: dst_port,
                                dst_port: src_port,
                                flags: TcpFlags::RST | TcpFlags::ACK,
                                seq: 0,
                                ack: seq.wrapping_add(1),
                            },
                            0,
                        );
                    }
                } else if flags.contains(TcpFlags::PSH) && listening {
                    // HTTP-style request → data response.
                    self.stats.http_responses += 1;
                    let len = self.cfg.http_response_len;
                    self.respond(
                        ctx,
                        from,
                        &packet,
                        L4::Tcp {
                            src_port: dst_port,
                            dst_port: src_port,
                            flags: TcpFlags::PSH | TcpFlags::ACK,
                            seq: 0x1000_0001,
                            ack: seq.wrapping_add(packet.payload_len as u32),
                        },
                        len,
                    );
                }
                // Bare ACKs/FINs are absorbed (stateless responder).
            }
            L4::Udp { src_port, dst_port } => {
                if self.cfg.udp_echo.contains(&dst_port) {
                    self.stats.udp_echoed += 1;
                    self.respond(
                        ctx,
                        from,
                        &packet,
                        L4::Udp {
                            src_port: dst_port,
                            dst_port: src_port,
                        },
                        packet.payload_len,
                    );
                } else {
                    self.stats.udp_discarded += 1;
                    self.stats.udp_discarded_bytes += packet.payload_len as u64;
                    self.metrics.discarded.inc();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Sim, SimDuration, SimTime};

    struct Probe {
        got: Vec<Packet>,
    }
    impl Node<Msg> for Probe {
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Wire(p) = msg {
                self.got.push(p);
            }
        }
    }

    const SERVER: Ip = Ip::new(10, 0, 0, 1);
    const CLIENT: Ip = Ip::new(192, 168, 1, 100);

    fn world() -> (Sim<Msg>, NodeId, NodeId) {
        let mut sim = Sim::new(0);
        let probe = sim.add_node(Box::new(Probe { got: vec![] }));
        let server = sim.add_node(Box::new(ServerNode::new(
            50,
            ServerConfig::standard(SERVER),
        )));
        (sim, probe, server)
    }

    fn send(sim: &mut Sim<Msg>, probe: NodeId, server: NodeId, l4: L4, len: usize) {
        let p = Packet {
            id: 1,
            src: CLIENT,
            dst: SERVER,
            ttl: 60,
            l4,
            payload_len: len,
            tag: PacketTag::Probe(3),
        };
        sim.inject(probe, server, SimTime::ZERO, Msg::Wire(p));
        sim.run_until_idle(100);
    }

    #[test]
    fn icmp_echo() {
        let (mut sim, probe, server) = world();
        send(
            &mut sim,
            probe,
            server,
            L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident: 9,
                seq: 4,
            },
            56,
        );
        let got = &sim.node::<Probe>(probe).got;
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0].l4,
            L4::Icmp {
                kind: IcmpKind::EchoReply,
                ident: 9,
                seq: 4
            }
        );
        assert_eq!(got[0].dst, CLIENT);
        assert_eq!(got[0].payload_len, 56);
        assert_eq!(got[0].tag, PacketTag::ProbeReply(3));
    }

    #[test]
    fn syn_to_open_port_gets_syn_ack() {
        let (mut sim, probe, server) = world();
        send(
            &mut sim,
            probe,
            server,
            L4::Tcp {
                src_port: 40000,
                dst_port: 80,
                flags: TcpFlags::SYN,
                seq: 100,
                ack: 0,
            },
            0,
        );
        let got = &sim.node::<Probe>(probe).got;
        assert_eq!(got.len(), 1);
        assert!(got[0].tcp_has(TcpFlags::SYN | TcpFlags::ACK));
        if let L4::Tcp { ack, dst_port, .. } = got[0].l4 {
            assert_eq!(ack, 101);
            assert_eq!(dst_port, 40000);
        } else {
            panic!("not tcp");
        }
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let (mut sim, probe, server) = world();
        send(
            &mut sim,
            probe,
            server,
            L4::Tcp {
                src_port: 40000,
                dst_port: 7777,
                flags: TcpFlags::SYN,
                seq: 5,
                ack: 0,
            },
            0,
        );
        let got = &sim.node::<Probe>(probe).got;
        assert_eq!(got.len(), 1);
        assert!(got[0].tcp_has(TcpFlags::RST));
        assert_eq!(sim.node::<ServerNode>(server).stats.rsts, 1);
    }

    #[test]
    fn http_data_probe_gets_data_response() {
        let (mut sim, probe, server) = world();
        send(
            &mut sim,
            probe,
            server,
            L4::Tcp {
                src_port: 40000,
                dst_port: 80,
                flags: TcpFlags::PSH | TcpFlags::ACK,
                seq: 200,
                ack: 1,
            },
            120,
        );
        let got = &sim.node::<Probe>(probe).got;
        assert_eq!(got.len(), 1);
        assert!(got[0].tcp_has(TcpFlags::PSH | TcpFlags::ACK));
        assert_eq!(got[0].payload_len, 220);
    }

    #[test]
    fn udp_echo_and_discard() {
        let (mut sim, probe, server) = world();
        send(
            &mut sim,
            probe,
            server,
            L4::Udp {
                src_port: 3000,
                dst_port: 7,
            },
            32,
        );
        assert_eq!(sim.node::<Probe>(probe).got.len(), 1);
        send(
            &mut sim,
            probe,
            server,
            L4::Udp {
                src_port: 3000,
                dst_port: 5001,
            },
            1470,
        );
        assert_eq!(sim.node::<Probe>(probe).got.len(), 1); // still 1
        let st = sim.node::<ServerNode>(server).stats;
        assert_eq!(st.udp_echoed, 1);
        assert_eq!(st.udp_discarded, 1);
        assert_eq!(st.udp_discarded_bytes, 1470);
    }

    #[test]
    fn wrong_destination_ignored() {
        let (mut sim, probe, server) = world();
        let p = Packet {
            id: 1,
            src: CLIENT,
            dst: Ip::new(10, 0, 0, 99),
            ttl: 60,
            l4: L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident: 1,
                seq: 1,
            },
            payload_len: 8,
            tag: PacketTag::Other,
        };
        sim.inject(probe, server, SimTime::ZERO, Msg::Wire(p));
        sim.run_until_idle(100);
        assert!(sim.node::<Probe>(probe).got.is_empty());
    }

    #[test]
    fn processing_delay_is_microsecond_scale() {
        let (mut sim, probe, server) = world();
        send(
            &mut sim,
            probe,
            server,
            L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident: 9,
                seq: 4,
            },
            56,
        );
        assert!(sim.now() < SimTime::from_millis(1));
        assert!(sim.now() > SimTime::ZERO);
        let _ = SimDuration::ZERO;
    }
}
