//! A wired switch/IP forwarder: routes packets to the node registered for
//! their destination address (the testbed's Fig. 2 switch).

use std::collections::HashMap;

use simcore::{Ctx, Node, NodeId, SimDuration};
use wire::{Ip, Msg};

/// The switch node.
pub struct SwitchNode {
    routes: HashMap<Ip, NodeId>,
    latency: SimDuration,
    /// Packets dropped for lack of a route.
    pub dropped_no_route: u64,
}

impl SwitchNode {
    /// Create a switch with a per-hop forwarding latency.
    pub fn new(latency: SimDuration) -> SwitchNode {
        SwitchNode {
            routes: HashMap::new(),
            latency,
            dropped_no_route: 0,
        }
    }

    /// Route packets destined to `ip` out of the port to `node`. Several
    /// addresses may share a port (e.g. the whole WLAN subnet behind the
    /// AP).
    pub fn add_route(&mut self, ip: Ip, node: NodeId) {
        self.routes.insert(ip, node);
    }
}

impl Node<Msg> for SwitchNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::Wire(packet) = msg else {
            debug_assert!(false, "switch got non-wire message");
            return;
        };
        match self.routes.get(&packet.dst) {
            Some(&out) => ctx.send(out, self.latency, Msg::Wire(packet)),
            None => self.dropped_no_route += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Sim, SimTime};
    use wire::{Packet, PacketTag, L4};

    struct Sink {
        got: Vec<u64>,
    }
    impl Node<Msg> for Sink {
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Wire(p) = msg {
                self.got.push(p.id);
            }
        }
    }

    fn pkt(id: u64, dst: Ip) -> Packet {
        Packet {
            id,
            src: Ip::new(10, 0, 0, 9),
            dst,
            ttl: 64,
            l4: L4::Udp {
                src_port: 1,
                dst_port: 2,
            },
            payload_len: 0,
            tag: PacketTag::Other,
        }
    }

    #[test]
    fn routes_by_destination() {
        let mut sim = Sim::new(0);
        let a = sim.add_node(Box::new(Sink { got: vec![] }));
        let b = sim.add_node(Box::new(Sink { got: vec![] }));
        let sw = sim.add_node(Box::new(SwitchNode::new(SimDuration::from_micros(50))));
        sim.node_mut::<SwitchNode>(sw)
            .add_route(Ip::new(10, 0, 0, 1), a);
        sim.node_mut::<SwitchNode>(sw)
            .add_route(Ip::new(10, 0, 0, 2), b);
        sim.inject(
            a,
            sw,
            SimTime::ZERO,
            Msg::Wire(pkt(1, Ip::new(10, 0, 0, 2))),
        );
        sim.inject(
            a,
            sw,
            SimTime::ZERO,
            Msg::Wire(pkt(2, Ip::new(10, 0, 0, 1))),
        );
        sim.inject(a, sw, SimTime::ZERO, Msg::Wire(pkt(3, Ip::new(9, 9, 9, 9))));
        sim.run_until_idle(100);
        assert_eq!(sim.node::<Sink>(a).got, vec![2]);
        assert_eq!(sim.node::<Sink>(b).got, vec![1]);
        assert_eq!(sim.node::<SwitchNode>(sw).dropped_no_route, 1);
    }
}
