//! A wired switch/IP forwarder: routes packets to the node registered for
//! their destination address (the testbed's Fig. 2 switch).

use std::collections::HashMap;

use crate::fault::{trace_drop, FaultPlan, FaultState, FaultVerdict};
use obs::Registry;
use simcore::{Ctx, Node, NodeId, SimDuration};
use wire::{Ip, Msg};

/// The switch node.
pub struct SwitchNode {
    routes: HashMap<Ip, NodeId>,
    latency: SimDuration,
    /// Injected faults applied to every forwarded packet, if any.
    fault: Option<FaultState>,
    /// Packets dropped for lack of a route.
    pub dropped_no_route: u64,
    /// Packets dropped by the injected fault layer.
    pub dropped_fault: u64,
}

impl SwitchNode {
    /// Create a switch with a per-hop forwarding latency.
    pub fn new(latency: SimDuration) -> SwitchNode {
        SwitchNode {
            routes: HashMap::new(),
            latency,
            fault: None,
            dropped_no_route: 0,
            dropped_fault: 0,
        }
    }

    /// Route packets destined to `ip` out of the port to `node`. Several
    /// addresses may share a port (e.g. the whole WLAN subnet behind the
    /// AP).
    pub fn add_route(&mut self, ip: Ip, node: NodeId) {
        self.routes.insert(ip, node);
    }

    /// Install a fault plan applied to every forwarded packet (replacing
    /// any previous one). The plan's own seed drives its verdicts.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault = plan.is_active().then(|| FaultState::new(plan));
    }

    /// Register the fault layer's counters as `fault.<label>.*` in `reg`.
    /// Call after [`SwitchNode::set_fault_plan`].
    pub fn attach_fault_metrics(&mut self, reg: &Registry, label: &str) {
        if let Some(fault) = &mut self.fault {
            fault.attach_metrics(reg, label);
        }
    }
}

impl Node<Msg> for SwitchNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::Wire(packet) = msg else {
            debug_assert!(false, "switch got non-wire message");
            return;
        };
        let Some(&out) = self.routes.get(&packet.dst) else {
            self.dropped_no_route += 1;
            return;
        };
        let (copies, extra_delay) = match &mut self.fault {
            Some(fault) => match fault.decide(0, ctx.now()) {
                FaultVerdict::Drop(reason) => {
                    self.dropped_fault += 1;
                    trace_drop(ctx, packet.id, "switch", reason);
                    return;
                }
                FaultVerdict::Deliver {
                    copies,
                    extra_delay,
                } => (copies, extra_delay),
            },
            None => (1, SimDuration::ZERO),
        };
        for _ in 0..copies {
            ctx.send(out, self.latency + extra_delay, Msg::Wire(packet));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Sim, SimTime};
    use wire::{Packet, PacketTag, L4};

    struct Sink {
        got: Vec<u64>,
    }
    impl Node<Msg> for Sink {
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Wire(p) = msg {
                self.got.push(p.id);
            }
        }
    }

    fn pkt(id: u64, dst: Ip) -> Packet {
        Packet {
            id,
            src: Ip::new(10, 0, 0, 9),
            dst,
            ttl: 64,
            l4: L4::Udp {
                src_port: 1,
                dst_port: 2,
            },
            payload_len: 0,
            tag: PacketTag::Other,
        }
    }

    #[test]
    fn routes_by_destination() {
        let mut sim = Sim::new(0);
        let a = sim.add_node(Box::new(Sink { got: vec![] }));
        let b = sim.add_node(Box::new(Sink { got: vec![] }));
        let sw = sim.add_node(Box::new(SwitchNode::new(SimDuration::from_micros(50))));
        sim.node_mut::<SwitchNode>(sw)
            .add_route(Ip::new(10, 0, 0, 1), a);
        sim.node_mut::<SwitchNode>(sw)
            .add_route(Ip::new(10, 0, 0, 2), b);
        sim.inject(
            a,
            sw,
            SimTime::ZERO,
            Msg::Wire(pkt(1, Ip::new(10, 0, 0, 2))),
        );
        sim.inject(
            a,
            sw,
            SimTime::ZERO,
            Msg::Wire(pkt(2, Ip::new(10, 0, 0, 1))),
        );
        sim.inject(a, sw, SimTime::ZERO, Msg::Wire(pkt(3, Ip::new(9, 9, 9, 9))));
        sim.run_until_idle(100);
        assert_eq!(sim.node::<Sink>(a).got, vec![2]);
        assert_eq!(sim.node::<Sink>(b).got, vec![1]);
        assert_eq!(sim.node::<SwitchNode>(sw).dropped_no_route, 1);
    }
}
