//! Derive macros for the `obs` telemetry crate.
//!
//! `#[derive(ToJson)]` implements `obs::json::ToJson` for plain structs
//! with named fields (every field must itself implement `ToJson`) and for
//! enums whose variants are all unit variants (serialized as the variant
//! name). No external parser crates: the input grammar is deliberately
//! restricted to what the workspace actually uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `obs::json::ToJson`.
///
/// Structs map to JSON objects in field order; unit-variant enums map to
/// the variant name as a JSON string.
#[proc_macro_derive(ToJson)]
pub fn derive_to_json(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (#[...]) and visibility until `struct`/`enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => i += 1,
            None => return Err("ToJson: expected `struct` or `enum`".into()),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("ToJson: expected a type name".into()),
    };
    i += 1;

    // Find the brace-delimited body; anything before it (generics, where
    // clauses) is unsupported.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("ToJson: generic type `{name}` is not supported"));
            }
            Some(_) => i += 1,
            None => return Err(format!("ToJson: `{name}` has no braced body")),
        }
    };

    let out = if kind == "struct" {
        let fields = struct_fields(body)?;
        let mut sets = String::new();
        for f in &fields {
            sets.push_str(&format!(
                "obj.set({f:?}, ::obs::json::ToJson::to_json(&self.{f}));\n"
            ));
        }
        format!(
            "impl ::obs::json::ToJson for {name} {{\n\
             fn to_json(&self) -> ::obs::json::Json {{\n\
             let mut obj = ::obs::json::Json::object();\n{sets}obj\n}}\n}}"
        )
    } else {
        let variants = enum_variants(body, &name)?;
        let mut arms = String::new();
        for v in &variants {
            arms.push_str(&format!(
                "{name}::{v} => ::obs::json::Json::Str({v:?}.to_string()),\n"
            ));
        }
        format!(
            "impl ::obs::json::ToJson for {name} {{\n\
             fn to_json(&self) -> ::obs::json::Json {{\n\
             match self {{\n{arms}}}\n}}\n}}"
        )
    };
    out.parse()
        .map_err(|e| format!("ToJson: generated code failed to parse: {e:?}"))
}

/// Field names of a named-field struct body.
fn struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility in front of the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // pub(crate) etc: skip the parenthesized restriction.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    _ => return Err("ToJson: tuple structs are not supported".into()),
                }
                // Skip the type: everything until a comma at angle-depth 0.
                let mut angle = 0i32;
                while let Some(t) = tokens.get(i) {
                    if let TokenTree::Punct(p) = t {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 => break,
                            _ => {}
                        }
                    }
                    i += 1;
                }
                i += 1; // past the comma (or end)
            }
            _ => return Err("ToJson: unsupported struct body".into()),
        }
    }
    Ok(fields)
}

/// Variant names of a unit-variant enum body.
fn enum_variants(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    return Err(format!(
                        "ToJson: enum `{name}` has a non-unit variant; only unit variants are supported"
                    ));
                }
            }
            _ => return Err(format!("ToJson: unsupported enum body in `{name}`")),
        }
    }
    Ok(variants)
}
