//! Bounded, category-filtered event streams.
//!
//! [`EventStream`] is the storage backend for `simcore::Trace`: it keeps
//! the enabled/disabled switch, the optional category whitelist, the
//! bounded buffer, and the counter of events dropped by eviction. It is
//! generic over the event payload so other layers can reuse it for their
//! own structured event logs.

/// A bounded buffer of categorized events.
#[derive(Debug, Clone)]
pub struct EventStream<E> {
    enabled: bool,
    filter: Option<Vec<&'static str>>,
    cap: usize,
    events: Vec<E>,
    dropped: u64,
}

/// Default buffer capacity (events beyond this evict the oldest).
pub const DEFAULT_CAP: usize = 1_000_000;

impl<E> EventStream<E> {
    /// A stream that records nothing.
    pub fn disabled() -> EventStream<E> {
        EventStream {
            enabled: false,
            filter: None,
            cap: DEFAULT_CAP,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Record every category.
    pub fn capture_all() -> EventStream<E> {
        EventStream {
            enabled: true,
            ..EventStream::disabled()
        }
    }

    /// Record only the listed categories.
    pub fn capture_categories(categories: Vec<&'static str>) -> EventStream<E> {
        EventStream {
            enabled: true,
            filter: Some(categories),
            ..EventStream::disabled()
        }
    }

    /// Override the buffer capacity.
    pub fn with_cap(mut self, cap: usize) -> EventStream<E> {
        self.cap = cap.max(1);
        self
    }

    /// Whether an event in `category` would be recorded. Call before
    /// building an expensive payload.
    pub fn enabled(&self, category: &str) -> bool {
        self.enabled
            && match &self.filter {
                Some(cats) => cats.contains(&category),
                None => true,
            }
    }

    /// Append an event, evicting the oldest when full. The caller is
    /// expected to have checked [`EventStream::enabled`]; this checks
    /// again so unconditional calls stay correct.
    pub fn record(&mut self, category: &str, event: E) {
        if !self.enabled(category) {
            return;
        }
        if self.events.len() >= self.cap {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> &[E] {
        &self.events
    }

    /// How many events were evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut s: EventStream<u32> = EventStream::disabled();
        s.record("any", 1);
        assert!(s.is_empty());
        assert!(!s.enabled("any"));
    }

    #[test]
    fn category_filter() {
        let mut s: EventStream<u32> = EventStream::capture_categories(vec!["sdio", "psm"]);
        assert!(s.enabled("sdio"));
        assert!(!s.enabled("tcp"));
        s.record("sdio", 1);
        s.record("tcp", 2);
        s.record("psm", 3);
        assert_eq!(s.events(), &[1, 3]);
    }

    #[test]
    fn bounded_buffer_evicts_oldest_and_counts_drops() {
        let mut s: EventStream<u32> = EventStream::capture_all().with_cap(3);
        for i in 0..5 {
            s.record("c", i);
        }
        assert_eq!(s.events(), &[2, 3, 4]);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn cap_one_keeps_only_the_newest() {
        let mut s: EventStream<u32> = EventStream::capture_all().with_cap(1);
        s.record("c", 1);
        assert_eq!(s.dropped(), 0);
        s.record("c", 2);
        s.record("c", 3);
        assert_eq!(s.events(), &[3]);
        assert_eq!(s.dropped(), 2);
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let mut s: EventStream<u32> = EventStream::capture_all().with_cap(0);
        s.record("c", 7);
        assert_eq!(s.events(), &[7], "with_cap(0) must still retain one event");
        s.record("c", 8);
        assert_eq!(s.events(), &[8]);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn filtered_events_do_not_count_as_drops() {
        let mut s: EventStream<u32> = EventStream::capture_categories(vec!["keep"]).with_cap(2);
        // Rejected by the filter: not recorded, not "dropped" (dropped
        // counts capacity evictions only).
        for i in 0..10 {
            s.record("skip", i);
        }
        assert_eq!(s.dropped(), 0);
        assert!(s.is_empty());
        // Interleave accepted and rejected events; only accepted ones
        // participate in eviction accounting.
        for i in 0..4 {
            s.record("keep", i);
            s.record("skip", 100 + i);
        }
        assert_eq!(s.events(), &[2, 3]);
        assert_eq!(s.dropped(), 2);
    }

    #[test]
    fn eviction_is_strictly_oldest_first() {
        let mut s: EventStream<u32> = EventStream::capture_all().with_cap(4);
        for i in 0..100 {
            s.record("c", i);
            // Invariant: the retained window is always the most recent
            // `min(i+1, cap)` events in arrival order.
            let expect: Vec<u32> = (i.saturating_sub(3)..=i).collect();
            assert_eq!(s.events(), &expect[..]);
        }
        assert_eq!(s.dropped(), 96);
    }
}
