//! Snapshot exporters: JSON-lines and Prometheus-style text for metric
//! snapshots; Chrome `trace_event` JSON and JSON-lines for span traces.

use std::fmt::Write as _;

use crate::json::{Json, ToJson};
use crate::metrics::Snapshot;
use crate::trace::SpanRecord;

/// One JSON object per line per metric — suitable for appending to a
/// log file and joining across runs.
pub fn json_lines(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let mut obj = Json::object();
        obj.set("type", "counter");
        obj.set("name", name);
        obj.set("value", *v);
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        let mut obj = Json::object();
        obj.set("type", "gauge");
        obj.set("name", name);
        obj.set("value", *v);
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    for h in &snap.histograms {
        let mut obj = Json::object();
        obj.set("type", "histogram");
        // HistogramSnapshot::to_json is an object; splice its fields in
        // after the type tag.
        if let Json::Obj(fields) = h.to_json() {
            for (k, v) in fields {
                obj.set(&k, v);
            }
        }
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    out
}

/// Prometheus text exposition format, conformant with the text-format
/// spec: one `# HELP` + `# TYPE` pair per metric *family* (families
/// that sanitize to the same name are emitted once), counters suffixed
/// `_total`, cumulative `le` buckets with `_sum`/`_count` series, and
/// escaped label values / help text. Metric names have every
/// non-`[a-zA-Z0-9_]` character folded to `_`; the `# HELP` line
/// carries the original dotted name so the mapping stays visible.
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut header = |out: &mut String, family: &str, orig: &str, kind: &str| {
        if seen.insert(family.to_string()) {
            let _ = writeln!(out, "# HELP {family} {}", escape_help(orig));
            let _ = writeln!(out, "# TYPE {family} {kind}");
        }
    };
    for (name, v) in &snap.counters {
        let n = counter_family(name);
        header(&mut out, &n, name, "counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        header(&mut out, &n, name, "gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for h in &snap.histograms {
        let n = sanitize(&h.name);
        header(&mut out, &n, &h.name, "histogram");
        let mut cum = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.buckets) {
            // Non-finite explicit bounds fold into the trailing +Inf
            // series (a literal `le="inf"`/`le="NaN"` is nonconformant
            // and would duplicate the +Inf bucket).
            if !bound.is_finite() {
                continue;
            }
            cum += count;
            let _ = writeln!(
                out,
                "{n}_bucket{{le=\"{}\"}} {cum}",
                escape_label_value(&bound.to_string())
            );
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// The sanitized family name of a counter: `_total`-suffixed per the
/// Prometheus naming convention (idempotent when the name already ends
/// in `_total`).
pub fn counter_family(name: &str) -> String {
    let n = sanitize(name);
    if n.ends_with("_total") {
        n
    } else {
        format!("{n}_total")
    }
}

/// Escape a label value for the Prometheus text format: backslash,
/// double-quote, and newline become `\\`, `\"`, and `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Chrome `trace_event` JSON (the format `chrome://tracing` and Perfetto
/// load). Every finished span becomes a complete (`"ph":"X"`) event;
/// timestamps are microseconds, one `tid` lane per trace so probes stack
/// as parallel rows. Unfinished spans are skipped.
pub fn chrome_trace(spans: &[SpanRecord]) -> Json {
    let mut events = Json::array();
    for s in spans {
        let Some(end) = s.end_ns else { continue };
        let mut ev = Json::object();
        ev.set("name", s.name);
        ev.set("cat", s.cat);
        ev.set("ph", "X");
        ev.set("ts", s.start_ns as f64 / 1e3);
        ev.set("dur", end.saturating_sub(s.start_ns) as f64 / 1e3);
        ev.set("pid", 1u32);
        ev.set("tid", s.trace.0);
        let mut args = Json::object();
        args.set("span_id", s.id.0);
        if let Some(p) = s.parent {
            args.set("parent", p.0);
        }
        for (k, v) in &s.attrs {
            args.set(k, v.to_json());
        }
        ev.set("args", args);
        events.push(ev);
    }
    let mut doc = Json::object();
    doc.set("traceEvents", events);
    doc.set("displayTimeUnit", "ms");
    doc
}

/// One JSON object per span per line — the compact log-friendly form of
/// a trace (see [`SpanRecord`]'s `ToJson` for the schema).
pub fn span_json_lines(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.to_json().to_string());
        out.push('\n');
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("sim.events").add(42);
        r.gauge("sim.queue_depth").set(7);
        let h = r.histogram("phone.sdio.wake_latency_ms", &[1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(12.0);
        h.observe(12.0);
        r
    }

    #[test]
    fn json_lines_one_object_per_line() {
        let text = json_lines(&sample_registry().snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""type":"counter""#));
        assert!(lines[0].contains(r#""value":42"#));
        assert!(lines[2].contains(r#""type":"histogram""#));
        assert!(lines[2].contains(r#""count":3"#));
    }

    #[test]
    fn prometheus_cumulative_buckets() {
        let text = prometheus(&sample_registry().snapshot());
        assert!(text.contains("# HELP sim_events_total sim.events"));
        assert!(text.contains("# TYPE sim_events_total counter\nsim_events_total 42"));
        assert!(text.contains("# TYPE sim_queue_depth gauge\nsim_queue_depth 7"));
        assert!(text.contains("phone_sdio_wake_latency_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("phone_sdio_wake_latency_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("phone_sdio_wake_latency_ms_bucket{le=\"100\"} 3"));
        assert!(text.contains("phone_sdio_wake_latency_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("phone_sdio_wake_latency_ms_count 3"));
        // Each cumulative bucket count is monotone and the +Inf bucket
        // equals the total count.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("phone_sdio_wake_latency_ms_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 3);
    }

    #[test]
    fn prometheus_histogram_exposition_is_conformant() {
        // The full shape the text-format spec requires of a histogram
        // family: HELP + TYPE once, every `_bucket` with an `le`
        // label, a `+Inf` bucket equal to `_count`, and `_sum`.
        let text = prometheus(&sample_registry().snapshot());
        let fam = "phone_sdio_wake_latency_ms";
        assert_eq!(text.matches(&format!("# TYPE {fam} histogram")).count(), 1);
        assert_eq!(text.matches(&format!("# HELP {fam} ")).count(), 1);
        let buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with(&format!("{fam}_bucket")))
            .collect();
        assert!(buckets.iter().all(|l| l.contains("{le=\"")), "{buckets:?}");
        assert_eq!(
            buckets.last().unwrap(),
            &"phone_sdio_wake_latency_ms_bucket{le=\"+Inf\"} 3"
        );
        assert!(text.contains(&format!("{fam}_sum ")), "{text}");
        assert!(text.contains(&format!("{fam}_count 3")), "{text}");
        // _sum precedes _count, after all buckets (spec ordering).
        let pos = |needle: &str| text.find(needle).unwrap();
        assert!(pos("_bucket{le=\"+Inf\"}") < pos(&format!("{fam}_sum")));
        assert!(pos(&format!("{fam}_sum")) < pos(&format!("{fam}_count")));
    }

    #[test]
    fn prometheus_folds_nonfinite_bounds_into_inf_bucket() {
        // A histogram declared with an explicit infinite upper bound
        // must not render `le="inf"` — the overflow rolls into the
        // single canonical `+Inf` series.
        let r = Registry::new();
        let h = r.histogram("weird.bounds", &[1.0, f64::INFINITY]);
        h.observe(0.5);
        h.observe(100.0);
        h.observe(200.0);
        let text = prometheus(&r.snapshot());
        assert!(!text.contains("le=\"inf\""), "{text}");
        assert!(!text.contains("le=\"NaN\""), "{text}");
        assert_eq!(text.matches("weird_bounds_bucket{le=\"+Inf\"}").count(), 1);
        assert!(text.contains("weird_bounds_bucket{le=\"1\"} 1"), "{text}");
        assert!(
            text.contains("weird_bounds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("weird_bounds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn prometheus_escapes_metric_names() {
        let r = Registry::new();
        r.counter("netem.link-a.b/c forwarded").inc();
        let text = prometheus(&r.snapshot());
        assert!(
            text.contains("netem_link_a_b_c_forwarded_total 1"),
            "every non-alphanumeric character folds to '_': {text}"
        );
    }

    #[test]
    fn prometheus_counters_are_total_suffixed_once() {
        let r = Registry::new();
        r.counter("probes.sent").add(3);
        r.counter("frames.dropped_total").add(2);
        let text = prometheus(&r.snapshot());
        assert!(text.contains("probes_sent_total 3"), "{text}");
        // Idempotent: an already-suffixed name is not doubled.
        assert!(text.contains("frames_dropped_total 2"), "{text}");
        assert!(!text.contains("_total_total"), "{text}");
    }

    #[test]
    fn prometheus_emits_help_and_type_once_per_family() {
        // Two dotted names that sanitize to the same family must not
        // repeat the HELP/TYPE header.
        let r = Registry::new();
        r.counter("a.b").inc();
        r.counter("a-b").inc();
        let text = prometheus(&r.snapshot());
        assert_eq!(
            text.matches("# TYPE a_b_total counter").count(),
            1,
            "{text}"
        );
        assert_eq!(text.matches("# HELP a_b_total").count(), 1, "{text}");
        // Both series still appear.
        assert_eq!(text.matches("a_b_total 1").count(), 2, "{text}");
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn json_lines_escapes_names() {
        let r = Registry::new();
        r.counter("weird\"name\n").inc();
        let text = json_lines(&r.snapshot());
        assert!(text.contains(r#""name":"weird\"name\n""#), "{text}");
        // Still exactly one line per metric despite the embedded newline
        // escape.
        assert_eq!(text.lines().count(), 1);
        // And each line parses back.
        assert!(crate::Json::parse(text.lines().next().unwrap()).is_ok());
    }

    #[test]
    fn empty_registry_exports_empty_output() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(json_lines(&snap), "");
        assert_eq!(prometheus(&snap), "");
        // A disabled registry's snapshot is also empty.
        let snap = Registry::disabled().snapshot();
        assert_eq!(json_lines(&snap), "");
        assert_eq!(prometheus(&snap), "");
    }

    #[test]
    fn chrome_trace_round_trips_with_required_fields() {
        let t = crate::Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 1_000_000);
        t.attr(root, "probe", 0u32);
        t.span(tr, Some(root), "sdio_wake", "driver", 1_500_000, 9_000_000);
        t.end_span(root, 40_000_000);
        t.start_span(tr, Some(root), "open", "app", 2_000_000); // never ends
        let doc = chrome_trace(&t.spans());
        let text = doc.to_string();
        let parsed = crate::Json::parse(&text).expect("chrome trace parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2, "unfinished spans are skipped");
        for ev in events {
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            assert!(ev.get("ts").unwrap().as_f64().is_some());
            assert!(ev.get("dur").unwrap().as_f64().is_some());
            assert!(ev.get("pid").unwrap().as_f64().is_some());
            assert!(ev.get("tid").unwrap().as_f64().is_some());
        }
        // Microsecond timestamps.
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1000.0));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(39_000.0));
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("parent")
                .unwrap()
                .as_f64(),
            Some(root.0 as f64)
        );
    }

    #[test]
    fn span_json_lines_parse_back() {
        let t = crate::Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 0);
        t.attr(root, "tool", "ping");
        t.end_span(root, 5);
        let text = span_json_lines(&t.spans());
        assert_eq!(text.lines().count(), 1);
        let obj = crate::Json::parse(text.trim()).unwrap();
        assert_eq!(obj.get("name").unwrap().as_str(), Some("probe"));
        assert_eq!(obj.get("end_ns").unwrap().as_f64(), Some(5.0));
        assert_eq!(
            obj.get("attrs").unwrap().get("tool").unwrap().as_str(),
            Some("ping")
        );
    }
}
