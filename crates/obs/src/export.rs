//! Snapshot exporters: JSON-lines and Prometheus-style text.

use std::fmt::Write as _;

use crate::json::{Json, ToJson};
use crate::metrics::Snapshot;

/// One JSON object per line per metric — suitable for appending to a
/// log file and joining across runs.
pub fn json_lines(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let mut obj = Json::object();
        obj.set("type", "counter");
        obj.set("name", name);
        obj.set("value", *v);
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        let mut obj = Json::object();
        obj.set("type", "gauge");
        obj.set("name", name);
        obj.set("value", *v);
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    for h in &snap.histograms {
        let mut obj = Json::object();
        obj.set("type", "histogram");
        // HistogramSnapshot::to_json is an object; splice its fields in
        // after the type tag.
        if let Json::Obj(fields) = h.to_json() {
            for (k, v) in fields {
                obj.set(&k, v);
            }
        }
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    out
}

/// Prometheus text exposition format (`# TYPE` headers, cumulative `le`
/// buckets, `_sum`/`_count` series). Metric names have `.` and `-`
/// folded to `_`.
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
    }
    for h in &snap.histograms {
        let n = sanitize(&h.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.buckets) {
            cum += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("sim.events").add(42);
        r.gauge("sim.queue_depth").set(7);
        let h = r.histogram("phone.sdio.wake_latency_ms", &[1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(12.0);
        h.observe(12.0);
        r
    }

    #[test]
    fn json_lines_one_object_per_line() {
        let text = json_lines(&sample_registry().snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""type":"counter""#));
        assert!(lines[0].contains(r#""value":42"#));
        assert!(lines[2].contains(r#""type":"histogram""#));
        assert!(lines[2].contains(r#""count":3"#));
    }

    #[test]
    fn prometheus_cumulative_buckets() {
        let text = prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE sim_events counter\nsim_events 42"));
        assert!(text.contains("sim_queue_depth 7"));
        assert!(text.contains("phone_sdio_wake_latency_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("phone_sdio_wake_latency_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("phone_sdio_wake_latency_ms_bucket{le=\"100\"} 3"));
        assert!(text.contains("phone_sdio_wake_latency_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("phone_sdio_wake_latency_ms_count 3"));
    }
}
