//! A minimal JSON value type and serialization trait.
//!
//! The workspace runs in fully offline environments, so experiment
//! output goes through this module instead of an external serializer.
//! Object keys keep insertion order, which keeps emitted reports stable
//! across runs and easy to diff.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are f64; integral values print without a fraction.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Json {
        Json::Arr(Vec::new())
    }

    /// Set a key on an object (replaces an existing key). Panics if
    /// `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl ToJson) {
        match self {
            Json::Obj(entries) => {
                let v = value.to_json();
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = v;
                } else {
                    entries.push((key.to_string(), v));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Push a value onto an array. Panics if `self` is not an array.
    pub fn push(&mut self, value: impl ToJson) {
        match self {
            Json::Arr(items) => items.push(value.to_json()),
            _ => panic!("Json::push on a non-array"),
        }
    }

    /// Look up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact single-line rendering (`.to_string()` comes from this).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
num_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let mut obj = Json::object();
        obj.set("name", "acute\"mon");
        obj.set("k", 50u32);
        obj.set("rtt_ms", 33.25);
        obj.set("gap", Option::<f64>::None);
        obj.set("layers", vec!["user", "kernel"]);
        assert_eq!(
            obj.to_string(),
            r#"{"name":"acute\"mon","k":50,"rtt_ms":33.25,"gap":null,"layers":["user","kernel"]}"#
        );
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(Json::Num(102.4).to_string(), "102.4");
        assert_eq!(Json::Num(50.0).to_string(), "50");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_rendering_indents() {
        let mut obj = Json::object();
        obj.set("a", 1u32);
        let mut inner = Json::object();
        inner.set("b", 2u32);
        obj.set("inner", inner);
        assert_eq!(
            obj.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"inner\": {\n    \"b\": 2\n  }\n}"
        );
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut obj = Json::object();
        obj.set("x", 1u32);
        obj.set("x", 2u32);
        assert_eq!(obj.get("x"), Some(&Json::Num(2.0)));
    }

    #[derive(obs::ToJson)]
    struct Probe {
        idx: u32,
        rtt_ms: Option<f64>,
        tool: String,
    }

    #[derive(obs::ToJson, Debug, PartialEq)]
    enum Kind {
        Icmp,
        TcpSyn,
    }

    #[test]
    fn derive_struct_and_enum() {
        let p = Probe {
            idx: 3,
            rtt_ms: Some(14.5),
            tool: "ping".into(),
        };
        assert_eq!(
            p.to_json().to_string(),
            r#"{"idx":3,"rtt_ms":14.5,"tool":"ping"}"#
        );
        assert_eq!(Kind::Icmp.to_json(), Json::Str("Icmp".into()));
        assert_eq!(Kind::TcpSyn.to_json().to_string(), "\"TcpSyn\"");
    }
}
