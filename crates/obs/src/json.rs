//! A minimal JSON value type and serialization trait.
//!
//! The workspace runs in fully offline environments, so experiment
//! output goes through this module instead of an external serializer.
//! Object keys keep insertion order, which keeps emitted reports stable
//! across runs and easy to diff.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The JSON `null` value.
    Null,
    /// A boolean.
    Bool(bool),
    /// All numbers are f64; integral values print without a fraction.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset into the input and a short message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Json {
        Json::Arr(Vec::new())
    }

    /// Set a key on an object (replaces an existing key). Panics if
    /// `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl ToJson) {
        match self {
            Json::Obj(entries) => {
                let v = value.to_json();
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = v;
                } else {
                    entries.push((key.to_string(), v));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Push a value onto an array. Panics if `self` is not an array.
    pub fn push(&mut self, value: impl ToJson) {
        match self {
            Json::Arr(items) => items.push(value.to_json()),
            _ => panic!("Json::push on a non-array"),
        }
    }

    /// Look up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. Rejects trailing garbage. The inverse of
    /// `to_string()`/`to_string_pretty()` up to number formatting.
    pub fn parse(s: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact single-line rendering (`.to_string()` comes from this).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object_value(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar from the (valid, since the
                    // input is &str) byte stream.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError {
                offset: start,
                message: "bad number".to_string(),
            })
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The [`Json`] representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
num_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let mut obj = Json::object();
        obj.set("name", "acute\"mon");
        obj.set("k", 50u32);
        obj.set("rtt_ms", 33.25);
        obj.set("gap", Option::<f64>::None);
        obj.set("layers", vec!["user", "kernel"]);
        assert_eq!(
            obj.to_string(),
            r#"{"name":"acute\"mon","k":50,"rtt_ms":33.25,"gap":null,"layers":["user","kernel"]}"#
        );
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(Json::Num(102.4).to_string(), "102.4");
        assert_eq!(Json::Num(50.0).to_string(), "50");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_rendering_indents() {
        let mut obj = Json::object();
        obj.set("a", 1u32);
        let mut inner = Json::object();
        inner.set("b", 2u32);
        obj.set("inner", inner);
        assert_eq!(
            obj.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"inner\": {\n    \"b\": 2\n  }\n}"
        );
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut obj = Json::object();
        obj.set("x", 1u32);
        obj.set("x", 2u32);
        assert_eq!(obj.get("x"), Some(&Json::Num(2.0)));
    }

    #[derive(obs::ToJson)]
    struct Probe {
        idx: u32,
        rtt_ms: Option<f64>,
        tool: String,
    }

    #[derive(obs::ToJson, Debug, PartialEq)]
    enum Kind {
        Icmp,
        TcpSyn,
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let mut obj = Json::object();
        obj.set("name", "acute\"mon");
        obj.set("k", 50u32);
        obj.set("rtt_ms", 33.25);
        obj.set("gap", Option::<f64>::None);
        obj.set("ok", true);
        obj.set("layers", vec!["user", "kernel"]);
        assert_eq!(Json::parse(&obj.to_string()).unwrap(), obj);
        assert_eq!(Json::parse(&obj.to_string_pretty()).unwrap(), obj);
    }

    #[test]
    fn parse_scalars_and_numbers() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("[]").unwrap(), Json::array());
        assert_eq!(Json::parse("{}").unwrap(), Json::object());
        assert_eq!(
            Json::parse("[1, 2,3]").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)])
        );
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0041""#).unwrap(),
            Json::Str("a\"b\\c\nd\u{41}".into())
        );
        // Surrogate pair (U+1F600).
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        // Non-ASCII passes through unescaped.
        assert_eq!(Json::parse("\"µs\"").unwrap(), Json::Str("µs".into()));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\\ud83d\"",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?} -> {err}");
        }
        assert_eq!(Json::parse("nope").unwrap_err().offset, 0);
    }

    #[test]
    fn derive_struct_and_enum() {
        let p = Probe {
            idx: 3,
            rtt_ms: Some(14.5),
            tool: "ping".into(),
        };
        assert_eq!(
            p.to_json().to_string(),
            r#"{"idx":3,"rtt_ms":14.5,"tool":"ping"}"#
        );
        assert_eq!(Kind::Icmp.to_json(), Json::Str("Icmp".into()));
        assert_eq!(Kind::TcpSyn.to_json().to_string(), "\"TcpSyn\"");
    }
}
