//! `obs` — workspace-wide telemetry.
//!
//! The paper's contribution is *attributing* inflated delay to specific
//! layers (SDIO bus sleep, 802.11 adaptive PSM, runtime overhead). This
//! crate gives every layer a cheap way to report what it sees:
//!
//! - [`metrics::Registry`] — counters, gauges, and fixed-bucket
//!   histograms behind a clonable handle that is a strict no-op when
//!   disabled (a disabled registry allocates nothing and every operation
//!   is a branch on `None`).
//! - [`span::SpanTimer`] — scoped wall-clock timers that record into a
//!   histogram on drop.
//! - [`events::EventStream`] — the bounded, category-filtered event
//!   buffer that backs `simcore::Trace` (categories, filtering, and the
//!   drop counter live here).
//! - [`trace::Tracer`] — per-probe causal spans with parent/child
//!   links and typed attributes; finished traces render as waterfalls
//!   and export as Chrome `trace_event` JSON.
//! - [`prof`] — self-profiling: wall-clock + allocation cost per
//!   *engine* phase (as opposed to simulated time), with folded-stack
//!   and Chrome-trace exporters and a zero-cost disabled path.
//! - [`export`] — JSON-lines and Prometheus-style text exporters over a
//!   [`metrics::Snapshot`].
//! - [`log`] — a tiny leveled stderr logger (`obs::info!`, `obs::warn!`,
//!   ...) so human logs never interleave with machine output on stdout.
//! - [`json`] — a minimal JSON value type and [`json::ToJson`] trait,
//!   with a `#[derive(ToJson)]` macro, used by exporters and by the
//!   experiment binaries in place of external serializers.
//!
//! The crate is deliberately dependency-free (besides its own derive
//! macro): it must build in fully offline environments and be safe to
//! pull into every other crate in the workspace.

#![deny(missing_docs)]

// Let `#[derive(ToJson)]` (which expands to paths under `::obs`) work
// inside this crate's own tests.
extern crate self as obs;

pub mod events;
pub mod export;
pub mod json;
pub mod log;
pub mod metrics;
pub mod prof;
pub mod span;
pub mod trace;

pub use events::EventStream;
pub use json::{Json, JsonParseError, ToJson};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, SnapshotStateError,
    SNAPSHOT_STATE_VERSION,
};
pub use prof::{MergedNode, ProfNode, ProfPhase, ProfSnapshot, ProfSpan, Profiler, ThreadProf};
pub use span::SpanTimer;
pub use trace::{
    build_trace_tree, render_waterfall, AttrValue, SamplePolicy, SamplingStats, SpanId, SpanNode,
    SpanRecord, TraceCtx, TraceId, Tracer,
};

/// Derive `ToJson` for a struct with named fields or a unit-variant enum.
pub use obs_macros::ToJson;
