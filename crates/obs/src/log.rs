//! A tiny leveled logger.
//!
//! Human-readable diagnostics go to **stderr** so they never interleave
//! with machine output (JSON reports, metric dumps) on stdout. The level
//! is a process-wide atomic; binaries set it once from `--quiet`/`-v`
//! flags and every crate logs through the `obs::error!` / `obs::warn!` /
//! `obs::info!` / `obs::debug!` macros.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 0,
    /// Degraded-but-continuing conditions.
    Warn = 1,
    /// Progress messages (the default level).
    Info = 2,
    /// Diagnostic detail, enabled with `-v`.
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the maximum level that will be emitted.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current maximum level.
pub fn level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Apply the conventional CLI flags: `--quiet` caps at errors, each `-v`
/// raises verbosity (0 = info, 1+ = debug).
pub fn init_from_flags(quiet: bool, verbosity: u8) {
    set_level(if quiet {
        Level::Error
    } else if verbosity > 0 {
        Level::Debug
    } else {
        Level::Info
    });
}

/// Whether a message at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emit a message to stderr (used by the macros; prefer those).
pub fn log(level: Level, args: fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("[{}] {}", level.tag(), args);
    }
}

/// Log at [`Level::Error`](crate::log::Level::Error) with `format!` syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`](crate::log::Level::Warn) with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*))
    };
}

/// Log at [`Level::Info`](crate::log::Level::Info) with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// Log at [`Level::Debug`](crate::log::Level::Debug) with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_mapping() {
        init_from_flags(true, 0);
        assert_eq!(level(), Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Warn));

        init_from_flags(false, 2);
        assert_eq!(level(), Level::Debug);
        assert!(enabled(Level::Debug));

        init_from_flags(false, 0);
        assert_eq!(level(), Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }
}
