//! Counters, gauges, and fixed-bucket histograms behind a [`Registry`].
//!
//! A `Registry` is a cheap clonable handle. `Registry::disabled()` costs
//! nothing: every metric handle it vends is `None` inside and every
//! operation is a single branch. An enabled registry interns metrics by
//! name in `BTreeMap`s, so snapshots are deterministically ordered and
//! two requests for the same name share one underlying cell.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{Json, ToJson};
use crate::span::SpanTimer;

/// Cap on raw samples retained per histogram for exact quantiles. The
/// reservoir is first-N (deterministic); past the cap only the bucket
/// counts keep growing and `sample_overflow` records how many raw values
/// were not retained.
pub const SAMPLE_CAP: usize = 4096;

/// Default bucket upper bounds for millisecond-scale latencies, spanning
/// sub-ms kernel costs up to multi-second PSM stalls.
pub fn default_ms_buckets() -> Vec<f64> {
    vec![
        0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 25.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
        5000.0,
    ]
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    hists: BTreeMap<String, Arc<Mutex<HistInner>>>,
}

/// Handle to a metrics registry; `None` inside means disabled/no-op.
#[derive(Clone, Default)]
pub struct Registry(Option<Arc<Mutex<Inner>>>);

impl Registry {
    /// An enabled registry.
    pub fn new() -> Registry {
        Registry(Some(Arc::new(Mutex::new(Inner::default()))))
    }

    /// A disabled registry: allocates nothing, every operation no-ops.
    pub fn disabled() -> Registry {
        Registry(None)
    }

    /// Whether this registry records anything (false for
    /// [`Registry::disabled`]).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.0.as_ref().map(|inner| {
            let mut g = inner.lock().unwrap();
            g.counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone()
        }))
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.0.as_ref().map(|inner| {
            let mut g = inner.lock().unwrap();
            g.gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0)))
                .clone()
        }))
    }

    /// Get or create a histogram with the given bucket upper bounds.
    /// Bounds must be sorted ascending; an existing histogram keeps its
    /// original bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        Histogram(self.0.as_ref().map(|inner| {
            let mut g = inner.lock().unwrap();
            g.hists
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(HistInner::new(bounds))))
                .clone()
        }))
    }

    /// Get or create a histogram with [`default_ms_buckets`].
    pub fn histogram_ms(&self, name: &str) -> Histogram {
        self.histogram(name, &default_ms_buckets())
    }

    /// Start a wall-clock span recording into histogram `name` (in ms)
    /// when dropped.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::start(self.histogram_ms(name))
    }

    /// Merge a [`Snapshot`] (typically taken from a per-shard registry)
    /// into this registry: counters and gauges add, histograms add
    /// bucket-wise (created with the snapshot's bounds when absent),
    /// retained raw samples append up to [`SAMPLE_CAP`] with the spill
    /// counted in `sample_overflow`. No-op on a disabled registry.
    ///
    /// Counter/gauge/bucket arithmetic — histogram sums included, via
    /// their integer-nanosecond accumulators — is exact integer
    /// addition, so merged totals are independent of merge order and
    /// grouping. The one order-sensitive piece of state is the first-N
    /// sample reservoir: callers that need bit-identical output (the
    /// fleet collector) must merge in a fixed order so the same samples
    /// are retained.
    pub fn merge_snapshot(&self, snap: &Snapshot) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        for (name, v) in &snap.counters {
            g.counters
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .fetch_add(*v, Ordering::Relaxed);
        }
        for (name, v) in &snap.gauges {
            g.gauges
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicI64::new(0)))
                .fetch_add(*v, Ordering::Relaxed);
        }
        for hs in &snap.histograms {
            let cell = g
                .hists
                .entry(hs.name.clone())
                .or_insert_with(|| Arc::new(Mutex::new(HistInner::new(&hs.bounds))))
                .clone();
            cell.lock().unwrap().merge(hs);
        }
    }

    /// A deterministic, name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(inner) = &self.0 {
            let g = inner.lock().unwrap();
            for (name, c) in &g.counters {
                snap.counters
                    .push((name.clone(), c.load(Ordering::Relaxed)));
            }
            for (name, v) in &g.gauges {
                snap.gauges.push((name.clone(), v.load(Ordering::Relaxed)));
            }
            for (name, h) in &g.hists {
                snap.histograms.push(h.lock().unwrap().snapshot(name));
            }
        }
        snap
    }
}

/// Monotonic event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when vended by a disabled registry).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Instantaneous signed level (queue depth, dozing stations, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Set the level to `v`.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the level by `n`.
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Lower the level by `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current level (0 when vended by a disabled registry).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistInner {
    bounds: Vec<f64>,
    /// `buckets[i]` counts observations `<= bounds[i]`; the final slot
    /// is the overflow bucket (`> bounds.last()`).
    buckets: Vec<u64>,
    count: u64,
    /// Sum of observations in integer nanoseconds (observations are
    /// millisecond-scale f64s). Integer addition is exactly associative
    /// and commutative, so merged registries agree bit-for-bit however
    /// the merges were grouped — the property the fleet checkpoint /
    /// partial-report formats rely on.
    sum_ns: i128,
    min: f64,
    max: f64,
    samples: Vec<f64>,
    sample_overflow: u64,
}

impl HistInner {
    fn new(bounds: &[f64]) -> HistInner {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        HistInner {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum_ns: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
            sample_overflow: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += (v * 1e6).round() as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(v);
        } else {
            self.sample_overflow += 1;
        }
    }

    fn merge(&mut self, snap: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, snap.bounds,
            "merging histograms with mismatched bounds"
        );
        for (a, b) in self.buckets.iter_mut().zip(&snap.buckets) {
            *a += b;
        }
        self.count += snap.count;
        self.sum_ns += snap.sum_ns;
        if snap.count > 0 {
            self.min = self.min.min(snap.min);
            self.max = self.max.max(snap.max);
        }
        let take = snap.samples.len().min(SAMPLE_CAP - self.samples.len());
        self.samples.extend_from_slice(&snap.samples[..take]);
        self.sample_overflow += snap.sample_overflow + (snap.samples.len() - take) as u64;
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            buckets: self.buckets.clone(),
            count: self.count,
            sum: self.sum_ns as f64 / 1e6,
            sum_ns: self.sum_ns,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            samples: self.samples.clone(),
            sample_overflow: self.sample_overflow,
        }
    }
}

/// Fixed-bucket latency/size histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<HistInner>>>);

impl Histogram {
    /// Whether this handle records anywhere (false for handles vended
    /// by a disabled registry).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().observe(v);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.lock().unwrap().count)
    }
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// `buckets[i]` counts observations `<= bounds[i]`; the final slot is
    /// the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (derived from [`sum_ns`](Self::sum_ns), so it
    /// is identical under any merge grouping).
    pub sum: f64,
    /// The exact sum accumulator, integer nanoseconds. Merges add these,
    /// never the float `sum`, which keeps registry merging exactly
    /// associative and commutative.
    pub sum_ns: i128,
    /// Smallest observation (0 when `count == 0`).
    pub min: f64,
    /// Largest observation (0 when `count == 0`).
    pub max: f64,
    /// First-N raw samples (deterministic reservoir, cap [`SAMPLE_CAP`]).
    pub samples: Vec<f64>,
    /// Observations beyond the sample cap (bucket counts still include
    /// them; quantiles from `samples` become approximate).
    pub sample_overflow: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile from the retained raw samples (linear interpolation,
    /// R type-7 — same convention as `am_stats::quantile`). Exact while
    /// `sample_overflow == 0`.
    pub fn quantile(&self, p: f64) -> f64 {
        let mut xs = self.samples.clone();
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let h = p.clamp(0.0, 1.0) * (xs.len() - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        xs[lo] + (xs[hi] - xs[lo]) * (h - lo as f64)
    }

    /// Median from the retained samples.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile from the retained samples.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile from the retained samples.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("name", &self.name);
        obj.set("count", self.count);
        obj.set("sum", self.sum);
        obj.set("min", self.min);
        obj.set("max", self.max);
        obj.set("mean", self.mean());
        obj.set("p50", self.p50());
        obj.set("p95", self.p95());
        obj.set("p99", self.p99());
        obj.set("bounds", &self.bounds);
        obj.set("buckets", &self.buckets);
        obj.set("sample_overflow", self.sample_overflow);
        obj
    }
}

/// Deterministic (name-sorted) view of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` per gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Per-histogram state, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Level of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// State of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Version tag written into [`Snapshot::state_json`] payloads;
/// [`Snapshot::from_state_json`] rejects anything newer.
pub const SNAPSHOT_STATE_VERSION: u64 = 1;

/// A failure to reconstruct a [`Snapshot`] from its serialized state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStateError(pub String);

impl std::fmt::Display for SnapshotStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot state error: {}", self.0)
    }
}

impl std::error::Error for SnapshotStateError {}

impl Snapshot {
    /// Serialize the **full** snapshot state — unlike [`ToJson`], which
    /// emits a summary view (derived quantiles, no raw samples) — so the
    /// snapshot can be reconstructed exactly by
    /// [`Snapshot::from_state_json`] and merged into a fresh
    /// [`Registry`] without losing a bit. Histogram `sum_ns`
    /// accumulators travel as decimal strings (JSON numbers are doubles,
    /// `i128` is not).
    ///
    /// This is the payload the fleet campaign checkpoint and
    /// partial-report formats embed: restore + continue must equal an
    /// uninterrupted run byte-for-byte.
    pub fn state_json(&self) -> Json {
        let mut counters = Json::object();
        for (name, v) in &self.counters {
            counters.set(name, *v);
        }
        let mut gauges = Json::object();
        for (name, v) in &self.gauges {
            gauges.set(name, *v as f64);
        }
        let mut hists = Json::array();
        for h in &self.histograms {
            let mut obj = Json::object();
            obj.set("name", &h.name);
            obj.set("bounds", &h.bounds);
            obj.set("buckets", &h.buckets);
            obj.set("count", h.count);
            obj.set("sum_ns", h.sum_ns.to_string());
            obj.set("min", h.min);
            obj.set("max", h.max);
            obj.set("samples", &h.samples);
            obj.set("sample_overflow", h.sample_overflow);
            hists.push(obj);
        }
        let mut obj = Json::object();
        obj.set("version", SNAPSHOT_STATE_VERSION);
        obj.set("counters", counters);
        obj.set("gauges", gauges);
        obj.set("histograms", hists);
        obj
    }

    /// Reconstruct a snapshot from [`Snapshot::state_json`] output. The
    /// round trip is exact: merging the result into a registry produces
    /// the same state as merging the original.
    pub fn from_state_json(state: &Json) -> Result<Snapshot, SnapshotStateError> {
        let err = |msg: &str| SnapshotStateError(msg.to_string());
        let version = state
            .get("version")
            .and_then(Json::as_f64)
            .ok_or_else(|| err("missing version"))? as u64;
        if version > SNAPSHOT_STATE_VERSION {
            return Err(SnapshotStateError(format!(
                "snapshot state version {version} is newer than supported \
                 {SNAPSHOT_STATE_VERSION}"
            )));
        }
        let entries = |key: &str| -> Result<&[(String, Json)], SnapshotStateError> {
            match state.get(key) {
                Some(Json::Obj(entries)) => Ok(entries),
                _ => Err(SnapshotStateError(format!("missing {key} object"))),
            }
        };
        let mut snap = Snapshot::default();
        for (name, v) in entries("counters")? {
            let v = v.as_f64().ok_or_else(|| err("counter not a number"))?;
            snap.counters.push((name.clone(), v as u64));
        }
        for (name, v) in entries("gauges")? {
            let v = v.as_f64().ok_or_else(|| err("gauge not a number"))?;
            snap.gauges.push((name.clone(), v as i64));
        }
        let floats = |h: &Json, key: &str| -> Result<Vec<f64>, SnapshotStateError> {
            h.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| SnapshotStateError(format!("missing {key} array")))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| SnapshotStateError(format!("{key} entry not a number")))
                })
                .collect()
        };
        let num = |h: &Json, key: &str| -> Result<f64, SnapshotStateError> {
            h.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| SnapshotStateError(format!("missing {key}")))
        };
        for h in state
            .get("histograms")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing histograms array"))?
        {
            let sum_ns = h
                .get("sum_ns")
                .and_then(Json::as_str)
                .ok_or_else(|| err("missing sum_ns"))?
                .parse::<i128>()
                .map_err(|e| SnapshotStateError(format!("bad sum_ns: {e}")))?;
            let bounds = floats(h, "bounds")?;
            let buckets: Vec<u64> = floats(h, "buckets")?.iter().map(|&v| v as u64).collect();
            if buckets.len() != bounds.len() + 1 {
                return Err(err("bucket count must be bounds + 1"));
            }
            snap.histograms.push(HistogramSnapshot {
                name: h
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("missing histogram name"))?
                    .to_string(),
                bounds,
                buckets,
                count: num(h, "count")? as u64,
                sum: sum_ns as f64 / 1e6,
                sum_ns,
                min: num(h, "min")?,
                max: num(h, "max")?,
                samples: floats(h, "samples")?,
                sample_overflow: num(h, "sample_overflow")? as u64,
            });
        }
        Ok(snap)
    }
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (name, v) in &self.counters {
            counters.set(name, *v);
        }
        let mut gauges = Json::object();
        for (name, v) in &self.gauges {
            gauges.set(name, *v);
        }
        let mut hists = Json::array();
        for h in &self.histograms {
            hists.push(h.to_json());
        }
        let mut obj = Json::object();
        obj.set("counters", counters);
        obj.set("gauges", gauges);
        obj.set("histograms", hists);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_a_noop() {
        let r = Registry::disabled();
        let c = r.counter("x");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = r.gauge("y");
        g.set(5);
        assert_eq!(g.get(), 0);
        let h = r.histogram_ms("z");
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn same_name_shares_one_cell() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
        assert_eq!(r.snapshot().counter("a"), Some(3));
    }

    #[test]
    fn bucket_boundaries_are_le() {
        let r = Registry::new();
        let h = r.histogram("h", &[1.0, 10.0]);
        for v in [0.5, 1.0, 1.0001, 10.0, 11.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h").unwrap();
        // <=1: {0.5, 1.0}; <=10: {1.0001, 10.0}; >10: {11.0}
        assert_eq!(hs.buckets, vec![2, 2, 1]);
        assert_eq!(hs.count, 5);
        assert_eq!(hs.min, 0.5);
        assert_eq!(hs.max, 11.0);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.gauge("mid").set(1);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn quantiles_match_r7() {
        let r = Registry::new();
        let h = r.histogram("q", &[100.0]);
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("q").unwrap();
        assert!((hs.p50() - 50.5).abs() < 1e-9);
        assert!((hs.quantile(0.0) - 1.0).abs() < 1e-9);
        assert!((hs.quantile(1.0) - 100.0).abs() < 1e-9);
        assert!((hs.p95() - 95.05).abs() < 1e-9);
    }

    #[test]
    fn merge_snapshot_equals_direct_ingest() {
        // Two shard registries vs one registry fed everything: merged
        // snapshots must agree exactly (integer-valued observations so
        // even the float sums are exact).
        let shard_a = Registry::new();
        let shard_b = Registry::new();
        let direct = Registry::new();
        for v in [1u64, 3, 7] {
            shard_a.counter("probes").add(v);
            direct.counter("probes").add(v);
        }
        shard_b.counter("probes").add(5);
        direct.counter("probes").add(5);
        shard_b.counter("only_b").inc();
        direct.counter("only_b").inc();
        shard_a.gauge("depth").add(4);
        direct.gauge("depth").add(4);
        for v in [2.0f64, 8.0, 64.0] {
            shard_a.histogram_ms("du_ms").observe(v);
            direct.histogram_ms("du_ms").observe(v);
        }
        shard_b.histogram_ms("du_ms").observe(16.0);
        direct.histogram_ms("du_ms").observe(16.0);

        let merged = Registry::new();
        merged.merge_snapshot(&shard_a.snapshot());
        merged.merge_snapshot(&shard_b.snapshot());
        assert_eq!(
            merged.snapshot().to_json().to_string(),
            direct.snapshot().to_json().to_string()
        );
    }

    #[test]
    fn merge_snapshot_is_order_independent_for_integer_state() {
        let shards: Vec<Registry> = (0..4)
            .map(|i| {
                let r = Registry::new();
                r.counter("c").add(i + 1);
                r.histogram("h", &[10.0, 100.0]).observe((3 * i + 1) as f64);
                r
            })
            .collect();
        let snaps: Vec<Snapshot> = shards.iter().map(|r| r.snapshot()).collect();
        let fwd = Registry::new();
        for s in &snaps {
            fwd.merge_snapshot(s);
        }
        let rev = Registry::new();
        for s in snaps.iter().rev() {
            rev.merge_snapshot(s);
        }
        let a = fwd.snapshot();
        let b = rev.snapshot();
        assert_eq!(a.counter("c"), b.counter("c"));
        let (ha, hb) = (a.histogram("h").unwrap(), b.histogram("h").unwrap());
        assert_eq!(ha.buckets, hb.buckets);
        assert_eq!(ha.count, hb.count);
        assert_eq!(ha.sum, hb.sum);
        assert_eq!(ha.min, hb.min);
        assert_eq!(ha.max, hb.max);
    }

    #[test]
    fn merge_snapshot_caps_samples_and_tracks_spill() {
        let shard = Registry::new();
        let h = shard.histogram("big", &[1e9]);
        for v in 0..SAMPLE_CAP {
            h.observe(v as f64);
        }
        let snap = shard.snapshot();
        let merged = Registry::new();
        merged.merge_snapshot(&snap);
        merged.merge_snapshot(&snap);
        let out = merged.snapshot();
        let hs = out.histogram("big").unwrap();
        assert_eq!(hs.samples.len(), SAMPLE_CAP);
        assert_eq!(hs.sample_overflow, SAMPLE_CAP as u64);
        assert_eq!(hs.count, 2 * SAMPLE_CAP as u64);
        // Disabled registries ignore merges entirely.
        let off = Registry::disabled();
        off.merge_snapshot(&snap);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn snapshot_state_round_trip_is_exact() {
        let r = Registry::new();
        r.counter("probes").add(41);
        r.gauge("depth").set(-3);
        let h = r.histogram_ms("du_ms");
        for v in [0.125, 7.25, 3001.5] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let state = snap.state_json();
        let restored =
            Snapshot::from_state_json(&Json::parse(&state.to_string_pretty()).unwrap()).unwrap();
        assert_eq!(restored.counters, snap.counters);
        assert_eq!(restored.gauges, snap.gauges);
        assert_eq!(restored.histograms.len(), snap.histograms.len());
        let (a, b) = (&restored.histograms[0], &snap.histograms[0]);
        assert_eq!(a.sum_ns, b.sum_ns);
        assert_eq!(a.samples, b.samples);
        assert_eq!(
            restored.to_json().to_string_pretty(),
            snap.to_json().to_string_pretty()
        );
        // Restoring into a fresh registry and continuing equals the
        // uninterrupted registry exactly.
        let resumed = Registry::new();
        resumed.merge_snapshot(&restored);
        resumed.histogram_ms("du_ms").observe(42.0);
        h.observe(42.0);
        assert_eq!(
            resumed.snapshot().to_json().to_string_pretty(),
            r.snapshot().to_json().to_string_pretty()
        );
    }

    #[test]
    fn snapshot_state_rejects_newer_versions() {
        let snap = Registry::new().snapshot();
        let mut state = snap.state_json();
        state.set("version", (SNAPSHOT_STATE_VERSION + 1) as f64);
        assert!(Snapshot::from_state_json(&state).is_err());
        assert!(Snapshot::from_state_json(&Json::object()).is_err());
    }

    #[test]
    fn merged_histogram_sums_are_grouping_independent() {
        // (A ⊕ B) ⊕ C must equal A ⊕ (B ⊕ C) on the full state, even for
        // float-valued observations — the integer-nanosecond accumulator
        // makes the sum exact.
        let shards: Vec<Snapshot> = (0..3)
            .map(|i| {
                let r = Registry::new();
                let h = r.histogram("h", &[1.0, 10.0]);
                h.observe(0.1 + 0.7 * i as f64);
                h.observe(5.3 * (i + 1) as f64);
                r.snapshot()
            })
            .collect();
        let left = Registry::new();
        left.merge_snapshot(&shards[0]);
        left.merge_snapshot(&shards[1]);
        let left_ab = left.snapshot();
        let right_bc = {
            let r = Registry::new();
            r.merge_snapshot(&shards[1]);
            r.merge_snapshot(&shards[2]);
            r.snapshot()
        };
        let grouped_left = Registry::new();
        grouped_left.merge_snapshot(&left_ab);
        grouped_left.merge_snapshot(&shards[2]);
        let grouped_right = Registry::new();
        grouped_right.merge_snapshot(&shards[0]);
        grouped_right.merge_snapshot(&right_bc);
        assert_eq!(
            grouped_left.snapshot().to_json().to_string_pretty(),
            grouped_right.snapshot().to_json().to_string_pretty()
        );
        let (a, b) = (grouped_left.snapshot(), grouped_right.snapshot());
        assert_eq!(
            a.histogram("h").unwrap().sum_ns,
            b.histogram("h").unwrap().sum_ns
        );
    }

    #[test]
    fn sample_reservoir_caps_and_counts_overflow() {
        let r = Registry::new();
        let h = r.histogram("cap", &[1e9]);
        for v in 0..(SAMPLE_CAP + 10) {
            h.observe(v as f64);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("cap").unwrap();
        assert_eq!(hs.samples.len(), SAMPLE_CAP);
        assert_eq!(hs.sample_overflow, 10);
        assert_eq!(hs.count, (SAMPLE_CAP + 10) as u64);
    }
}
