//! Counters, gauges, and fixed-bucket histograms behind a [`Registry`].
//!
//! A `Registry` is a cheap clonable handle. `Registry::disabled()` costs
//! nothing: every metric handle it vends is `None` inside and every
//! operation is a single branch. An enabled registry interns metrics by
//! name in `BTreeMap`s, so snapshots are deterministically ordered and
//! two requests for the same name share one underlying cell.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{Json, ToJson};
use crate::span::SpanTimer;

/// Cap on raw samples retained per histogram for exact quantiles. The
/// reservoir is first-N (deterministic); past the cap only the bucket
/// counts keep growing and `sample_overflow` records how many raw values
/// were not retained.
pub const SAMPLE_CAP: usize = 4096;

/// Default bucket upper bounds for millisecond-scale latencies, spanning
/// sub-ms kernel costs up to multi-second PSM stalls.
pub fn default_ms_buckets() -> Vec<f64> {
    vec![
        0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 25.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
        5000.0,
    ]
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    hists: BTreeMap<String, Arc<Mutex<HistInner>>>,
}

/// Handle to a metrics registry; `None` inside means disabled/no-op.
#[derive(Clone, Default)]
pub struct Registry(Option<Arc<Mutex<Inner>>>);

impl Registry {
    /// An enabled registry.
    pub fn new() -> Registry {
        Registry(Some(Arc::new(Mutex::new(Inner::default()))))
    }

    /// A disabled registry: allocates nothing, every operation no-ops.
    pub fn disabled() -> Registry {
        Registry(None)
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.0.as_ref().map(|inner| {
            let mut g = inner.lock().unwrap();
            g.counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone()
        }))
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.0.as_ref().map(|inner| {
            let mut g = inner.lock().unwrap();
            g.gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0)))
                .clone()
        }))
    }

    /// Get or create a histogram with the given bucket upper bounds.
    /// Bounds must be sorted ascending; an existing histogram keeps its
    /// original bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        Histogram(self.0.as_ref().map(|inner| {
            let mut g = inner.lock().unwrap();
            g.hists
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(HistInner::new(bounds))))
                .clone()
        }))
    }

    /// Get or create a histogram with [`default_ms_buckets`].
    pub fn histogram_ms(&self, name: &str) -> Histogram {
        self.histogram(name, &default_ms_buckets())
    }

    /// Start a wall-clock span recording into histogram `name` (in ms)
    /// when dropped.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::start(self.histogram_ms(name))
    }

    /// Merge a [`Snapshot`] (typically taken from a per-shard registry)
    /// into this registry: counters and gauges add, histograms add
    /// bucket-wise (created with the snapshot's bounds when absent),
    /// retained raw samples append up to [`SAMPLE_CAP`] with the spill
    /// counted in `sample_overflow`. No-op on a disabled registry.
    ///
    /// Counter/gauge/bucket arithmetic is pure integer addition, so the
    /// merged totals are independent of merge order; float histogram
    /// sums are summed in whatever order merges arrive, so callers that
    /// need bit-identical output (the fleet collector) must merge in a
    /// fixed order.
    pub fn merge_snapshot(&self, snap: &Snapshot) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        for (name, v) in &snap.counters {
            g.counters
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .fetch_add(*v, Ordering::Relaxed);
        }
        for (name, v) in &snap.gauges {
            g.gauges
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicI64::new(0)))
                .fetch_add(*v, Ordering::Relaxed);
        }
        for hs in &snap.histograms {
            let cell = g
                .hists
                .entry(hs.name.clone())
                .or_insert_with(|| Arc::new(Mutex::new(HistInner::new(&hs.bounds))))
                .clone();
            cell.lock().unwrap().merge(hs);
        }
    }

    /// A deterministic, name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(inner) = &self.0 {
            let g = inner.lock().unwrap();
            for (name, c) in &g.counters {
                snap.counters
                    .push((name.clone(), c.load(Ordering::Relaxed)));
            }
            for (name, v) in &g.gauges {
                snap.gauges.push((name.clone(), v.load(Ordering::Relaxed)));
            }
            for (name, h) in &g.hists {
                snap.histograms.push(h.lock().unwrap().snapshot(name));
            }
        }
        snap
    }
}

/// Monotonic event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Instantaneous signed level (queue depth, dozing stations, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistInner {
    bounds: Vec<f64>,
    /// `buckets[i]` counts observations `<= bounds[i]`; the final slot
    /// is the overflow bucket (`> bounds.last()`).
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
    sample_overflow: u64,
}

impl HistInner {
    fn new(bounds: &[f64]) -> HistInner {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        HistInner {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
            sample_overflow: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(v);
        } else {
            self.sample_overflow += 1;
        }
    }

    fn merge(&mut self, snap: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, snap.bounds,
            "merging histograms with mismatched bounds"
        );
        for (a, b) in self.buckets.iter_mut().zip(&snap.buckets) {
            *a += b;
        }
        self.count += snap.count;
        self.sum += snap.sum;
        if snap.count > 0 {
            self.min = self.min.min(snap.min);
            self.max = self.max.max(snap.max);
        }
        let take = snap.samples.len().min(SAMPLE_CAP - self.samples.len());
        self.samples.extend_from_slice(&snap.samples[..take]);
        self.sample_overflow += snap.sample_overflow + (snap.samples.len() - take) as u64;
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            buckets: self.buckets.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            samples: self.samples.clone(),
            sample_overflow: self.sample_overflow,
        }
    }
}

/// Fixed-bucket latency/size histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<HistInner>>>);

impl Histogram {
    /// Whether this handle records anywhere (false for handles vended
    /// by a disabled registry).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().observe(v);
        }
    }

    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.lock().unwrap().count)
    }
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// First-N raw samples (deterministic reservoir, cap [`SAMPLE_CAP`]).
    pub samples: Vec<f64>,
    /// Observations beyond the sample cap (bucket counts still include
    /// them; quantiles from `samples` become approximate).
    pub sample_overflow: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile from the retained raw samples (linear interpolation,
    /// R type-7 — same convention as `am_stats::quantile`). Exact while
    /// `sample_overflow == 0`.
    pub fn quantile(&self, p: f64) -> f64 {
        let mut xs = self.samples.clone();
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let h = p.clamp(0.0, 1.0) * (xs.len() - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        xs[lo] + (xs[hi] - xs[lo]) * (h - lo as f64)
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("name", &self.name);
        obj.set("count", self.count);
        obj.set("sum", self.sum);
        obj.set("min", self.min);
        obj.set("max", self.max);
        obj.set("mean", self.mean());
        obj.set("p50", self.p50());
        obj.set("p95", self.p95());
        obj.set("p99", self.p99());
        obj.set("bounds", &self.bounds);
        obj.set("buckets", &self.buckets);
        obj.set("sample_overflow", self.sample_overflow);
        obj
    }
}

/// Deterministic (name-sorted) view of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (name, v) in &self.counters {
            counters.set(name, *v);
        }
        let mut gauges = Json::object();
        for (name, v) in &self.gauges {
            gauges.set(name, *v);
        }
        let mut hists = Json::array();
        for h in &self.histograms {
            hists.push(h.to_json());
        }
        let mut obj = Json::object();
        obj.set("counters", counters);
        obj.set("gauges", gauges);
        obj.set("histograms", hists);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_a_noop() {
        let r = Registry::disabled();
        let c = r.counter("x");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = r.gauge("y");
        g.set(5);
        assert_eq!(g.get(), 0);
        let h = r.histogram_ms("z");
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn same_name_shares_one_cell() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
        assert_eq!(r.snapshot().counter("a"), Some(3));
    }

    #[test]
    fn bucket_boundaries_are_le() {
        let r = Registry::new();
        let h = r.histogram("h", &[1.0, 10.0]);
        for v in [0.5, 1.0, 1.0001, 10.0, 11.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h").unwrap();
        // <=1: {0.5, 1.0}; <=10: {1.0001, 10.0}; >10: {11.0}
        assert_eq!(hs.buckets, vec![2, 2, 1]);
        assert_eq!(hs.count, 5);
        assert_eq!(hs.min, 0.5);
        assert_eq!(hs.max, 11.0);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.gauge("mid").set(1);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn quantiles_match_r7() {
        let r = Registry::new();
        let h = r.histogram("q", &[100.0]);
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("q").unwrap();
        assert!((hs.p50() - 50.5).abs() < 1e-9);
        assert!((hs.quantile(0.0) - 1.0).abs() < 1e-9);
        assert!((hs.quantile(1.0) - 100.0).abs() < 1e-9);
        assert!((hs.p95() - 95.05).abs() < 1e-9);
    }

    #[test]
    fn merge_snapshot_equals_direct_ingest() {
        // Two shard registries vs one registry fed everything: merged
        // snapshots must agree exactly (integer-valued observations so
        // even the float sums are exact).
        let shard_a = Registry::new();
        let shard_b = Registry::new();
        let direct = Registry::new();
        for v in [1u64, 3, 7] {
            shard_a.counter("probes").add(v);
            direct.counter("probes").add(v);
        }
        shard_b.counter("probes").add(5);
        direct.counter("probes").add(5);
        shard_b.counter("only_b").inc();
        direct.counter("only_b").inc();
        shard_a.gauge("depth").add(4);
        direct.gauge("depth").add(4);
        for v in [2.0f64, 8.0, 64.0] {
            shard_a.histogram_ms("du_ms").observe(v);
            direct.histogram_ms("du_ms").observe(v);
        }
        shard_b.histogram_ms("du_ms").observe(16.0);
        direct.histogram_ms("du_ms").observe(16.0);

        let merged = Registry::new();
        merged.merge_snapshot(&shard_a.snapshot());
        merged.merge_snapshot(&shard_b.snapshot());
        assert_eq!(
            merged.snapshot().to_json().to_string(),
            direct.snapshot().to_json().to_string()
        );
    }

    #[test]
    fn merge_snapshot_is_order_independent_for_integer_state() {
        let shards: Vec<Registry> = (0..4)
            .map(|i| {
                let r = Registry::new();
                r.counter("c").add(i + 1);
                r.histogram("h", &[10.0, 100.0]).observe((3 * i + 1) as f64);
                r
            })
            .collect();
        let snaps: Vec<Snapshot> = shards.iter().map(|r| r.snapshot()).collect();
        let fwd = Registry::new();
        for s in &snaps {
            fwd.merge_snapshot(s);
        }
        let rev = Registry::new();
        for s in snaps.iter().rev() {
            rev.merge_snapshot(s);
        }
        let a = fwd.snapshot();
        let b = rev.snapshot();
        assert_eq!(a.counter("c"), b.counter("c"));
        let (ha, hb) = (a.histogram("h").unwrap(), b.histogram("h").unwrap());
        assert_eq!(ha.buckets, hb.buckets);
        assert_eq!(ha.count, hb.count);
        assert_eq!(ha.sum, hb.sum);
        assert_eq!(ha.min, hb.min);
        assert_eq!(ha.max, hb.max);
    }

    #[test]
    fn merge_snapshot_caps_samples_and_tracks_spill() {
        let shard = Registry::new();
        let h = shard.histogram("big", &[1e9]);
        for v in 0..SAMPLE_CAP {
            h.observe(v as f64);
        }
        let snap = shard.snapshot();
        let merged = Registry::new();
        merged.merge_snapshot(&snap);
        merged.merge_snapshot(&snap);
        let out = merged.snapshot();
        let hs = out.histogram("big").unwrap();
        assert_eq!(hs.samples.len(), SAMPLE_CAP);
        assert_eq!(hs.sample_overflow, SAMPLE_CAP as u64);
        assert_eq!(hs.count, 2 * SAMPLE_CAP as u64);
        // Disabled registries ignore merges entirely.
        let off = Registry::disabled();
        off.merge_snapshot(&snap);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn sample_reservoir_caps_and_counts_overflow() {
        let r = Registry::new();
        let h = r.histogram("cap", &[1e9]);
        for v in 0..(SAMPLE_CAP + 10) {
            h.observe(v as f64);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("cap").unwrap();
        assert_eq!(hs.samples.len(), SAMPLE_CAP);
        assert_eq!(hs.sample_overflow, 10);
        assert_eq!(hs.count, (SAMPLE_CAP + 10) as u64);
    }
}
