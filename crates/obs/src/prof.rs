//! `obs::prof` — self-profiling for the engine's own hot paths.
//!
//! Everything else in `obs` observes the *simulated* world (virtual
//! microseconds per probe, counters per retry). This module observes
//! the *host*: wall-clock nanoseconds and heap allocations spent per
//! engine phase, attributed to a tree of scoped phases so a campaign
//! run can answer "where did the 12 seconds go?" before any
//! optimisation PR claims a win.
//!
//! Design mirrors [`crate::trace::Tracer`]'s option-inside-handle
//! pattern: a [`Profiler`] is a cheap clonable handle around
//! `Option<Arc<…>>`. A disabled profiler ([`Profiler::disabled`], the
//! `Default`) turns every operation into a single branch on `None` —
//! no clock read, no lock, no thread-local access, and **zero heap
//! allocation** (asserted by the `prof_alloc` test binary with the
//! counting global allocator below) — so instrumented hot paths cost
//! nothing when nobody is profiling and the byte-identical campaign
//! determinism contract is untouched.
//!
//! Enabled, each [`Profiler::phase`] guard:
//!
//! * pushes a frame on a thread-local phase stack (nesting builds a
//!   call tree; recursion builds self-named child nodes),
//! * snapshots the thread's allocation counters on entry and exit so
//!   allocation churn is attributed per phase exactly like time,
//! * accumulates integer nanoseconds into an interned node keyed by
//!   `(parent, name)` — steady-state guards allocate nothing,
//! * records a bounded per-thread timeline of closed spans for Chrome
//!   `trace_event` export via [`crate::export::chrome_trace`].
//!
//! Exporters: [`ProfSnapshot::folded`] (flamegraph-compatible folded
//! stacks), [`ProfSnapshot::chrome_spans`] (feed to
//! [`crate::export::chrome_trace`]), and [`ProfSnapshot::merged`]
//! (cross-thread tree for attribution tables).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::{SpanId, SpanRecord, TraceId};

// ---------------------------------------------------------------------------
// Counting global allocator
// ---------------------------------------------------------------------------

/// A counting wrapper around the system allocator. Binaries that want
/// per-phase allocation attribution (the `repro` binary, the
/// `prof_alloc` test binary) install it:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: obs::prof::CountingAlloc = obs::prof::CountingAlloc;
/// ```
///
/// Every `alloc`/`realloc` bumps const-initialised thread-local
/// counters (no destructor, so counting stays safe even during TLS
/// teardown). Without the installation the counters simply stay zero
/// and phase attribution reports no allocations — the profiler itself
/// keeps working.
pub struct CountingAlloc;

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_alloc(bytes: usize) {
    // `try_with` + const-init Cells: safe from inside the allocator,
    // including during thread teardown.
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = TL_ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

// SAFETY: defers all allocation to `System`; only adds counter bumps.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// This thread's cumulative `(allocations, bytes)` since start, as
/// counted by [`CountingAlloc`]. Both stay `0` unless a
/// [`CountingAlloc`] is installed as the global allocator.
pub fn thread_alloc_counts() -> (u64, u64) {
    let allocs = TL_ALLOCS.try_with(Cell::get).unwrap_or(0);
    let bytes = TL_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (allocs, bytes)
}

// ---------------------------------------------------------------------------
// Core state
// ---------------------------------------------------------------------------

/// Sentinel parent id for root phases in the interning map.
const ROOT: u32 = u32::MAX;

/// Per-thread spans kept for Chrome-trace export. Beyond this, spans
/// still accumulate into the node tree but drop out of the timeline
/// (`timeline_dropped` counts them).
const TIMELINE_CAP: usize = 16 * 1024;

#[derive(Clone)]
struct NodeStat {
    name: &'static str,
    parent: Option<u32>,
    calls: u64,
    total_ns: u64,
    child_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
    child_allocs: u64,
    child_alloc_bytes: u64,
}

impl NodeStat {
    fn new(name: &'static str, parent: Option<u32>) -> NodeStat {
        NodeStat {
            name,
            parent,
            calls: 0,
            total_ns: 0,
            child_ns: 0,
            allocs: 0,
            alloc_bytes: 0,
            child_allocs: 0,
            child_alloc_bytes: 0,
        }
    }
}

struct Frame {
    node: u32,
    start_ns: u64,
    child_ns: u64,
    start_allocs: u64,
    start_bytes: u64,
    child_allocs: u64,
    child_bytes: u64,
    span_id: u64,
    parent_span: Option<u64>,
}

struct TimelineEv {
    node: u32,
    span_id: u64,
    parent_span: Option<u64>,
    start_ns: u64,
    end_ns: u64,
}

struct ThreadState {
    nodes: Vec<NodeStat>,
    interned: HashMap<(u32, &'static str), u32>,
    stack: Vec<Frame>,
    timeline: Vec<TimelineEv>,
    timeline_dropped: u64,
    next_span: u64,
    first_ns: Option<u64>,
    last_ns: u64,
}

impl ThreadState {
    fn new() -> ThreadState {
        ThreadState {
            nodes: Vec::with_capacity(32),
            interned: HashMap::with_capacity(32),
            stack: Vec::with_capacity(16),
            // Pre-sized so steady-state guards never grow it: a guard
            // after warm-up performs zero heap allocations.
            timeline: Vec::with_capacity(TIMELINE_CAP),
            timeline_dropped: 0,
            next_span: 0,
            first_ns: None,
            last_ns: 0,
        }
    }

    fn intern(&mut self, parent: u32, name: &'static str) -> u32 {
        if let Some(&id) = self.interned.get(&(parent, name)) {
            return id;
        }
        let id = self.nodes.len() as u32;
        let p = if parent == ROOT { None } else { Some(parent) };
        self.nodes.push(NodeStat::new(name, p));
        self.interned.insert((parent, name), id);
        id
    }

    /// Close the innermost open frame at time `end` with allocation
    /// counters `(allocs, bytes)`.
    fn close_top(&mut self, end: u64, allocs: u64, bytes: u64) {
        let f = match self.stack.pop() {
            Some(f) => f,
            None => return,
        };
        let total = end.saturating_sub(f.start_ns);
        let d_allocs = allocs.saturating_sub(f.start_allocs);
        let d_bytes = bytes.saturating_sub(f.start_bytes);
        {
            let n = &mut self.nodes[f.node as usize];
            n.calls += 1;
            n.total_ns += total;
            n.child_ns += f.child_ns;
            n.allocs += d_allocs;
            n.alloc_bytes += d_bytes;
            n.child_allocs += f.child_allocs;
            n.child_alloc_bytes += f.child_bytes;
        }
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += total;
            parent.child_allocs += d_allocs;
            parent.child_bytes += d_bytes;
        }
        if end > self.last_ns {
            self.last_ns = end;
        }
        if self.timeline.len() < TIMELINE_CAP {
            self.timeline.push(TimelineEv {
                node: f.node,
                span_id: f.span_id,
                parent_span: f.parent_span,
                start_ns: f.start_ns,
                end_ns: end,
            });
        } else {
            self.timeline_dropped += 1;
        }
    }
}

struct ThreadSlot {
    label: Mutex<String>,
    state: Mutex<ThreadState>,
}

struct Shared {
    /// Distinguishes profilers in the per-thread slot cache.
    id: u64,
    epoch: Instant,
    threads: Mutex<Vec<Arc<ThreadSlot>>>,
}

static NEXT_PROFILER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(profiler id, slot)` cache; linear scan — a thread profiles
    /// for at most one or two profilers at a time.
    static SLOTS: RefCell<Vec<(u64, Arc<ThreadSlot>)>> = const { RefCell::new(Vec::new()) };
}

impl Shared {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// This thread's slot for this profiler, registering one on first
    /// use. Returns `None` only during thread teardown.
    fn thread_slot(self: &Arc<Shared>) -> Option<Arc<ThreadSlot>> {
        SLOTS
            .try_with(|cache| {
                let mut cache = cache.borrow_mut();
                // Drop cache entries whose profiler died (only the cache
                // still holds the slot) so long-lived threads don't leak.
                cache.retain(|(_, slot)| Arc::strong_count(slot) > 1);
                if let Some((_, slot)) = cache.iter().find(|(id, _)| *id == self.id) {
                    return slot.clone();
                }
                let mut threads = self.threads.lock().unwrap();
                let slot = Arc::new(ThreadSlot {
                    label: Mutex::new(format!("thread-{}", threads.len())),
                    state: Mutex::new(ThreadState::new()),
                });
                threads.push(slot.clone());
                drop(threads);
                cache.push((self.id, slot.clone()));
                slot
            })
            .ok()
    }
}

// ---------------------------------------------------------------------------
// Public handle
// ---------------------------------------------------------------------------

/// A handle to one profiling session. Cheap to clone (all clones feed
/// the same accumulators); `Default` is [`Profiler::disabled`].
#[derive(Clone, Default)]
pub struct Profiler(Option<Arc<Shared>>);

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Profiler {
    /// An enabled profiler with a fresh epoch.
    pub fn new() -> Profiler {
        Profiler(Some(Arc::new(Shared {
            id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            threads: Mutex::new(Vec::new()),
        })))
    }

    /// A disabled profiler: every operation is a no-op costing one
    /// branch, with zero heap allocation.
    pub fn disabled() -> Profiler {
        Profiler(None)
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open a scoped phase. The returned guard closes the phase when
    /// dropped; nested calls build a per-thread phase tree. `name`
    /// must be a string literal — nodes are interned by
    /// `(parent, name)` pointer-free comparison of the static str.
    #[inline]
    #[must_use = "the phase closes when the guard drops"]
    pub fn phase(&self, name: &'static str) -> ProfPhase {
        let Some(shared) = &self.0 else {
            return ProfPhase(None);
        };
        let Some(slot) = shared.thread_slot() else {
            return ProfPhase(None);
        };
        let now = shared.now_ns();
        let depth;
        {
            let mut st = slot.state.lock().unwrap();
            let parent_key = st.stack.last().map(|f| f.node).unwrap_or(ROOT);
            let parent_span = st.stack.last().map(|f| f.span_id);
            let node = st.intern(parent_key, name);
            let span_id = st.next_span;
            st.next_span += 1;
            if st.first_ns.is_none() {
                st.first_ns = Some(now);
            }
            // Counters read last so interning / map growth on a cold
            // path is charged to the *enclosing* phase, not this one.
            let (allocs, bytes) = thread_alloc_counts();
            st.stack.push(Frame {
                node,
                start_ns: now,
                child_ns: 0,
                start_allocs: allocs,
                start_bytes: bytes,
                child_allocs: 0,
                child_bytes: 0,
                span_id,
                parent_span,
            });
            depth = st.stack.len();
        }
        ProfPhase(Some(Active {
            shared: shared.clone(),
            slot,
            depth,
        }))
    }

    /// Label this thread in snapshots/exports (e.g. `worker-3`). No-op
    /// when disabled.
    pub fn set_thread_label(&self, label: &str) {
        if let Some(shared) = &self.0 {
            if let Some(slot) = shared.thread_slot() {
                *slot.label.lock().unwrap() = label.to_string();
            }
        }
    }

    /// Nanoseconds since this profiler's epoch (0 when disabled).
    /// Useful for correlating external measurements with exports.
    pub fn elapsed_ns(&self) -> u64 {
        self.0.as_ref().map(|s| s.now_ns()).unwrap_or(0)
    }

    /// A consistent view of every thread's phase tree. Open phases are
    /// included as if they closed at the snapshot instant (their
    /// in-flight time and allocations count), so a live snapshot
    /// mid-campaign still attributes the full elapsed window.
    pub fn snapshot(&self) -> ProfSnapshot {
        let Some(shared) = &self.0 else {
            return ProfSnapshot::default();
        };
        let now = shared.now_ns();
        let slots: Vec<Arc<ThreadSlot>> = shared.threads.lock().unwrap().clone();
        let mut threads = Vec::with_capacity(slots.len());
        for slot in slots {
            let label = slot.label.lock().unwrap().clone();
            let st = slot.state.lock().unwrap();
            // Effective per-node accumulators = closed totals plus the
            // open stack frames as if they ended now.
            let mut eff: Vec<NodeStat> = st.nodes.clone();
            // This thread's *current* allocation counters only make
            // sense from the owning thread; for open frames observed
            // cross-thread we attribute time but leave in-flight
            // allocation deltas out (they land when the frame closes).
            for (i, f) in st.stack.iter().enumerate() {
                let run = now.saturating_sub(f.start_ns);
                let n = &mut eff[f.node as usize];
                n.calls += 1;
                n.total_ns += run;
                let mut child = f.child_ns;
                if let Some(inner) = st.stack.get(i + 1) {
                    // The next frame up the stack is this frame's only
                    // open child; its in-flight time is our child time.
                    child += now.saturating_sub(inner.start_ns);
                }
                n.child_ns += child;
                n.child_allocs += f.child_allocs;
                n.child_alloc_bytes += f.child_bytes;
            }
            let nodes: Vec<ProfNode> = eff
                .iter()
                .map(|n| ProfNode {
                    name: n.name,
                    parent: n.parent.map(|p| p as usize),
                    calls: n.calls,
                    total_ns: n.total_ns,
                    self_ns: n.total_ns.saturating_sub(n.child_ns),
                    allocs: n.allocs,
                    self_allocs: n.allocs.saturating_sub(n.child_allocs),
                    alloc_bytes: n.alloc_bytes,
                    self_alloc_bytes: n.alloc_bytes.saturating_sub(n.child_alloc_bytes),
                })
                .collect();
            let active_ns = match st.first_ns {
                Some(first) => {
                    let end = if st.stack.is_empty() { st.last_ns } else { now };
                    end.saturating_sub(first)
                }
                None => 0,
            };
            let timeline = st
                .timeline
                .iter()
                .map(|ev| ProfSpan {
                    node: ev.node as usize,
                    span_id: ev.span_id,
                    parent_span: ev.parent_span,
                    start_ns: ev.start_ns,
                    end_ns: ev.end_ns,
                })
                .collect();
            threads.push(ThreadProf {
                label,
                active_ns,
                nodes,
                timeline,
                timeline_dropped: st.timeline_dropped,
            });
        }
        ProfSnapshot { threads }
    }
}

/// Scope guard for one open phase; closes it (recording elapsed time
/// and allocation deltas) on drop. Robust to out-of-order drops: a
/// guard dropped while inner guards are still open closes the
/// abandoned inner frames first; a guard whose frame was already
/// closed by an outer guard does nothing.
#[must_use = "the phase closes when the guard drops"]
pub struct ProfPhase(Option<Active>);

struct Active {
    shared: Arc<Shared>,
    slot: Arc<ThreadSlot>,
    depth: usize,
}

impl Drop for ProfPhase {
    fn drop(&mut self) {
        let Some(act) = self.0.take() else {
            return;
        };
        let end = act.shared.now_ns();
        let (allocs, bytes) = thread_alloc_counts();
        let mut st = act.slot.state.lock().unwrap();
        while st.stack.len() >= act.depth {
            st.close_top(end, allocs, bytes);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots & exporters
// ---------------------------------------------------------------------------

/// One node of a thread's phase tree, with self/total splits for both
/// time and allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfNode {
    /// Phase name (the literal passed to [`Profiler::phase`]).
    pub name: &'static str,
    /// Index of the parent node within the same thread, if any.
    pub parent: Option<usize>,
    /// Times this exact phase path was entered.
    pub calls: u64,
    /// Wall nanoseconds inside this phase, children included.
    pub total_ns: u64,
    /// Wall nanoseconds inside this phase, children excluded.
    pub self_ns: u64,
    /// Heap allocations inside this phase, children included.
    pub allocs: u64,
    /// Heap allocations inside this phase, children excluded.
    pub self_allocs: u64,
    /// Heap bytes allocated inside this phase, children included.
    pub alloc_bytes: u64,
    /// Heap bytes allocated inside this phase, children excluded.
    pub self_alloc_bytes: u64,
}

/// One closed span from a thread's bounded timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSpan {
    /// Index into the owning [`ThreadProf::nodes`].
    pub node: usize,
    /// Per-thread monotonically increasing span id.
    pub span_id: u64,
    /// Enclosing span's id, if the phase was nested.
    pub parent_span: Option<u64>,
    /// Start, nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the profiler epoch.
    pub end_ns: u64,
}

/// One profiled thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadProf {
    /// Thread label ([`Profiler::set_thread_label`] or `thread-N`).
    pub label: String,
    /// First phase entry to last phase exit (or the snapshot instant
    /// while phases are still open) on this thread.
    pub active_ns: u64,
    /// The thread's phase tree.
    pub nodes: Vec<ProfNode>,
    /// Bounded timeline of closed spans, oldest first.
    pub timeline: Vec<ProfSpan>,
    /// Spans that did not fit the timeline (tree totals still include
    /// them).
    pub timeline_dropped: u64,
}

/// A point-in-time view of every profiled thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfSnapshot {
    /// Per-thread phase trees, in thread-registration order.
    pub threads: Vec<ThreadProf>,
}

/// One node of the cross-thread merged phase tree, pre-order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedNode {
    /// Phase name.
    pub name: &'static str,
    /// Nesting depth (0 = root phase).
    pub depth: usize,
    /// Calls summed across threads.
    pub calls: u64,
    /// Total nanoseconds summed across threads.
    pub total_ns: u64,
    /// Self nanoseconds summed across threads.
    pub self_ns: u64,
    /// Allocations summed across threads.
    pub allocs: u64,
    /// Self allocations summed across threads.
    pub self_allocs: u64,
    /// Allocated bytes summed across threads.
    pub alloc_bytes: u64,
    /// Self allocated bytes summed across threads.
    pub self_alloc_bytes: u64,
}

impl ThreadProf {
    /// `a;b;c` path of node `idx`.
    fn path_of(&self, idx: usize) -> String {
        let mut segs = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            segs.push(self.nodes[i].name);
            cur = self.nodes[i].parent;
        }
        segs.reverse();
        segs.join(";")
    }
}

impl ProfSnapshot {
    /// Total nanoseconds attributed to root phases across all threads
    /// — the numerator of an attribution ratio whose denominator is
    /// `threads × campaign wall time`.
    pub fn root_total_ns(&self) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| t.nodes.iter())
            .filter(|n| n.parent.is_none())
            .map(|n| n.total_ns)
            .sum()
    }

    /// Self-nanoseconds per phase *name*, summed over every node with
    /// that name on every thread — the flat profile that feeds live
    /// telemetry (`phase split`) and quick dominance checks. Sorted by
    /// descending self time, then name.
    pub fn flat_self_ns(&self) -> Vec<(&'static str, u64)> {
        let mut acc: BTreeMap<&'static str, u64> = BTreeMap::new();
        for t in &self.threads {
            for n in &t.nodes {
                *acc.entry(n.name).or_insert(0) += n.self_ns;
            }
        }
        let mut v: Vec<(&'static str, u64)> = acc.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Folded-stacks text (the format `flamegraph.pl` and speedscope
    /// ingest): one `path;seg value` line per phase path, merged
    /// across threads, value = self-nanoseconds, paths sorted
    /// lexicographically so output is deterministic for a given tree.
    pub fn folded(&self) -> String {
        let mut acc: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.threads {
            for (idx, n) in t.nodes.iter().enumerate() {
                if n.self_ns == 0 {
                    continue;
                }
                *acc.entry(t.path_of(idx)).or_insert(0) += n.self_ns;
            }
        }
        let mut out = String::new();
        for (path, ns) in acc {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// The timelines as [`SpanRecord`]s for
    /// [`crate::export::chrome_trace`]: one trace id (= one Chrome
    /// `tid` lane) per thread, span ids made globally unique by a
    /// per-thread offset.
    pub fn chrome_spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for (t_idx, t) in self.threads.iter().enumerate() {
            let offset = (t_idx as u64) << 40;
            for ev in &t.timeline {
                out.push(SpanRecord {
                    id: SpanId(offset | ev.span_id),
                    trace: TraceId(t_idx as u64),
                    parent: ev.parent_span.map(|p| SpanId(offset | p)),
                    name: t.nodes[ev.node].name,
                    cat: "prof",
                    start_ns: ev.start_ns,
                    end_ns: Some(ev.end_ns),
                    attrs: Vec::new(),
                });
            }
        }
        out
    }

    /// Merge the per-thread trees into one tree keyed by phase *path*
    /// (two threads' `worker;run_device;des` nodes fold together),
    /// returned pre-order with each level sorted by descending total
    /// time (name as tiebreak, so the order is deterministic).
    pub fn merged(&self) -> Vec<MergedNode> {
        #[derive(Default)]
        struct Agg {
            calls: u64,
            total_ns: u64,
            self_ns: u64,
            allocs: u64,
            self_allocs: u64,
            alloc_bytes: u64,
            self_alloc_bytes: u64,
            children: BTreeMap<&'static str, Agg>,
        }
        let mut root = Agg::default();
        for t in &self.threads {
            for (idx, n) in t.nodes.iter().enumerate() {
                // Walk the path from the root down, creating aggregates.
                let mut segs = Vec::new();
                let mut cur = Some(idx);
                while let Some(i) = cur {
                    segs.push(t.nodes[i].name);
                    cur = t.nodes[i].parent;
                }
                segs.reverse();
                let mut agg = &mut root;
                for seg in segs {
                    agg = agg.children.entry(seg).or_default();
                }
                agg.calls += n.calls;
                agg.total_ns += n.total_ns;
                agg.self_ns += n.self_ns;
                agg.allocs += n.allocs;
                agg.self_allocs += n.self_allocs;
                agg.alloc_bytes += n.alloc_bytes;
                agg.self_alloc_bytes += n.self_alloc_bytes;
            }
        }
        fn emit(agg: &Agg, depth: usize, out: &mut Vec<MergedNode>) {
            let mut kids: Vec<(&&'static str, &Agg)> = agg.children.iter().collect();
            kids.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
            for (name, child) in kids {
                out.push(MergedNode {
                    name,
                    depth,
                    calls: child.calls,
                    total_ns: child.total_ns,
                    self_ns: child.self_ns,
                    allocs: child.allocs,
                    self_allocs: child.self_allocs,
                    alloc_bytes: child.alloc_bytes,
                    self_alloc_bytes: child.self_alloc_bytes,
                });
                emit(child, depth + 1, out);
            }
        }
        let mut out = Vec::new();
        emit(&root, 0, &mut out);
        out
    }
}

impl crate::ToJson for ProfSnapshot {
    fn to_json(&self) -> crate::Json {
        let mut threads = crate::Json::array();
        for t in &self.threads {
            let mut nodes = crate::Json::array();
            for n in &t.nodes {
                let mut obj = crate::Json::object();
                obj.set("name", n.name);
                match n.parent {
                    Some(p) => obj.set("parent", p as u64),
                    None => obj.set("parent", crate::Json::Null),
                }
                obj.set("calls", n.calls);
                obj.set("total_ns", n.total_ns);
                obj.set("self_ns", n.self_ns);
                obj.set("allocs", n.allocs);
                obj.set("self_allocs", n.self_allocs);
                obj.set("alloc_bytes", n.alloc_bytes);
                obj.set("self_alloc_bytes", n.self_alloc_bytes);
                nodes.push(obj);
            }
            let mut obj = crate::Json::object();
            obj.set("label", &t.label);
            obj.set("active_ns", t.active_ns);
            obj.set("nodes", nodes);
            obj.set("timeline_spans", t.timeline.len() as u64);
            obj.set("timeline_dropped", t.timeline_dropped);
            threads.push(obj);
        }
        let mut doc = crate::Json::object();
        doc.set("format", "acutemon-prof-snapshot");
        doc.set("threads", threads);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    fn node<'a>(t: &'a ThreadProf, path: &[&str]) -> &'a ProfNode {
        let mut parent: Option<usize> = None;
        let mut found = None;
        for seg in path {
            let idx = t
                .nodes
                .iter()
                .position(|n| n.name == *seg && n.parent == parent)
                .unwrap_or_else(|| panic!("missing node {seg} under {parent:?}"));
            parent = Some(idx);
            found = Some(idx);
        }
        &t.nodes[found.unwrap()]
    }

    #[test]
    fn nested_phases_split_self_and_child_time() {
        let p = Profiler::new();
        {
            let _a = p.phase("a");
            spin(Duration::from_millis(2));
            {
                let _b = p.phase("b");
                spin(Duration::from_millis(2));
            }
            spin(Duration::from_millis(1));
        }
        let snap = p.snapshot();
        assert_eq!(snap.threads.len(), 1);
        let t = &snap.threads[0];
        let a = node(t, &["a"]);
        let b = node(t, &["a", "b"]);
        assert_eq!(a.calls, 1);
        assert_eq!(b.calls, 1);
        assert!(a.total_ns >= b.total_ns);
        assert_eq!(a.self_ns, a.total_ns - b.total_ns);
        assert!(b.total_ns >= 1_000_000, "b ran ≥2ms, got {}ns", b.total_ns);
        assert_eq!(snap.root_total_ns(), a.total_ns);
    }

    #[test]
    fn reentrant_phases_build_self_named_children() {
        fn recurse(p: &Profiler, depth: u32) {
            let _g = p.phase("r");
            if depth > 0 {
                recurse(p, depth - 1);
            }
        }
        let p = Profiler::new();
        recurse(&p, 2);
        let t = &p.snapshot().threads[0];
        assert_eq!(node(t, &["r"]).calls, 1);
        assert_eq!(node(t, &["r", "r"]).calls, 1);
        assert_eq!(node(t, &["r", "r", "r"]).calls, 1);
        // Same name, same parent folds into one node:
        recurse(&p, 0);
        let t = &p.snapshot().threads[0];
        assert_eq!(node(t, &["r"]).calls, 2);
    }

    #[test]
    fn phases_accumulate_across_threads() {
        let p = Profiler::new();
        let mut handles = Vec::new();
        for w in 0..3 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                p.set_thread_label(&format!("worker-{w}"));
                for _ in 0..10 {
                    let _g = p.phase("work");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = p.snapshot();
        assert_eq!(snap.threads.len(), 3);
        let mut labels: Vec<&str> = snap.threads.iter().map(|t| t.label.as_str()).collect();
        labels.sort();
        assert_eq!(labels, ["worker-0", "worker-1", "worker-2"]);
        let total_calls: u64 = snap
            .threads
            .iter()
            .map(|t| t.nodes.iter().map(|n| n.calls).sum::<u64>())
            .sum();
        assert_eq!(total_calls, 30);
        let flat = snap.flat_self_ns();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].0, "work");
        let merged = snap.merged();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].calls, 30);
        assert_eq!(merged[0].depth, 0);
    }

    #[test]
    fn out_of_order_guard_drop_is_lenient() {
        let p = Profiler::new();
        let a = p.phase("a");
        let b = p.phase("b");
        drop(a); // closes b first, then a
        drop(b); // frame already gone — no-op
        let t = &p.snapshot().threads[0];
        assert_eq!(node(t, &["a"]).calls, 1);
        assert_eq!(node(t, &["a", "b"]).calls, 1);
        // The tree is intact for further use:
        {
            let _c = p.phase("c");
        }
        let t = &p.snapshot().threads[0];
        assert_eq!(node(t, &["c"]).calls, 1);
        assert!(node(t, &["c"]).parent.is_none());
    }

    #[test]
    fn snapshot_includes_open_frames() {
        let p = Profiler::new();
        let _a = p.phase("a");
        spin(Duration::from_millis(2));
        let _b = p.phase("b");
        spin(Duration::from_millis(1));
        let snap = p.snapshot();
        let t = &snap.threads[0];
        let a = node(t, &["a"]);
        let b = node(t, &["a", "b"]);
        assert_eq!(a.calls, 1);
        assert!(a.total_ns >= 3_000_000 - 1_000_000); // ≈3ms elapsed
        assert!(b.total_ns >= 500_000);
        assert_eq!(a.self_ns, a.total_ns - b.total_ns);
        assert!(t.active_ns >= a.total_ns);
    }

    // Golden test: folded output for a hand-built snapshot is exact.
    #[test]
    fn folded_stacks_golden() {
        fn n(name: &'static str, parent: Option<usize>, self_ns: u64, total_ns: u64) -> ProfNode {
            ProfNode {
                name,
                parent,
                calls: 1,
                total_ns,
                self_ns,
                allocs: 0,
                self_allocs: 0,
                alloc_bytes: 0,
                self_alloc_bytes: 0,
            }
        }
        let snap = ProfSnapshot {
            threads: vec![
                ThreadProf {
                    label: "worker-0".to_string(),
                    active_ns: 1000,
                    nodes: vec![
                        n("worker", None, 100, 1000),
                        n("run_device", Some(0), 0, 900),
                        n("des", Some(1), 700, 700),
                        n("setup", Some(1), 200, 200),
                    ],
                    timeline: Vec::new(),
                    timeline_dropped: 0,
                },
                ThreadProf {
                    label: "worker-1".to_string(),
                    active_ns: 500,
                    nodes: vec![
                        n("worker", None, 50, 500),
                        n("run_device", Some(0), 0, 450),
                        n("des", Some(1), 450, 450),
                    ],
                    timeline: Vec::new(),
                    timeline_dropped: 0,
                },
            ],
        };
        assert_eq!(
            snap.folded(),
            "worker 150\n\
             worker;run_device;des 1150\n\
             worker;run_device;setup 200\n"
        );
        let merged = snap.merged();
        assert_eq!(merged[0].name, "worker");
        assert_eq!(merged[0].total_ns, 1500);
        assert_eq!(merged[1].name, "run_device");
        assert_eq!(merged[1].depth, 1);
        assert_eq!(merged[2].name, "des"); // larger total than setup
        assert_eq!(merged[2].total_ns, 1150);
        assert_eq!(snap.root_total_ns(), 1500);
    }

    #[test]
    fn chrome_spans_reference_thread_lanes() {
        let p = Profiler::new();
        {
            let _a = p.phase("a");
            let _b = p.phase("b");
        }
        let snap = p.snapshot();
        let spans = snap.chrome_spans();
        assert_eq!(spans.len(), 2);
        // Both spans on the same lane; b's parent is a.
        assert_eq!(spans[0].trace.0, 0);
        assert_eq!(spans[1].trace.0, 0);
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        let a = spans.iter().find(|s| s.name == "a").unwrap();
        assert_eq!(b.parent, Some(a.id));
        assert!(a.end_ns.unwrap() >= b.end_ns.unwrap());
        let json = crate::export::chrome_trace(&spans).to_string();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"prof\""));
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        p.set_thread_label("ignored");
        {
            let _g = p.phase("a");
            let _h = p.phase("b");
        }
        assert_eq!(p.snapshot(), ProfSnapshot::default());
        assert_eq!(p.snapshot().folded(), "");
        assert_eq!(p.elapsed_ns(), 0);
    }

    #[test]
    fn two_profilers_on_one_thread_stay_separate() {
        let p1 = Profiler::new();
        let p2 = Profiler::new();
        {
            let _a = p1.phase("only-p1");
            let _b = p2.phase("only-p2");
        }
        let s1 = p1.snapshot();
        let s2 = p2.snapshot();
        assert_eq!(s1.threads[0].nodes[0].name, "only-p1");
        assert_eq!(s2.threads[0].nodes[0].name, "only-p2");
        assert_eq!(s1.threads[0].nodes.len(), 1);
        assert_eq!(s2.threads[0].nodes.len(), 1);
    }

    #[test]
    fn snapshot_to_json_is_well_formed() {
        use crate::ToJson;
        let p = Profiler::new();
        {
            let _g = p.phase("a");
        }
        let doc = p.snapshot().to_json();
        assert_eq!(
            doc.get("format").and_then(crate::Json::as_str),
            Some("acutemon-prof-snapshot")
        );
        let reparsed = crate::Json::parse(&doc.to_string()).unwrap();
        assert!(reparsed.get("threads").is_some());
    }
}
