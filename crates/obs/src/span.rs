//! Scoped wall-clock span timers.
//!
//! A [`SpanTimer`] measures the wall-clock time between its creation and
//! its drop (or explicit [`SpanTimer::stop`]) and records the elapsed
//! milliseconds into a histogram. Timers from a disabled registry never
//! read the clock. Spans nest naturally — each guard is independent, so
//! an outer span covers its inner spans' time.
//!
//! Simulated-time spans should not use this type: record
//! `SimTime` deltas directly into a histogram instead (wall time inside
//! a discrete-event run is meaningless for the model).

use std::time::Instant;

use crate::metrics::Histogram;

/// Guard that records elapsed wall-clock ms into a histogram on drop.
pub struct SpanTimer {
    hist: Histogram,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Start timing into `hist`. If `hist` belongs to a disabled
    /// registry the clock is never read.
    pub fn start(hist: Histogram) -> SpanTimer {
        let start = if hist.is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        SpanTimer { hist, start }
    }

    /// Stop now and return the elapsed ms (None when disabled).
    pub fn stop(mut self) -> Option<f64> {
        self.finish()
    }

    fn finish(&mut self) -> Option<f64> {
        let start = self.start.take()?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        self.hist.observe(ms);
        Some(ms)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;

    #[test]
    fn span_records_on_drop() {
        let r = Registry::new();
        {
            let _s = r.span("work.ms");
        }
        let snap = r.snapshot();
        let h = snap.histogram("work.ms").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= 0.0);
    }

    #[test]
    fn nested_spans_record_outer_covering_inner() {
        let r = Registry::new();
        let outer = r.span("outer.ms");
        let spin = std::time::Instant::now();
        while spin.elapsed().as_micros() < 200 {}
        let inner = r.span("inner.ms");
        while spin.elapsed().as_micros() < 400 {}
        let inner_ms = inner.stop().unwrap();
        let outer_ms = outer.stop().unwrap();
        assert!(outer_ms >= inner_ms);
        let snap = r.snapshot();
        assert_eq!(snap.histogram("outer.ms").unwrap().count, 1);
        assert_eq!(snap.histogram("inner.ms").unwrap().count, 1);
    }

    #[test]
    fn disabled_span_is_a_noop() {
        let r = Registry::disabled();
        let s = r.span("skip.ms");
        assert_eq!(s.stop(), None);
    }
}
