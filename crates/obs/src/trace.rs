//! Per-probe causal tracing: spans with parent/child causality.
//!
//! Aggregate counters and histograms (the [`crate::metrics`] layer) say
//! *how much* delay each mechanism adds on average; they cannot say where
//! *this* probe's 102 ms went. A [`Tracer`] answers that: every probe
//! gets a root span, every delay source along the path (runtime
//! crossing, kernel, SDIO wake, PSM doze, AP buffering, the emulated
//! network) records a child span with exact start/end timestamps, and
//! the finished trace renders as a waterfall whose leaves partition the
//! user-level RTT `du`.
//!
//! Timestamps are plain `u64` nanoseconds so the same type serves the
//! simulator (`SimTime::as_nanos()`) and live wall-clock runs (elapsed
//! ns since session start).
//!
//! Like [`crate::Registry`], a `Tracer` is a cheap clonable handle over
//! shared state and the default handle is *disabled*: every operation on
//! a disabled tracer is a strict no-op that performs no allocation, so
//! instrumentation can stay unconditionally in the hot path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::json::{Json, ToJson};

/// Identifier of one span. `SpanId::NONE` (0) is never allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id (used by synthetic gap leaves).
    pub const NONE: SpanId = SpanId(0);
}

/// Identifier of one trace (one probe's causal history).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl ToJson for AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::Int(v) => Json::Num(*v as f64),
            AttrValue::Float(v) => Json::Num(*v),
            AttrValue::Str(v) => Json::Str(v.clone()),
            AttrValue::Bool(v) => Json::Bool(*v),
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// The trace it belongs to.
    pub trace: TraceId,
    /// Causal parent (None for the trace root).
    pub parent: Option<SpanId>,
    /// Span name (e.g. `sdio_wake`).
    pub name: &'static str,
    /// Category (layer): `app`, `kernel`, `driver`, `mac`, `net`, ...
    pub cat: &'static str,
    /// Start, ns.
    pub start_ns: u64,
    /// End, ns (None while still open).
    pub end_ns: Option<u64>,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Duration in ns, if the span has ended.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("id", self.id.0);
        obj.set("trace", self.trace.0);
        obj.set("parent", self.parent.map(|p| p.0));
        obj.set("name", self.name);
        obj.set("cat", self.cat);
        obj.set("start_ns", self.start_ns);
        obj.set("end_ns", self.end_ns);
        if !self.attrs.is_empty() {
            let mut args = Json::object();
            for (k, v) in &self.attrs {
                args.set(k, v.to_json());
            }
            obj.set("attrs", args);
        }
        obj
    }
}

/// The trace context that travels with one probe: its trace id and root
/// span. Small and `Copy` so it can be mapped per packet id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The probe's trace.
    pub trace: TraceId,
    /// The probe's root span (ended when the reply reaches the app).
    pub root: SpanId,
}

#[derive(Debug, Default)]
struct TracerInner {
    next_span: u64,
    next_trace: u64,
    spans: Vec<SpanRecord>,
    /// span id → index into `spans`, for `end_span`/`attr`.
    index: HashMap<u64, usize>,
    /// packet id → trace context, the causal propagation channel.
    by_packet: HashMap<u64, TraceCtx>,
}

impl TracerInner {
    fn new() -> TracerInner {
        TracerInner {
            next_span: 1,
            next_trace: 1,
            spans: Vec::new(),
            index: HashMap::new(),
            by_packet: HashMap::new(),
        }
    }
}

/// A handle to a span store. Clones share the same store; the default
/// handle is disabled and every operation on it is a strict no-op.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<TracerInner>>>);

impl Tracer {
    /// An enabled tracer with an empty span store.
    pub fn new() -> Tracer {
        Tracer(Some(Arc::new(Mutex::new(TracerInner::new()))))
    }

    /// A disabled tracer: all operations are free no-ops.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Allocate a new trace id (`TraceId(0)` when disabled).
    pub fn begin_trace(&self) -> TraceId {
        let Some(inner) = &self.0 else {
            return TraceId(0);
        };
        let mut g = inner.lock().unwrap();
        let id = g.next_trace;
        g.next_trace += 1;
        TraceId(id)
    }

    /// Open a span at `start_ns` (`SpanId::NONE` when disabled).
    pub fn start_span(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
    ) -> SpanId {
        let Some(inner) = &self.0 else {
            return SpanId::NONE;
        };
        let mut g = inner.lock().unwrap();
        let id = SpanId(g.next_span);
        g.next_span += 1;
        let idx = g.spans.len();
        g.spans.push(SpanRecord {
            id,
            trace,
            parent,
            name,
            cat,
            start_ns,
            end_ns: None,
            attrs: Vec::new(),
        });
        g.index.insert(id.0, idx);
        id
    }

    /// Close span `id` at `end_ns`. Unknown or already-closed spans are
    /// left alone.
    pub fn end_span(&self, id: SpanId, end_ns: u64) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        let Some(&idx) = g.index.get(&id.0) else {
            return;
        };
        let span = &mut g.spans[idx];
        if span.end_ns.is_none() {
            span.end_ns = Some(end_ns);
        }
    }

    /// Record a complete span in one call.
    pub fn span(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanId {
        let id = self.start_span(trace, parent, name, cat, start_ns);
        self.end_span(id, end_ns);
        id
    }

    /// Attach an attribute to span `id`. The value conversion happens
    /// after the disabled check, so a disabled tracer allocates nothing.
    pub fn attr(&self, id: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        let Some(&idx) = g.index.get(&id.0) else {
            return;
        };
        g.spans[idx].attrs.push((key, value.into()));
    }

    /// Associate packet `pkt_id` with a trace context, so downstream
    /// nodes holding only the packet can attribute spans.
    pub fn bind_packet(&self, pkt_id: u64, ctx: TraceCtx) {
        let Some(inner) = &self.0 else { return };
        inner.lock().unwrap().by_packet.insert(pkt_id, ctx);
    }

    /// The trace context bound to `pkt_id`, if any.
    pub fn packet_ctx(&self, pkt_id: u64) -> Option<TraceCtx> {
        let inner = self.0.as_ref()?;
        inner.lock().unwrap().by_packet.get(&pkt_id).copied()
    }

    /// Propagate a binding across an id change (request → reply).
    pub fn rebind_packet(&self, from: u64, to: u64) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        if let Some(ctx) = g.by_packet.get(&from).copied() {
            g.by_packet.insert(to, ctx);
        }
    }

    /// Snapshot of every recorded span, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.0 {
            Some(inner) => inner.lock().unwrap().spans.clone(),
            None => Vec::new(),
        }
    }

    /// Trace ids seen so far, in first-span order.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut seen = Vec::new();
        for s in self.spans() {
            if !seen.contains(&s.trace) {
                seen.push(s.trace);
            }
        }
        seen
    }
}

/// A span and its children — one node of a waterfall tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span at this node.
    pub span: SpanRecord,
    /// Child spans ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// This node's duration in ns (0 if the span never ended).
    pub fn duration_ns(&self) -> u64 {
        self.span.duration_ns().unwrap_or(0)
    }

    /// Sum of leaf durations under this node (the node itself if it has
    /// no children).
    pub fn leaf_sum_ns(&self) -> u64 {
        if self.children.is_empty() {
            self.duration_ns()
        } else {
            self.children.iter().map(SpanNode::leaf_sum_ns).sum()
        }
    }

    /// Total duration of leaves named `name` under this node, ns.
    pub fn named_leaf_ns(&self, name: &str) -> u64 {
        if self.children.is_empty() {
            if self.span.name == name {
                self.duration_ns()
            } else {
                0
            }
        } else {
            self.children.iter().map(|c| c.named_leaf_ns(name)).sum()
        }
    }

    /// Insert synthetic `(unattributed)` leaves so that, at every level,
    /// the children exactly partition the parent's interval. After this,
    /// `leaf_sum_ns() == duration_ns()` holds whenever sibling spans do
    /// not overlap (overlaps make the sum exceed the duration, which the
    /// reconciliation test treats as a bug).
    pub fn fill_gaps(&mut self) {
        for c in &mut self.children {
            c.fill_gaps();
        }
        if self.children.is_empty() {
            return;
        }
        let Some(end) = self.span.end_ns else { return };
        let mut out: Vec<SpanNode> = Vec::with_capacity(self.children.len());
        let mut cursor = self.span.start_ns;
        for child in self.children.drain(..) {
            if child.span.start_ns > cursor {
                out.push(gap_leaf(self.span.trace, cursor, child.span.start_ns));
            }
            cursor = cursor.max(child.span.end_ns.unwrap_or(child.span.start_ns));
            out.push(child);
        }
        if cursor < end {
            out.push(gap_leaf(self.span.trace, cursor, end));
        }
        self.children = out;
    }
}

fn gap_leaf(trace: TraceId, start_ns: u64, end_ns: u64) -> SpanNode {
    SpanNode {
        span: SpanRecord {
            id: SpanId::NONE,
            trace,
            parent: None,
            name: "(unattributed)",
            cat: "gap",
            start_ns,
            end_ns: Some(end_ns),
            attrs: Vec::new(),
        },
        children: Vec::new(),
    }
}

/// Assemble the span tree for `trace` from a flat span list. Returns
/// `None` if the trace has no root (a span with no parent).
pub fn build_trace_tree(spans: &[SpanRecord], trace: TraceId) -> Option<SpanNode> {
    let in_trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == trace).collect();
    let root = in_trace.iter().find(|s| s.parent.is_none())?;
    Some(build_node(root, &in_trace))
}

fn build_node(span: &SpanRecord, all: &[&SpanRecord]) -> SpanNode {
    let mut children: Vec<SpanNode> = all
        .iter()
        .filter(|s| s.parent == Some(span.id) && s.id != span.id)
        .map(|s| build_node(s, all))
        .collect();
    children.sort_by_key(|c| (c.span.start_ns, c.span.id));
    SpanNode {
        span: (*span).clone(),
        children,
    }
}

/// Render a span tree as an ASCII waterfall. `width` is the bar width
/// in characters; rows are the tree's nodes depth-first, each with its
/// offset from the root, duration, and a proportional `=` bar.
pub fn render_waterfall(root: &SpanNode, width: usize) -> String {
    let width = width.max(10);
    let t0 = root.span.start_ns;
    let total = root.duration_ns().max(1);
    let mut name_col = 0usize;
    walk(root, 0, &mut |node, depth| {
        name_col = name_col.max(depth * 2 + node.span.name.len());
    });
    let name_col = name_col.max("span".len()) + 2;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_col$} {:>10} {:>10}  waterfall ({:.3} ms total)\n",
        "span",
        "off ms",
        "dur ms",
        total as f64 / 1e6,
    ));
    walk(root, 0, &mut |node, depth| {
        let start = node.span.start_ns.saturating_sub(t0);
        let dur = node.duration_ns();
        let from = (start as u128 * width as u128 / total as u128) as usize;
        let mut len = (dur as u128 * width as u128 / total as u128) as usize;
        if dur > 0 && len == 0 {
            len = 1;
        }
        let from = from.min(width);
        let len = len.min(width - from);
        let fill = if node.span.cat == "gap" { '-' } else { '=' };
        let mut bar = String::with_capacity(width);
        for _ in 0..from {
            bar.push(' ');
        }
        for _ in 0..len {
            bar.push(fill);
        }
        let label = format!("{}{}", "  ".repeat(depth), node.span.name);
        out.push_str(&format!(
            "{:<name_col$} {:>10.3} {:>10.3}  |{bar:<width$}|\n",
            label,
            start as f64 / 1e6,
            dur as f64 / 1e6,
        ));
    });
    out
}

fn walk<'a>(node: &'a SpanNode, depth: usize, f: &mut impl FnMut(&'a SpanNode, usize)) {
    f(node, depth);
    for c in &node.children {
        walk(c, depth + 1, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.begin_trace(), TraceId(0));
        let id = t.start_span(TraceId(0), None, "probe", "app", 0);
        assert_eq!(id, SpanId::NONE);
        t.end_span(id, 10);
        t.attr(id, "k", 1u32);
        t.bind_packet(
            7,
            TraceCtx {
                trace: TraceId(0),
                root: id,
            },
        );
        assert_eq!(t.packet_ctx(7), None);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn span_lifecycle_and_attrs() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 100);
        let child = t.span(tr, Some(root), "kernel_tx", "kernel", 100, 150);
        t.attr(root, "probe", 3u32);
        t.attr(child, "note", "fast");
        t.end_span(root, 400);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].duration_ns(), Some(300));
        assert_eq!(spans[1].duration_ns(), Some(50));
        assert_eq!(spans[0].attr("probe"), Some(&AttrValue::Int(3)));
        assert_eq!(spans[1].attr("note"), Some(&AttrValue::Str("fast".into())));
        // end_span is first-write-wins.
        t.end_span(root, 999);
        assert_eq!(t.spans()[0].end_ns, Some(400));
    }

    #[test]
    fn packet_binding_propagates_and_rebinds() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 0);
        let ctx = TraceCtx { trace: tr, root };
        t.bind_packet(11, ctx);
        assert_eq!(t.packet_ctx(11), Some(ctx));
        t.rebind_packet(11, 12);
        assert_eq!(t.packet_ctx(12), Some(ctx));
        t.rebind_packet(99, 100); // unknown source: no-op
        assert_eq!(t.packet_ctx(100), None);
    }

    #[test]
    fn clones_share_the_store() {
        let t = Tracer::new();
        let t2 = t.clone();
        let tr = t.begin_trace();
        t2.span(tr, None, "probe", "app", 0, 10);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn tree_fills_gaps_and_leaves_partition_root() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 1000);
        t.span(tr, Some(root), "a", "x", 1000, 1200);
        t.span(tr, Some(root), "b", "x", 1500, 1800);
        t.end_span(root, 2000);
        let mut tree = build_trace_tree(&t.spans(), tr).unwrap();
        tree.fill_gaps();
        // a, gap(1200..1500), b, gap(1800..2000)
        assert_eq!(tree.children.len(), 4);
        assert_eq!(tree.children[1].span.cat, "gap");
        assert_eq!(tree.children[1].duration_ns(), 300);
        assert_eq!(tree.children[3].duration_ns(), 200);
        assert_eq!(tree.leaf_sum_ns(), tree.duration_ns());
        assert_eq!(tree.named_leaf_ns("a"), 200);
        assert_eq!(tree.named_leaf_ns("(unattributed)"), 500);
    }

    #[test]
    fn tree_orders_children_by_start() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 0);
        t.span(tr, Some(root), "late", "x", 50, 60);
        t.span(tr, Some(root), "early", "x", 10, 20);
        t.end_span(root, 100);
        let tree = build_trace_tree(&t.spans(), tr).unwrap();
        assert_eq!(tree.children[0].span.name, "early");
        assert_eq!(tree.children[1].span.name, "late");
    }

    #[test]
    fn missing_root_yields_none() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        // Only a child span, parented to a span that was never recorded.
        t.span(tr, Some(SpanId(42)), "orphan", "x", 0, 1);
        assert!(build_trace_tree(&t.spans(), tr).is_none());
        assert!(build_trace_tree(&t.spans(), TraceId(999)).is_none());
    }

    #[test]
    fn waterfall_renders_rows_and_bars() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 0);
        t.span(tr, Some(root), "kernel_tx", "kernel", 0, 500_000);
        t.span(tr, Some(root), "sdio_wake", "driver", 500_000, 8_000_000);
        t.end_span(root, 10_000_000);
        let mut tree = build_trace_tree(&t.spans(), tr).unwrap();
        tree.fill_gaps();
        let text = render_waterfall(&tree, 40);
        assert!(text.contains("probe"));
        assert!(text.contains("sdio_wake"));
        assert!(text.contains("(unattributed)"));
        assert!(text.contains('='));
        assert!(text.contains('-'), "gap bars use '-'");
        // Header reports the total.
        assert!(text.contains("10.000 ms total"), "{text}");
    }

    #[test]
    fn trace_ids_in_first_span_order() {
        let t = Tracer::new();
        let a = t.begin_trace();
        let b = t.begin_trace();
        t.span(b, None, "p", "app", 0, 1);
        t.span(a, None, "p", "app", 0, 1);
        assert_eq!(t.trace_ids(), vec![b, a]);
    }
}
