//! Per-probe causal tracing: spans with parent/child causality.
//!
//! Aggregate counters and histograms (the [`crate::metrics`] layer) say
//! *how much* delay each mechanism adds on average; they cannot say where
//! *this* probe's 102 ms went. A [`Tracer`] answers that: every probe
//! gets a root span, every delay source along the path (runtime
//! crossing, kernel, SDIO wake, PSM doze, AP buffering, the emulated
//! network) records a child span with exact start/end timestamps, and
//! the finished trace renders as a waterfall whose leaves partition the
//! user-level RTT `du`.
//!
//! Timestamps are plain `u64` nanoseconds so the same type serves the
//! simulator (`SimTime::as_nanos()`) and live wall-clock runs (elapsed
//! ns since session start).
//!
//! Like [`crate::Registry`], a `Tracer` is a cheap clonable handle over
//! shared state and the default handle is *disabled*: every operation on
//! a disabled tracer is a strict no-op that performs no allocation, so
//! instrumentation can stay unconditionally in the hot path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::json::{Json, ToJson};

/// Identifier of one span. `SpanId::NONE` (0) is never allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id (used by synthetic gap leaves).
    pub const NONE: SpanId = SpanId(0);
}

/// Identifier of one trace (one probe's causal history).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A signed integer attribute.
    Int(i64),
    /// A floating-point attribute.
    Float(f64),
    /// A string attribute.
    Str(String),
    /// A boolean attribute.
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl ToJson for AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::Int(v) => Json::Num(*v as f64),
            AttrValue::Float(v) => Json::Num(*v),
            AttrValue::Str(v) => Json::Str(v.clone()),
            AttrValue::Bool(v) => Json::Bool(*v),
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// The trace it belongs to.
    pub trace: TraceId,
    /// Causal parent (None for the trace root).
    pub parent: Option<SpanId>,
    /// Span name (e.g. `sdio_wake`).
    pub name: &'static str,
    /// Category (layer): `app`, `kernel`, `driver`, `mac`, `net`, ...
    pub cat: &'static str,
    /// Start, ns.
    pub start_ns: u64,
    /// End, ns (None while still open).
    pub end_ns: Option<u64>,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Duration in ns, if the span has ended.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("id", self.id.0);
        obj.set("trace", self.trace.0);
        obj.set("parent", self.parent.map(|p| p.0));
        obj.set("name", self.name);
        obj.set("cat", self.cat);
        obj.set("start_ns", self.start_ns);
        obj.set("end_ns", self.end_ns);
        if !self.attrs.is_empty() {
            let mut args = Json::object();
            for (k, v) in &self.attrs {
                args.set(k, v.to_json());
            }
            obj.set("attrs", args);
        }
        obj
    }
}

/// Which probes an enabled [`Tracer`] records — the knob that keeps
/// tracing affordable for million-probe fleet runs.
///
/// Two independent filters compose:
///
/// * **1-in-N head sampling** (`one_in_n`): decided at
///   [`Tracer::begin_trace`]. A sampled-out probe gets `TraceId(0)`, and
///   every subsequent operation on that trace — spans, attrs, packet
///   bindings — is the same zero-allocation no-op as on a disabled
///   tracer (pinned by the counting-allocator test suite).
/// * **tail retention by root duration** (`min_root_ms`): applied when a
///   trace's *root* span closes. Probes faster than the threshold have
///   their spans discarded wholesale, so only the slow outliers worth
///   explaining are kept. (The spans exist until the root closes — the
///   duration isn't knowable earlier — so this bounds *retained* memory,
///   not transient work.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePolicy {
    /// Record every Nth probe (0 and 1 both mean "all").
    pub one_in_n: u64,
    /// Keep only traces whose root span lasted at least this many ms
    /// (0 = keep everything).
    pub min_root_ms: f64,
}

impl SamplePolicy {
    /// Record everything (the [`Tracer::new`] default).
    pub const ALL: SamplePolicy = SamplePolicy {
        one_in_n: 1,
        min_root_ms: 0.0,
    };

    /// Head-sample 1 in `n` probes.
    pub fn one_in(n: u64) -> SamplePolicy {
        SamplePolicy {
            one_in_n: n.max(1),
            min_root_ms: 0.0,
        }
    }

    /// Keep only probes whose root span is at least `ms` long.
    pub fn slower_than_ms(ms: f64) -> SamplePolicy {
        SamplePolicy {
            one_in_n: 1,
            min_root_ms: ms.max(0.0),
        }
    }

    /// Add a root-duration retention threshold to this policy.
    pub fn with_min_root_ms(mut self, ms: f64) -> SamplePolicy {
        self.min_root_ms = ms.max(0.0);
        self
    }
}

impl Default for SamplePolicy {
    fn default() -> SamplePolicy {
        SamplePolicy::ALL
    }
}

/// How the sampling policy has filtered traces so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplingStats {
    /// Traces head-sampled out at `begin_trace` (never allocated).
    pub sampled_out: u64,
    /// Traces recorded then discarded because the root closed under
    /// `min_root_ms`.
    pub dropped_fast: u64,
    /// Traces currently retained (recorded minus `dropped_fast`).
    pub retained: u64,
}

/// The trace context that travels with one probe: its trace id and root
/// span. Small and `Copy` so it can be mapped per packet id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The probe's trace.
    pub trace: TraceId,
    /// The probe's root span (ended when the reply reaches the app).
    pub root: SpanId,
}

#[derive(Debug, Default)]
struct TracerInner {
    next_span: u64,
    next_trace: u64,
    policy: SamplePolicy,
    /// Probes seen by `begin_trace` (sampled in or out).
    trace_seq: u64,
    sampled_out: u64,
    dropped_fast: u64,
    spans: Vec<SpanRecord>,
    /// span id → index into `spans`, for `end_span`/`attr`.
    index: HashMap<u64, usize>,
    /// packet id → trace context, the causal propagation channel.
    by_packet: HashMap<u64, TraceCtx>,
}

impl TracerInner {
    fn new(policy: SamplePolicy) -> TracerInner {
        TracerInner {
            next_span: 1,
            next_trace: 1,
            policy,
            trace_seq: 0,
            sampled_out: 0,
            dropped_fast: 0,
            spans: Vec::new(),
            index: HashMap::new(),
            by_packet: HashMap::new(),
        }
    }

    /// Discard every span and packet binding of `trace` (tail filter).
    fn drop_trace(&mut self, trace: TraceId) {
        self.spans.retain(|s| s.trace != trace);
        self.index.clear();
        for (idx, s) in self.spans.iter().enumerate() {
            self.index.insert(s.id.0, idx);
        }
        self.by_packet.retain(|_, ctx| ctx.trace != trace);
        self.dropped_fast += 1;
    }
}

/// A handle to a span store. Clones share the same store; the default
/// handle is disabled and every operation on it is a strict no-op.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<TracerInner>>>);

impl Tracer {
    /// An enabled tracer with an empty span store, recording everything.
    pub fn new() -> Tracer {
        Tracer::with_policy(SamplePolicy::ALL)
    }

    /// An enabled tracer recording only the probes `policy` selects.
    pub fn with_policy(policy: SamplePolicy) -> Tracer {
        Tracer(Some(Arc::new(Mutex::new(TracerInner::new(policy)))))
    }

    /// A disabled tracer: all operations are free no-ops.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Allocate a new trace id. Returns `TraceId(0)` when disabled *or*
    /// when the sampling policy drops this probe — all later operations
    /// on trace 0 are zero-allocation no-ops, so callers need no
    /// sampling awareness.
    pub fn begin_trace(&self) -> TraceId {
        let Some(inner) = &self.0 else {
            return TraceId(0);
        };
        let mut g = inner.lock().unwrap();
        let seq = g.trace_seq;
        g.trace_seq += 1;
        if g.policy.one_in_n > 1 && seq % g.policy.one_in_n != 0 {
            g.sampled_out += 1;
            return TraceId(0);
        }
        let id = g.next_trace;
        g.next_trace += 1;
        TraceId(id)
    }

    /// Open a span at `start_ns` (`SpanId::NONE` when disabled or when
    /// `trace` is the sampled-out sentinel `TraceId(0)`).
    pub fn start_span(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
    ) -> SpanId {
        let Some(inner) = &self.0 else {
            return SpanId::NONE;
        };
        if trace.0 == 0 {
            return SpanId::NONE;
        }
        let mut g = inner.lock().unwrap();
        let id = SpanId(g.next_span);
        g.next_span += 1;
        let idx = g.spans.len();
        g.spans.push(SpanRecord {
            id,
            trace,
            parent,
            name,
            cat,
            start_ns,
            end_ns: None,
            attrs: Vec::new(),
        });
        g.index.insert(id.0, idx);
        id
    }

    /// Close span `id` at `end_ns`. Unknown or already-closed spans are
    /// left alone. When the policy has a `min_root_ms` threshold and
    /// `id` is a *root* span that closed faster than it, the whole trace
    /// is discarded (tail retention).
    pub fn end_span(&self, id: SpanId, end_ns: u64) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        let Some(&idx) = g.index.get(&id.0) else {
            return;
        };
        let min_ns = (g.policy.min_root_ms * 1e6) as u64;
        let span = &mut g.spans[idx];
        if span.end_ns.is_some() {
            return;
        }
        span.end_ns = Some(end_ns);
        if span.parent.is_none() && min_ns > 0 && end_ns.saturating_sub(span.start_ns) < min_ns {
            let trace = span.trace;
            g.drop_trace(trace);
        }
    }

    /// Record a complete span in one call.
    pub fn span(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanId {
        let id = self.start_span(trace, parent, name, cat, start_ns);
        self.end_span(id, end_ns);
        id
    }

    /// Attach an attribute to span `id`. The value conversion happens
    /// after the disabled check, so a disabled tracer allocates nothing.
    pub fn attr(&self, id: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        let Some(&idx) = g.index.get(&id.0) else {
            return;
        };
        g.spans[idx].attrs.push((key, value.into()));
    }

    /// Associate packet `pkt_id` with a trace context, so downstream
    /// nodes holding only the packet can attribute spans. Sampled-out
    /// contexts (trace 0) are not stored — lookups on them miss, keeping
    /// the whole downstream path allocation-free.
    pub fn bind_packet(&self, pkt_id: u64, ctx: TraceCtx) {
        let Some(inner) = &self.0 else { return };
        if ctx.trace.0 == 0 {
            return;
        }
        inner.lock().unwrap().by_packet.insert(pkt_id, ctx);
    }

    /// The trace context bound to `pkt_id`, if any.
    pub fn packet_ctx(&self, pkt_id: u64) -> Option<TraceCtx> {
        let inner = self.0.as_ref()?;
        inner.lock().unwrap().by_packet.get(&pkt_id).copied()
    }

    /// Propagate a binding across an id change (request → reply).
    pub fn rebind_packet(&self, from: u64, to: u64) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        if let Some(ctx) = g.by_packet.get(&from).copied() {
            g.by_packet.insert(to, ctx);
        }
    }

    /// The active sampling policy ([`SamplePolicy::ALL`] when disabled).
    pub fn policy(&self) -> SamplePolicy {
        match &self.0 {
            Some(inner) => inner.lock().unwrap().policy,
            None => SamplePolicy::ALL,
        }
    }

    /// How sampling has filtered traces so far (all zero when disabled).
    pub fn sampling_stats(&self) -> SamplingStats {
        match &self.0 {
            Some(inner) => {
                let g = inner.lock().unwrap();
                SamplingStats {
                    sampled_out: g.sampled_out,
                    dropped_fast: g.dropped_fast,
                    retained: (g.next_trace - 1).saturating_sub(g.dropped_fast),
                }
            }
            None => SamplingStats::default(),
        }
    }

    /// Snapshot of every recorded span, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.0 {
            Some(inner) => inner.lock().unwrap().spans.clone(),
            None => Vec::new(),
        }
    }

    /// Trace ids seen so far, in first-span order.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut seen = Vec::new();
        for s in self.spans() {
            if !seen.contains(&s.trace) {
                seen.push(s.trace);
            }
        }
        seen
    }
}

/// A span and its children — one node of a waterfall tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span at this node.
    pub span: SpanRecord,
    /// Child spans ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// This node's duration in ns (0 if the span never ended).
    pub fn duration_ns(&self) -> u64 {
        self.span.duration_ns().unwrap_or(0)
    }

    /// Sum of leaf durations under this node (the node itself if it has
    /// no children).
    pub fn leaf_sum_ns(&self) -> u64 {
        if self.children.is_empty() {
            self.duration_ns()
        } else {
            self.children.iter().map(SpanNode::leaf_sum_ns).sum()
        }
    }

    /// Total duration of leaves named `name` under this node, ns.
    pub fn named_leaf_ns(&self, name: &str) -> u64 {
        if self.children.is_empty() {
            if self.span.name == name {
                self.duration_ns()
            } else {
                0
            }
        } else {
            self.children.iter().map(|c| c.named_leaf_ns(name)).sum()
        }
    }

    /// Insert synthetic `(unattributed)` leaves so that, at every level,
    /// the children exactly partition the parent's interval. After this,
    /// `leaf_sum_ns() == duration_ns()` holds whenever sibling spans do
    /// not overlap (overlaps make the sum exceed the duration, which the
    /// reconciliation test treats as a bug).
    pub fn fill_gaps(&mut self) {
        for c in &mut self.children {
            c.fill_gaps();
        }
        if self.children.is_empty() {
            return;
        }
        let Some(end) = self.span.end_ns else { return };
        let mut out: Vec<SpanNode> = Vec::with_capacity(self.children.len());
        let mut cursor = self.span.start_ns;
        for child in self.children.drain(..) {
            if child.span.start_ns > cursor {
                out.push(gap_leaf(self.span.trace, cursor, child.span.start_ns));
            }
            cursor = cursor.max(child.span.end_ns.unwrap_or(child.span.start_ns));
            out.push(child);
        }
        if cursor < end {
            out.push(gap_leaf(self.span.trace, cursor, end));
        }
        self.children = out;
    }
}

fn gap_leaf(trace: TraceId, start_ns: u64, end_ns: u64) -> SpanNode {
    SpanNode {
        span: SpanRecord {
            id: SpanId::NONE,
            trace,
            parent: None,
            name: "(unattributed)",
            cat: "gap",
            start_ns,
            end_ns: Some(end_ns),
            attrs: Vec::new(),
        },
        children: Vec::new(),
    }
}

/// Assemble the span tree for `trace` from a flat span list. Returns
/// `None` if the trace has no root (a span with no parent).
pub fn build_trace_tree(spans: &[SpanRecord], trace: TraceId) -> Option<SpanNode> {
    let in_trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == trace).collect();
    let root = in_trace.iter().find(|s| s.parent.is_none())?;
    Some(build_node(root, &in_trace))
}

fn build_node(span: &SpanRecord, all: &[&SpanRecord]) -> SpanNode {
    let mut children: Vec<SpanNode> = all
        .iter()
        .filter(|s| s.parent == Some(span.id) && s.id != span.id)
        .map(|s| build_node(s, all))
        .collect();
    children.sort_by_key(|c| (c.span.start_ns, c.span.id));
    SpanNode {
        span: (*span).clone(),
        children,
    }
}

/// Render a span tree as an ASCII waterfall. `width` is the bar width
/// in characters; rows are the tree's nodes depth-first, each with its
/// offset from the root, duration, and a proportional `=` bar.
pub fn render_waterfall(root: &SpanNode, width: usize) -> String {
    let width = width.max(10);
    let t0 = root.span.start_ns;
    let total = root.duration_ns().max(1);
    let mut name_col = 0usize;
    walk(root, 0, &mut |node, depth| {
        name_col = name_col.max(depth * 2 + node.span.name.len());
    });
    let name_col = name_col.max("span".len()) + 2;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_col$} {:>10} {:>10}  waterfall ({:.3} ms total)\n",
        "span",
        "off ms",
        "dur ms",
        total as f64 / 1e6,
    ));
    walk(root, 0, &mut |node, depth| {
        let start = node.span.start_ns.saturating_sub(t0);
        let dur = node.duration_ns();
        let from = (start as u128 * width as u128 / total as u128) as usize;
        let mut len = (dur as u128 * width as u128 / total as u128) as usize;
        if dur > 0 && len == 0 {
            len = 1;
        }
        let from = from.min(width);
        let len = len.min(width - from);
        let fill = if node.span.cat == "gap" { '-' } else { '=' };
        let mut bar = String::with_capacity(width);
        for _ in 0..from {
            bar.push(' ');
        }
        for _ in 0..len {
            bar.push(fill);
        }
        let label = format!("{}{}", "  ".repeat(depth), node.span.name);
        out.push_str(&format!(
            "{:<name_col$} {:>10.3} {:>10.3}  |{bar:<width$}|\n",
            label,
            start as f64 / 1e6,
            dur as f64 / 1e6,
        ));
    });
    out
}

fn walk<'a>(node: &'a SpanNode, depth: usize, f: &mut impl FnMut(&'a SpanNode, usize)) {
    f(node, depth);
    for c in &node.children {
        walk(c, depth + 1, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.begin_trace(), TraceId(0));
        let id = t.start_span(TraceId(0), None, "probe", "app", 0);
        assert_eq!(id, SpanId::NONE);
        t.end_span(id, 10);
        t.attr(id, "k", 1u32);
        t.bind_packet(
            7,
            TraceCtx {
                trace: TraceId(0),
                root: id,
            },
        );
        assert_eq!(t.packet_ctx(7), None);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn span_lifecycle_and_attrs() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 100);
        let child = t.span(tr, Some(root), "kernel_tx", "kernel", 100, 150);
        t.attr(root, "probe", 3u32);
        t.attr(child, "note", "fast");
        t.end_span(root, 400);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].duration_ns(), Some(300));
        assert_eq!(spans[1].duration_ns(), Some(50));
        assert_eq!(spans[0].attr("probe"), Some(&AttrValue::Int(3)));
        assert_eq!(spans[1].attr("note"), Some(&AttrValue::Str("fast".into())));
        // end_span is first-write-wins.
        t.end_span(root, 999);
        assert_eq!(t.spans()[0].end_ns, Some(400));
    }

    #[test]
    fn packet_binding_propagates_and_rebinds() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 0);
        let ctx = TraceCtx { trace: tr, root };
        t.bind_packet(11, ctx);
        assert_eq!(t.packet_ctx(11), Some(ctx));
        t.rebind_packet(11, 12);
        assert_eq!(t.packet_ctx(12), Some(ctx));
        t.rebind_packet(99, 100); // unknown source: no-op
        assert_eq!(t.packet_ctx(100), None);
    }

    #[test]
    fn clones_share_the_store() {
        let t = Tracer::new();
        let t2 = t.clone();
        let tr = t.begin_trace();
        t2.span(tr, None, "probe", "app", 0, 10);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn tree_fills_gaps_and_leaves_partition_root() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 1000);
        t.span(tr, Some(root), "a", "x", 1000, 1200);
        t.span(tr, Some(root), "b", "x", 1500, 1800);
        t.end_span(root, 2000);
        let mut tree = build_trace_tree(&t.spans(), tr).unwrap();
        tree.fill_gaps();
        // a, gap(1200..1500), b, gap(1800..2000)
        assert_eq!(tree.children.len(), 4);
        assert_eq!(tree.children[1].span.cat, "gap");
        assert_eq!(tree.children[1].duration_ns(), 300);
        assert_eq!(tree.children[3].duration_ns(), 200);
        assert_eq!(tree.leaf_sum_ns(), tree.duration_ns());
        assert_eq!(tree.named_leaf_ns("a"), 200);
        assert_eq!(tree.named_leaf_ns("(unattributed)"), 500);
    }

    #[test]
    fn tree_orders_children_by_start() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 0);
        t.span(tr, Some(root), "late", "x", 50, 60);
        t.span(tr, Some(root), "early", "x", 10, 20);
        t.end_span(root, 100);
        let tree = build_trace_tree(&t.spans(), tr).unwrap();
        assert_eq!(tree.children[0].span.name, "early");
        assert_eq!(tree.children[1].span.name, "late");
    }

    #[test]
    fn missing_root_yields_none() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        // Only a child span, parented to a span that was never recorded.
        t.span(tr, Some(SpanId(42)), "orphan", "x", 0, 1);
        assert!(build_trace_tree(&t.spans(), tr).is_none());
        assert!(build_trace_tree(&t.spans(), TraceId(999)).is_none());
    }

    #[test]
    fn waterfall_renders_rows_and_bars() {
        let t = Tracer::new();
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 0);
        t.span(tr, Some(root), "kernel_tx", "kernel", 0, 500_000);
        t.span(tr, Some(root), "sdio_wake", "driver", 500_000, 8_000_000);
        t.end_span(root, 10_000_000);
        let mut tree = build_trace_tree(&t.spans(), tr).unwrap();
        tree.fill_gaps();
        let text = render_waterfall(&tree, 40);
        assert!(text.contains("probe"));
        assert!(text.contains("sdio_wake"));
        assert!(text.contains("(unattributed)"));
        assert!(text.contains('='));
        assert!(text.contains('-'), "gap bars use '-'");
        // Header reports the total.
        assert!(text.contains("10.000 ms total"), "{text}");
    }

    /// Run one full probe's worth of tracing against `t`, starting from
    /// an already-allocated trace id.
    fn probe_workload(t: &Tracer, tr: TraceId, pkt: u64) {
        let root = t.start_span(tr, None, "probe", "app", 0);
        t.attr(root, "probe", 1u32);
        t.bind_packet(pkt, TraceCtx { trace: tr, root });
        let k = t.start_span(tr, Some(root), "kernel_tx", "kernel", 0);
        t.end_span(k, 100);
        if let Some(ctx) = t.packet_ctx(pkt) {
            t.span(ctx.trace, Some(ctx.root), "sdio_wake", "driver", 100, 500);
        }
        t.rebind_packet(pkt, pkt + 1);
        t.end_span(root, 1000);
    }

    #[test]
    fn one_in_n_sampling_records_every_nth_probe() {
        let t = Tracer::with_policy(SamplePolicy::one_in(4));
        let mut recorded = 0;
        for i in 0..16u64 {
            let tr = t.begin_trace();
            if i % 4 == 0 {
                assert_ne!(tr.0, 0, "probe {i} should be sampled in");
                recorded += 1;
            } else {
                assert_eq!(tr.0, 0, "probe {i} should be sampled out");
            }
            probe_workload(&t, tr, 1000 + 2 * i);
        }
        assert_eq!(recorded, 4);
        let stats = t.sampling_stats();
        assert_eq!(stats.sampled_out, 12);
        assert_eq!(stats.retained, 4);
        assert_eq!(stats.dropped_fast, 0);
        // Only sampled-in probes left spans behind (4 spans each: root +
        // kernel_tx + sdio_wake, with the rebind making packet_ctx hit).
        assert_eq!(t.trace_ids().len(), 4);
        assert_eq!(t.spans().len(), 12);
        // Sampled-out packets never got bindings.
        assert_eq!(t.packet_ctx(1000 + 2), None);
    }

    #[test]
    fn sampled_out_trace_is_inert_on_an_enabled_tracer() {
        let t = Tracer::with_policy(SamplePolicy::one_in(2));
        let _first = t.begin_trace(); // sampled in
        let tr = t.begin_trace(); // sampled out
        assert_eq!(tr, TraceId(0));
        let id = t.start_span(tr, None, "probe", "app", 0);
        assert_eq!(id, SpanId::NONE);
        t.end_span(id, 10);
        t.attr(id, "k", 1u32);
        t.bind_packet(
            7,
            TraceCtx {
                trace: tr,
                root: id,
            },
        );
        assert_eq!(t.packet_ctx(7), None);
        assert!(t.spans().is_empty(), "no spans from the sampled-out trace");
    }

    #[test]
    fn min_root_duration_drops_fast_traces_keeps_slow() {
        // Keep only probes slower than 1 ms.
        let t = Tracer::with_policy(SamplePolicy::slower_than_ms(1.0));
        // Fast probe: 0.5 ms root — recorded, then discarded at close.
        let fast = t.begin_trace();
        let root = t.start_span(fast, None, "probe", "app", 0);
        t.span(fast, Some(root), "kernel_tx", "kernel", 0, 100_000);
        t.bind_packet(1, TraceCtx { trace: fast, root });
        t.end_span(root, 500_000);
        // Slow probe: 5 ms root — retained with its children.
        let slow = t.begin_trace();
        let root = t.start_span(slow, None, "probe", "app", 0);
        t.span(slow, Some(root), "sdio_wake", "driver", 0, 4_000_000);
        t.end_span(root, 5_000_000);
        let spans = t.spans();
        assert!(spans.iter().all(|s| s.trace == slow), "{spans:?}");
        assert_eq!(spans.len(), 2);
        assert_eq!(t.packet_ctx(1), None, "fast trace bindings dropped too");
        let stats = t.sampling_stats();
        assert_eq!(stats.dropped_fast, 1);
        assert_eq!(stats.retained, 1);
        // The survivors still form a proper tree.
        let tree = build_trace_tree(&t.spans(), slow).unwrap();
        assert_eq!(tree.children.len(), 1);
    }

    #[test]
    fn threshold_applies_to_roots_not_children() {
        let t = Tracer::with_policy(SamplePolicy::slower_than_ms(1.0));
        let tr = t.begin_trace();
        let root = t.start_span(tr, None, "probe", "app", 0);
        // A 0.01 ms child closing must NOT trigger the tail filter.
        t.span(tr, Some(root), "tiny", "kernel", 0, 10_000);
        t.end_span(root, 2_000_000);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.sampling_stats().dropped_fast, 0);
    }

    #[test]
    fn head_and_tail_filters_compose() {
        let t = Tracer::with_policy(SamplePolicy::one_in(2).with_min_root_ms(1.0));
        for i in 0..8u64 {
            let tr = t.begin_trace();
            let root = t.start_span(tr, None, "probe", "app", 0);
            // Alternate fast (0.1 ms) and slow (3 ms) among sampled-in.
            let end = if i % 4 == 0 { 100_000 } else { 3_000_000 };
            t.end_span(root, end);
        }
        // 8 probes: 4 sampled in (i = 0,2,4,6); of those i=0,4 are fast.
        let stats = t.sampling_stats();
        assert_eq!(stats.sampled_out, 4);
        assert_eq!(stats.dropped_fast, 2);
        assert_eq!(stats.retained, 2);
        assert_eq!(t.spans().len(), 2);
    }

    #[test]
    fn trace_ids_in_first_span_order() {
        let t = Tracer::new();
        let a = t.begin_trace();
        let b = t.begin_trace();
        t.span(b, None, "p", "app", 0, 1);
        t.span(a, None, "p", "app", 0, 1);
        assert_eq!(t.trace_ids(), vec![b, a]);
    }
}
