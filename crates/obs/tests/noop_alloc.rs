//! Disabled-handle guard: a disabled [`obs::Tracer`] (and disabled
//! metric handles) must cost zero heap allocations on the probe hot
//! path, so instrumentation can stay unconditionally compiled in.
//!
//! A counting global allocator makes the check direct: run the hot-path
//! operations and assert the allocation counter did not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn disabled_tracer_allocates_nothing() {
    let tracer = obs::Tracer::disabled();
    let cloned = tracer.clone(); // handles clone freely too
    let before = alloc_count();
    for pkt in 0..1000u64 {
        let trace = tracer.begin_trace();
        let root = tracer.start_span(trace, None, "probe", "app", 0);
        // &str attr: the String conversion must happen after the
        // disabled check, never on the disabled path.
        tracer.attr(root, "tool", "ping");
        tracer.attr(root, "probe", 42u32);
        tracer.bind_packet(pkt, obs::TraceCtx { trace, root });
        let _ = tracer.packet_ctx(pkt);
        cloned.span(trace, Some(root), "sdio_wake", "driver", 0, 10);
        tracer.rebind_packet(pkt, pkt + 1);
        tracer.end_span(root, 100);
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "disabled tracer must not allocate on the hot path"
    );
}

#[test]
fn sampled_out_probes_allocate_nothing() {
    // An *enabled* tracer with 1-in-N sampling: probes the policy drops
    // must cost zero heap allocations — this is what lets tracing stay
    // on for million-probe fleet campaigns.
    let tracer = obs::Tracer::with_policy(obs::SamplePolicy::one_in(1000));
    // Probe 0 is sampled in; consume it outside the counted window.
    let warm = tracer.begin_trace();
    let root = tracer.start_span(warm, None, "probe", "app", 0);
    tracer.end_span(root, 10);
    let before = alloc_count();
    for pkt in 0..999u64 {
        let trace = tracer.begin_trace();
        assert_eq!(trace, obs::TraceId(0));
        let root = tracer.start_span(trace, None, "probe", "app", 0);
        tracer.attr(root, "tool", "ping");
        tracer.attr(root, "probe", 42u32);
        tracer.bind_packet(pkt, obs::TraceCtx { trace, root });
        let _ = tracer.packet_ctx(pkt);
        tracer.span(trace, Some(root), "sdio_wake", "driver", 0, 10);
        tracer.rebind_packet(pkt, pkt + 1);
        tracer.end_span(root, 100);
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "sampled-out probes must not allocate on the hot path"
    );
}

#[test]
fn enabled_probe_allocation_cost_is_bounded() {
    // The enabled path does allocate (span records, index entries) but
    // the cost per probe must stay small and flat: this bound is the
    // allocation-side complement of the wall-clock budget tracked by
    // `repro bench-snapshot` (obs/tracer_enabled_probe).
    let tracer = obs::Tracer::new();
    // Warm up internal Vec/HashMap capacity so the bound reflects the
    // steady state, not growth doublings.
    for pkt in 0..64u64 {
        let trace = tracer.begin_trace();
        let root = tracer.start_span(trace, None, "probe", "app", 0);
        tracer.bind_packet(pkt, obs::TraceCtx { trace, root });
        tracer.span(trace, Some(root), "sdio_wake", "driver", 0, 10);
        tracer.end_span(root, 100);
    }
    let before = alloc_count();
    const PROBES: u64 = 256;
    for i in 0..PROBES {
        let pkt = 1000 + 2 * i;
        let trace = tracer.begin_trace();
        let root = tracer.start_span(trace, None, "probe", "app", 0);
        tracer.attr(root, "probe", i as u32);
        tracer.bind_packet(pkt, obs::TraceCtx { trace, root });
        let _ = tracer.packet_ctx(pkt);
        tracer.span(trace, Some(root), "kernel_tx", "kernel", 0, 10);
        tracer.span(trace, Some(root), "sdio_wake", "driver", 10, 50);
        tracer.rebind_packet(pkt, pkt + 1);
        tracer.end_span(root, 100);
    }
    let per_probe = (alloc_count() - before) / PROBES;
    assert!(
        per_probe <= 16,
        "enabled tracer allocation cost grew: {per_probe} allocations per 3-span probe"
    );
}

#[test]
fn disabled_metric_handles_allocate_nothing() {
    let reg = obs::Registry::disabled();
    let counter = reg.counter("x");
    let gauge = reg.gauge("y");
    let hist = reg.histogram_ms("z");
    let before = alloc_count();
    for i in 0..1000 {
        counter.inc();
        gauge.set(i);
        hist.observe(i as f64);
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "disabled metric handles must not allocate"
    );
}
