//! Disabled-handle guard: a disabled [`obs::Tracer`] (and disabled
//! metric handles) must cost zero heap allocations on the probe hot
//! path, so instrumentation can stay unconditionally compiled in.
//!
//! A counting global allocator makes the check direct: run the hot-path
//! operations and assert the allocation counter did not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn disabled_tracer_allocates_nothing() {
    let tracer = obs::Tracer::disabled();
    let cloned = tracer.clone(); // handles clone freely too
    let before = alloc_count();
    for pkt in 0..1000u64 {
        let trace = tracer.begin_trace();
        let root = tracer.start_span(trace, None, "probe", "app", 0);
        // &str attr: the String conversion must happen after the
        // disabled check, never on the disabled path.
        tracer.attr(root, "tool", "ping");
        tracer.attr(root, "probe", 42u32);
        tracer.bind_packet(pkt, obs::TraceCtx { trace, root });
        let _ = tracer.packet_ctx(pkt);
        cloned.span(trace, Some(root), "sdio_wake", "driver", 0, 10);
        tracer.rebind_packet(pkt, pkt + 1);
        tracer.end_span(root, 100);
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "disabled tracer must not allocate on the hot path"
    );
}

#[test]
fn disabled_metric_handles_allocate_nothing() {
    let reg = obs::Registry::disabled();
    let counter = reg.counter("x");
    let gauge = reg.gauge("y");
    let hist = reg.histogram_ms("z");
    let before = alloc_count();
    for i in 0..1000 {
        counter.inc();
        gauge.set(i);
        hist.observe(i as f64);
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "disabled metric handles must not allocate"
    );
}
