//! Allocation guarantees of `obs::prof`, asserted with the *product*
//! counting allocator ([`obs::prof::CountingAlloc`]) installed as this
//! binary's global allocator — the same hook the `repro` binary
//! installs for per-phase allocation attribution. Separate binary from
//! `noop_alloc.rs` because a process has exactly one global allocator.
//!
//! Contracts pinned here:
//!
//! 1. the disabled path allocates **zero** bytes (so instrumented hot
//!    paths cost nothing when nobody profiles),
//! 2. enabled steady-state guards allocate nothing once the phase tree
//!    and timeline are warm,
//! 3. allocations made inside a phase are attributed to that phase's
//!    self counters, not to its quiet siblings.

use obs::prof::{thread_alloc_counts, CountingAlloc};
use obs::Profiler;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let (before, _) = thread_alloc_counts();
    f();
    let (after, _) = thread_alloc_counts();
    after - before
}

#[test]
fn disabled_profiler_allocates_nothing() {
    let p = Profiler::disabled();
    // Touch the API once outside the measured window.
    {
        let _g = p.phase("warmup");
    }
    let n = allocs_during(|| {
        for _ in 0..10_000 {
            let _a = p.phase("sim.push");
            let _b = p.phase("sim.pop");
        }
        let _ = p.is_enabled();
        let _ = p.elapsed_ns();
        p.set_thread_label("ignored");
    });
    assert_eq!(n, 0, "disabled profiler must not allocate, saw {n} allocs");
}

#[test]
fn enabled_steady_state_guards_allocate_nothing() {
    let p = Profiler::new();
    // Warm: register the thread slot, intern the nodes, give the phase
    // stack and the (pre-sized) timeline their capacity.
    for _ in 0..64 {
        let _a = p.phase("outer");
        let _b = p.phase("inner");
    }
    let n = allocs_during(|| {
        for _ in 0..1_000 {
            let _a = p.phase("outer");
            let _b = p.phase("inner");
        }
    });
    assert_eq!(
        n, 0,
        "steady-state enabled guards must not allocate, saw {n} allocs"
    );
}

#[test]
fn phase_allocations_are_attributed_to_the_allocating_phase() {
    let p = Profiler::new();
    // Warm both phases so profiler-internal allocations are done.
    for _ in 0..8 {
        let _a = p.phase("alloc_heavy");
        drop(_a);
        let _b = p.phase("quiet");
    }
    let snap_before = p.snapshot();
    let heavy_before = find(&snap_before, "alloc_heavy");
    let quiet_before = find(&snap_before, "quiet");

    {
        let _g = p.phase("alloc_heavy");
        let v: Vec<u8> = Vec::with_capacity(4096);
        std::hint::black_box(&v);
    }
    {
        let _g = p.phase("quiet");
        std::hint::black_box(());
    }

    let snap = p.snapshot();
    let heavy = find(&snap, "alloc_heavy");
    let quiet = find(&snap, "quiet");
    assert!(
        heavy.0 > heavy_before.0,
        "alloc_heavy should gain ≥1 attributed alloc"
    );
    assert!(
        heavy.1 >= heavy_before.1 + 4096,
        "alloc_heavy should gain ≥4096 attributed bytes, had {} now {}",
        heavy_before.1,
        heavy.1
    );
    assert_eq!(
        quiet, quiet_before,
        "quiet phase must not be charged for the sibling's allocations"
    );
}

#[test]
fn nested_allocations_split_self_and_total() {
    let p = Profiler::new();
    for _ in 0..8 {
        let _a = p.phase("parent");
        let _b = p.phase("child");
    }
    {
        let _a = p.phase("parent");
        let boxed_outer = Box::new([0u8; 100]);
        std::hint::black_box(&boxed_outer);
        {
            let _b = p.phase("child");
            let boxed_inner = Box::new([0u8; 2000]);
            std::hint::black_box(&boxed_inner);
        }
    }
    let snap = p.snapshot();
    let t = &snap.threads[0];
    let parent = t.nodes.iter().find(|n| n.name == "parent").unwrap();
    let child = t.nodes.iter().find(|n| n.name == "child").unwrap();
    assert!(child.self_alloc_bytes >= 2000);
    assert!(parent.alloc_bytes >= child.alloc_bytes + 100);
    assert!(
        parent.self_alloc_bytes >= 100 && parent.self_alloc_bytes < parent.alloc_bytes,
        "parent self bytes ({}) must exclude the child's ({})",
        parent.self_alloc_bytes,
        parent.alloc_bytes
    );
}

fn find(snap: &obs::ProfSnapshot, name: &str) -> (u64, u64) {
    for t in &snap.threads {
        for n in &t.nodes {
            if n.name == name {
                return (n.self_allocs, n.self_alloc_bytes);
            }
        }
    }
    (0, 0)
}
