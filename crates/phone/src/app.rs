//! The measurement-app API.
//!
//! Measurement tools (ping, httping, Java ping, AcuteMon, …) are [`App`]s
//! installed on a [`PhoneNode`](crate::PhoneNode). An app sees a
//! socket-like interface ([`AppCtx`]): it sends packets, sets timers, and
//! receives the packets it claims via [`App::wants`]. Everything an app
//! does goes through the phone's full delay pipeline — runtime crossing,
//! kernel, driver, SDIO bus, then the 802.11 MAC — so user-level
//! timestamps experience exactly the inflation the paper studies.

use simcore::{Ctx, DetRng, NodeId, SimDuration, SimTime};
use wire::{Ip, Msg, Packet, PacketIdGen, PacketTag, L4};

use crate::ledger::Ledger;
use crate::profiles::{PhoneProfile, RuntimeKind};
use crate::sdio::SdioBus;

/// Traffic/behaviour counters for a phone.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhoneStats {
    /// Packets handed to the NIC.
    pub tx_pkts: u64,
    /// Packets received from the NIC.
    pub rx_pkts: u64,
    /// Received packets no app claimed (dropped at the kernel).
    pub rx_unclaimed: u64,
}

/// The phone state the pipeline and the apps share (everything except the
/// apps themselves, so an app can borrow it mutably while being called).
pub struct PhoneCore {
    /// Hardware/software profile.
    pub profile: PhoneProfile,
    /// The phone's IP address on the WLAN.
    pub ip: Ip,
    /// The station-MAC node this phone's NIC talks to.
    pub(crate) sta: NodeId,
    /// Host-bus sleep state machine.
    pub bus: SdioBus,
    /// Multi-layer timestamp ledger.
    pub ledger: Ledger,
    pub(crate) ids: PacketIdGen,
    pub(crate) next_token: u64,
    pub(crate) pending: std::collections::HashMap<u64, crate::node::Pending>,
    /// Whether the kernel answers ICMP echo requests itself (real Android
    /// kernels do; the ping2 baseline of Sui et al. depends on it).
    pub kernel_icmp_echo: bool,
    /// Counters.
    pub stats: PhoneStats,
}

/// Base for app timer tags (bit 62); pipeline tokens stay below it.
pub(crate) const APP_TIMER_BASE: u64 = 1 << 62;

/// What the phone hands an app while running one of its callbacks.
pub struct AppCtx<'a, 'b> {
    pub(crate) sim: &'a mut Ctx<'b, Msg>,
    pub(crate) core: &'a mut PhoneCore,
    pub(crate) app_idx: usize,
    pub(crate) runtime: RuntimeKind,
}

impl<'a, 'b> AppCtx<'a, 'b> {
    /// The current user-level clock.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The phone's IP address.
    pub fn my_ip(&self) -> Ip {
        self.core.ip
    }

    /// The phone profile (for tools that adapt to the device).
    pub fn profile(&self) -> &PhoneProfile {
        &self.core.profile
    }

    /// This app's runtime kind.
    pub fn runtime(&self) -> RuntimeKind {
        self.runtime
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut DetRng {
        self.sim.rng()
    }

    /// Send a packet. Returns the packet id (use it to correlate layers).
    ///
    /// The send is non-blocking, exactly like `sendto(2)`: the packet
    /// enters the TX pipeline (runtime → kernel → driver → bus → NIC) and
    /// `tou` is stamped now.
    pub fn send(&mut self, dst: Ip, ttl: u8, l4: L4, payload_len: usize, tag: PacketTag) -> u64 {
        let id = self.core.ids.next_id();
        let packet = Packet {
            id,
            src: self.core.ip,
            dst,
            ttl,
            l4,
            payload_len,
            tag,
        };
        let now = self.sim.now();
        self.core.ledger.set_tou(id, now);
        // Runtime (user→kernel) crossing: Dalvik pays more than native.
        let xing = self
            .core
            .profile
            .runtime_xing(self.runtime)
            .sample(self.sim.rng());
        // Probe sends open a causal trace: a root span covering the whole
        // user-level RTT (ended when the reply reaches the app) plus the
        // first leaf, the TX runtime crossing. All no-ops when untraced.
        let tracer = self.sim.tracer();
        if tracer.is_enabled() {
            if let PacketTag::Probe(n) = tag {
                let trace = tracer.begin_trace();
                let root = tracer.start_span(trace, None, "probe", "app", now.as_nanos());
                tracer.attr(root, "probe", n);
                tracer.attr(root, "pkt", id);
                tracer.bind_packet(id, obs::TraceCtx { trace, root });
                tracer.span(
                    trace,
                    Some(root),
                    "runtime_tx",
                    "app",
                    now.as_nanos(),
                    (now + xing).as_nanos(),
                );
            }
        }
        let token = self.core.alloc_token();
        self.core
            .pending_insert(token, crate::node::Pending::KernelTx(packet));
        self.sim.set_timer(xing, token);
        id
    }

    /// Arrange for [`App::on_timer`] with `tag` after `delay`. `tag` must
    /// fit in 32 bits.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u32) {
        let encoded = APP_TIMER_BASE | ((self.app_idx as u64) << 32) | u64::from(tag);
        self.sim.set_timer(delay, encoded);
    }

    /// Trace hook (category `"app"`).
    pub fn trace(&mut self, detail: String) {
        self.sim.trace("app", detail);
    }

    /// The causal span tracer (disabled unless the sim was given one).
    /// Tools use it to decorate their probes' root spans — e.g. a
    /// `tool` attribute — via [`obs::Tracer::packet_ctx`].
    pub fn tracer(&self) -> &obs::Tracer {
        self.sim.tracer()
    }
}

/// A measurement app installed on a phone.
pub trait App: simcore::AsAny {
    /// Called when the simulation starts.
    fn on_start(&mut self, _ctx: &mut AppCtx<'_, '_>) {}

    /// Socket demultiplexing: does this incoming packet belong to this
    /// app? The first app (in install order) that wants a packet gets it.
    fn wants(&self, packet: &Packet) -> bool;

    /// A claimed packet has reached user space (`tiu` is stamped).
    fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet);

    /// A timer set via [`AppCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut AppCtx<'_, '_>, _tag: u32) {}
}
