//! The multi-layer timestamp ledger (Fig. 1 of the paper).
//!
//! Every packet that crosses the phone is stamped at each vantage point:
//!
//! TX direction: `tou` (app send) → `tok` (kernel/bpf) → `tov` (driver
//! `dhd_start_xmit`) → `tbus` (driver `dhdsdio_txpkt`, data on the bus).
//!
//! RX direction: `tiv` (driver `dhdsdio_isr`) → `trxf`
//! (`dhd_rxf_enqueue`) → `tik` (kernel `netif_rx_ni`/bpf) → `tiu` (app
//! receive).
//!
//! `ton`/`tin` (the air) come from the external sniffers, not the phone.
//! The per-layer RTTs and the ∆ overheads of §2.1 are computed by joining
//! this ledger with sniffer captures (see the `sniffer` and `testbed`
//! crates).

use std::collections::HashMap;

use simcore::SimTime;

/// Per-packet stamps (all optional: a packet only crosses one direction).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PacketStamps {
    /// App called send (user clock).
    pub tou: Option<SimTime>,
    /// Kernel saw the outgoing packet (what `tcpdump` stamps).
    pub tok: Option<SimTime>,
    /// Driver entry `dhd_start_xmit` (hook 1 of Fig. 4).
    pub tov: Option<SimTime>,
    /// Data written to the bus, `dhdsdio_txpkt` (hook 2 of Fig. 4).
    pub tbus: Option<SimTime>,
    /// Driver interrupt `dhdsdio_isr` (hook 1 of Fig. 5).
    pub tiv: Option<SimTime>,
    /// Frames queued to the rx thread, `dhd_rxf_enqueue` (hook 2, Fig. 5).
    pub trxf: Option<SimTime>,
    /// Kernel delivered the packet (`netif_rx_ni`, what `tcpdump` stamps).
    pub tik: Option<SimTime>,
    /// App received the packet (user clock).
    pub tiu: Option<SimTime>,
}

impl PacketStamps {
    /// `dvsend`: driver TX latency, `tbus − tov` (Table 3), in ms.
    pub fn dvsend_ms(&self) -> Option<f64> {
        Some(self.tbus?.saturating_since(self.tov?).as_ms_f64())
    }

    /// `dvrecv`: driver RX latency, `trxf − tiv` (Table 3), in ms.
    pub fn dvrecv_ms(&self) -> Option<f64> {
        Some(self.trxf?.saturating_since(self.tiv?).as_ms_f64())
    }
}

/// The phone's timestamp ledger, keyed by packet id.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    map: HashMap<u64, PacketStamps>,
}

macro_rules! setter {
    ($name:ident, $field:ident) => {
        /// Record this stamp for packet `id`.
        pub fn $name(&mut self, id: u64, at: SimTime) {
            self.map.entry(id).or_default().$field = Some(at);
        }
    };
}

impl Ledger {
    /// Create an empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    setter!(set_tou, tou);
    setter!(set_tok, tok);
    setter!(set_tov, tov);
    setter!(set_tbus, tbus);
    setter!(set_tiv, tiv);
    setter!(set_trxf, trxf);
    setter!(set_tik, tik);
    setter!(set_tiu, tiu);

    /// Stamps for a packet, if any were recorded.
    pub fn get(&self, id: u64) -> Option<&PacketStamps> {
        self.map.get(&id)
    }

    /// Number of packets with at least one stamp.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All `dvsend` samples in ms (Table 3 rows).
    pub fn dvsend_samples(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.map.values().filter_map(|s| s.dvsend_ms()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    }

    /// All `dvrecv` samples in ms (Table 3 rows).
    pub fn dvrecv_samples(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.map.values().filter_map(|s| s.dvrecv_ms()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    }

    /// Kernel-level RTT `dk = tik(resp) − tok(req)` in ms, given the
    /// request and response packet ids.
    pub fn dk_ms(&self, req: u64, resp: u64) -> Option<f64> {
        let tok = self.get(req)?.tok?;
        let tik = self.get(resp)?.tik?;
        Some(tik.saturating_since(tok).as_ms_f64())
    }

    /// Driver-level RTT `dv = tiv(resp) − tov(req)` in ms.
    pub fn dv_ms(&self, req: u64, resp: u64) -> Option<f64> {
        let tov = self.get(req)?.tov?;
        let tiv = self.get(resp)?.tiv?;
        Some(tiv.saturating_since(tov).as_ms_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn stamps_accumulate_per_packet() {
        let mut l = Ledger::new();
        l.set_tou(1, t(100));
        l.set_tok(1, t(180));
        l.set_tov(1, t(210));
        l.set_tbus(1, t(460));
        let s = l.get(1).unwrap();
        assert_eq!(s.tou, Some(t(100)));
        assert_eq!(s.tbus, Some(t(460)));
        assert!((s.dvsend_ms().unwrap() - 0.25).abs() < 1e-9);
        assert_eq!(s.dvrecv_ms(), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn rtt_joins() {
        let mut l = Ledger::new();
        l.set_tok(1, t(0));
        l.set_tov(1, t(50));
        l.set_tiv(2, t(30_000));
        l.set_tik(2, t(31_500));
        assert!((l.dk_ms(1, 2).unwrap() - 31.5).abs() < 1e-9);
        assert!((l.dv_ms(1, 2).unwrap() - 29.95).abs() < 1e-9);
        assert_eq!(l.dk_ms(1, 99), None);
    }

    #[test]
    fn sample_collections_sorted() {
        let mut l = Ledger::new();
        for (id, (a, b)) in [(1u64, (100u64, 400u64)), (2, (100, 150)), (3, (100, 900))] {
            l.set_tov(id, t(a));
            l.set_tbus(id, t(b));
        }
        let dv = l.dvsend_samples();
        assert_eq!(dv.len(), 3);
        assert!(dv[0] <= dv[1] && dv[1] <= dv[2]);
        assert!(l.dvrecv_samples().is_empty());
    }

    #[test]
    fn empty_ledger() {
        let l = Ledger::new();
        assert!(l.is_empty());
        assert_eq!(l.get(5), None);
    }
}
