//! # phone — the smartphone substrate
//!
//! A faithful model of the delay pipeline of the paper's Fig. 1 plus the
//! energy-saving mechanisms of §3.2:
//!
//! * [`PhoneNode`]: the layered stack — app runtime (Dalvik or native) →
//!   kernel → WNIC driver (`bcmdhd`/`wcnss` style dpc + rxframe threads) →
//!   SDIO/SMD bus → NIC. Every packet is stamped at every vantage point in
//!   a [`Ledger`].
//! * [`SdioBus`]: the host-bus sleep state machine — watchdog-driven idle
//!   demotion after `Tis = idletime × watchdog` (50 ms), wake (promotion)
//!   costs of ~10–14 ms for Broadcom and less for Qualcomm (Table 3).
//! * [`PhoneProfile`]: the five phones of Table 1 with parameters
//!   calibrated to the paper (Tables 3–4, Figs. 3 and 7).
//! * [`App`]/[`AppCtx`]: the socket-like API measurement tools run on.
//!
//! The 802.11 PSM half of the story lives in the `phy80211` crate; a phone
//! connects to its [`phy80211::StaMacNode`] by node id.
//!
//! ```
//! use phone::{nexus5, PhoneNode, SdioBus};
//! use simcore::{SimDuration, SimTime};
//!
//! // The SDIO sleep state machine alone: 50 ms demotion, lazy evaluation.
//! let profile = nexus5();
//! assert_eq!(profile.bus.tis(), SimDuration::from_millis(50));
//! let mut bus = SdioBus::new(profile.bus.tis(), true);
//! assert!(!bus.is_awake(SimTime::ZERO)); // starts asleep
//! bus.touch(SimTime::from_millis(100), SimTime::from_millis(110));
//! assert!(bus.is_awake(SimTime::from_millis(150)));
//! assert!(!bus.is_awake(SimTime::from_millis(161))); // demoted at 160
//! ```

#![warn(missing_docs)]

mod app;
mod ledger;
mod node;
mod profiles;
mod sdio;

pub use app::{App, AppCtx, PhoneCore, PhoneStats};
pub use ledger::{Ledger, PacketStamps};
pub use node::{wired_ip, wlan_ip, PhoneNode};
pub use profiles::{
    all_phones, htc_one, nexus4, nexus5, samsung_grand, xperia_j, BusParams, ChipVendor,
    PhoneProfile, RuntimeKind,
};
pub use sdio::{BusStats, SdioBus};
