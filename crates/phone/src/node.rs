//! The phone node: the full TX/RX delay pipeline of Fig. 1, with apps on
//! top and the station MAC below.
//!
//! TX: `tou` (app) → runtime crossing → `tok` (kernel) → `tov` (driver
//! `dhd_start_xmit`) → [bus wake if asleep] + driver work → `tbus`
//! (`dhdsdio_txpkt`) → bus transfer → NIC (the [`StaMacNode`] handles the
//! PSM side and the air).
//!
//! RX: NIC delivery → `tiv` (`dhdsdio_isr`) → [bus wake if asleep] +
//! driver work → `trxf` (`dhd_rxf_enqueue`) → `tik` (`netif_rx_ni`) →
//! runtime crossing of the claiming app → `tiu` (app).
//!
//! [`StaMacNode`]: phy80211::StaMacNode

use std::collections::HashMap;

#[cfg(test)]
use simcore::SimTime;
use simcore::{Ctx, Node, NodeId, SimDuration};
use wire::{Ip, Msg, Packet, PacketIdGen};

use crate::app::{App, AppCtx, PhoneCore, PhoneStats, APP_TIMER_BASE};
use crate::ledger::Ledger;
use crate::profiles::{PhoneProfile, RuntimeKind};
use crate::sdio::SdioBus;

/// A pipeline stage waiting on a timer.
#[derive(Debug)]
pub(crate) enum Pending {
    /// Packet crossing into the kernel (TX).
    KernelTx(Packet),
    /// Packet entering the driver (TX).
    DriverTx(Packet),
    /// Packet written to the bus (TX).
    BusTx(Packet),
    /// Driver finished reading the frame from the bus (RX).
    RxEnqueue(Packet),
    /// Kernel delivering to user space (RX).
    KernelRx(Packet),
    /// Runtime crossing into the claiming app (RX).
    AppRx(Packet, usize),
}

/// Record a complete pipeline-stage span for `pkt_id` if the packet is
/// part of a causal trace. Free when tracing is off or the packet is
/// untraced.
fn trace_stage(
    ctx: &Ctx<'_, Msg>,
    pkt_id: u64,
    name: &'static str,
    cat: &'static str,
    start: simcore::SimTime,
    end: simcore::SimTime,
) -> Option<obs::SpanId> {
    let tracer = ctx.tracer();
    let tc = tracer.packet_ctx(pkt_id)?;
    Some(tracer.span(
        tc.trace,
        Some(tc.root),
        name,
        cat,
        start.as_nanos(),
        end.as_nanos(),
    ))
}

impl PhoneCore {
    pub(crate) fn alloc_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        debug_assert!(t < APP_TIMER_BASE, "token space exhausted");
        t
    }

    pub(crate) fn pending_insert(&mut self, token: u64, p: Pending) {
        self.pending.insert(token, p);
    }
}

struct AppSlot {
    app: Option<Box<dyn App>>,
    runtime: RuntimeKind,
}

/// The phone.
pub struct PhoneNode {
    core: PhoneCore,
    apps: Vec<AppSlot>,
}

impl PhoneNode {
    /// Create a phone with the given profile and WLAN address, attached to
    /// the station-MAC node `sta`. `source` seeds its packet-id space.
    pub fn new(source: u32, profile: PhoneProfile, ip: Ip, sta: NodeId) -> PhoneNode {
        let bus = SdioBus::new(profile.bus.tis(), true);
        PhoneNode {
            core: PhoneCore {
                profile,
                ip,
                sta,
                bus,
                ledger: Ledger::new(),
                ids: PacketIdGen::new(source),
                next_token: 1,
                pending: HashMap::new(),
                kernel_icmp_echo: true,
                stats: PhoneStats::default(),
            },
            apps: Vec::new(),
        }
    }

    /// Install an app with the given runtime kind; returns its index.
    pub fn install_app(&mut self, app: Box<dyn App>, runtime: RuntimeKind) -> usize {
        self.apps.push(AppSlot {
            app: Some(app),
            runtime,
        });
        self.apps.len() - 1
    }

    /// Typed view of an installed app (for result extraction after a run).
    ///
    /// # Panics
    /// Panics if the index or type is wrong.
    pub fn app<T: 'static>(&self, idx: usize) -> &T {
        let app: &dyn App = &**self.apps[idx].app.as_ref().expect("app in dispatch");
        app.as_any().downcast_ref::<T>().expect("app type mismatch")
    }

    /// Mutable typed view of an installed app (e.g. to attach telemetry
    /// before a run).
    ///
    /// # Panics
    /// Panics if the index or type is wrong.
    pub fn app_mut<T: 'static>(&mut self, idx: usize) -> &mut T {
        let app: &mut dyn App = &mut **self.apps[idx].app.as_mut().expect("app in dispatch");
        app.as_any_mut()
            .downcast_mut::<T>()
            .expect("app type mismatch")
    }

    /// The phone's core state (ledger, bus, stats, profile).
    pub fn core(&self) -> &PhoneCore {
        &self.core
    }

    /// Mutable core access (e.g. to disable bus sleep for an ablation).
    pub fn core_mut(&mut self) -> &mut PhoneCore {
        &mut self.core
    }

    /// Convenience: the timestamp ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.core.ledger
    }

    /// Convenience: the profile.
    pub fn profile(&self) -> &PhoneProfile {
        &self.core.profile
    }

    fn with_app<R>(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        idx: usize,
        f: impl FnOnce(&mut Box<dyn App>, &mut AppCtx<'_, '_>) -> R,
    ) -> R {
        let runtime = self.apps[idx].runtime;
        let mut app = self.apps[idx].app.take().expect("reentrant app dispatch");
        let r = {
            let mut actx = AppCtx {
                sim: ctx,
                core: &mut self.core,
                app_idx: idx,
                runtime,
            };
            f(&mut app, &mut actx)
        };
        self.apps[idx].app = Some(app);
        r
    }

    fn take_pending(&mut self, token: u64) -> Option<Pending> {
        self.core.pending.remove(&token)
    }

    fn schedule(&mut self, ctx: &mut Ctx<'_, Msg>, delay: SimDuration, p: Pending) {
        let token = self.core.alloc_token();
        self.core.pending_insert(token, p);
        ctx.set_timer(delay, token);
    }

    /// TX stage 2: the kernel saw the packet.
    fn kernel_tx(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet) {
        let now = ctx.now();
        self.core.ledger.set_tok(packet.id, now);
        let d = self.core.profile.kernel_tx.sample(ctx.rng());
        trace_stage(ctx, packet.id, "kernel_tx", "kernel", now, now + d);
        self.schedule(ctx, d, Pending::DriverTx(packet));
    }

    /// TX stage 3: driver entry; bus wake if needed, then driver work.
    fn driver_tx(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet) {
        let now = ctx.now();
        self.core.ledger.set_tov(packet.id, now);
        let asleep = !self.core.bus.is_awake(now);
        let wake = if asleep {
            self.core.profile.bus.tx_wake.sample(ctx.rng())
        } else {
            SimDuration::ZERO
        };
        let base = self.core.profile.bus.tx_base.sample(ctx.rng());
        let total = wake + base;
        self.core.bus.touch(now, now + total);
        if asleep && ctx.trace_enabled("sdio") {
            ctx.trace("sdio", format!("tx wake {} for pkt {}", wake, packet.id));
        }
        // The sdio_wake span covers the whole driver op when it found the
        // bus asleep — the same `ready_at − now` interval the
        // `phone.sdio.wake_latency_ms` histogram observes in
        // `SdioBus::touch`, so span totals reconcile with metric sums.
        let name = if asleep { "sdio_wake" } else { "driver_tx" };
        if let Some(span) = trace_stage(ctx, packet.id, name, "driver", now, now + total) {
            if asleep {
                ctx.tracer().attr(span, "dir", "tx");
                ctx.tracer().attr(span, "wake_ms", wake.as_ms_f64());
            }
        }
        self.schedule(ctx, total, Pending::BusTx(packet));
    }

    /// TX stage 4: data on the bus; hand to the NIC after the transfer.
    fn bus_tx(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet) {
        let now = ctx.now();
        self.core.ledger.set_tbus(packet.id, now);
        self.core.stats.tx_pkts += 1;
        let xfer = self.core.profile.bus.xfer.sample(ctx.rng());
        trace_stage(ctx, packet.id, "bus_tx", "driver", now, now + xfer);
        let sta = self.core.sta;
        ctx.send(sta, xfer, Msg::Wire(packet));
    }

    /// RX stage 1: interrupt from the NIC.
    fn rx_isr(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet) {
        let now = ctx.now();
        self.core.ledger.set_tiv(packet.id, now);
        self.core.stats.rx_pkts += 1;
        let asleep = !self.core.bus.is_awake(now);
        let wake = if asleep {
            self.core.profile.bus.rx_wake.sample(ctx.rng())
        } else {
            SimDuration::ZERO
        };
        let base = self.core.profile.bus.rx_base.sample(ctx.rng());
        let total = wake + base;
        self.core.bus.touch(now, now + total);
        if asleep && ctx.trace_enabled("sdio") {
            ctx.trace("sdio", format!("rx wake {} for pkt {}", wake, packet.id));
        }
        // As in `driver_tx`: the asleep case is one `sdio_wake` span with
        // exactly the histogram-observed duration.
        let name = if asleep { "sdio_wake" } else { "driver_rx" };
        if let Some(span) = trace_stage(ctx, packet.id, name, "driver", now, now + total) {
            if asleep {
                ctx.tracer().attr(span, "dir", "rx");
                ctx.tracer().attr(span, "wake_ms", wake.as_ms_f64());
            }
        }
        self.schedule(ctx, total, Pending::RxEnqueue(packet));
    }

    /// RX stage 2: frames read off the bus and queued for the rx thread.
    fn rx_enqueue(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet) {
        let now = ctx.now();
        self.core.ledger.set_trxf(packet.id, now);
        let d = self.core.profile.kernel_rx.sample(ctx.rng());
        trace_stage(ctx, packet.id, "kernel_rx", "kernel", now, now + d);
        self.schedule(ctx, d, Pending::KernelRx(packet));
    }

    /// RX stage 3: kernel delivery; demux to the claiming app.
    fn kernel_rx(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet) {
        self.core.ledger.set_tik(packet.id, ctx.now());
        if self.core.kernel_icmp_echo {
            if let wire::L4::Icmp {
                kind: wire::IcmpKind::EchoRequest,
                ident,
                seq,
            } = packet.l4
            {
                // The kernel answers pings itself: the reply enters the TX
                // pipeline at the kernel stage, skipping any app runtime.
                let reply = packet.reply(
                    self.core.ids.next_id(),
                    wire::L4::Icmp {
                        kind: wire::IcmpKind::EchoReply,
                        ident,
                        seq,
                    },
                    packet.payload_len,
                    wire::PacketTag::Other,
                );
                let d = self.core.profile.kernel_tx.sample(ctx.rng());
                let now = ctx.now();
                self.core.ledger.set_tok(reply.id, now);
                // The echo turn-around continues the request's trace.
                ctx.tracer().rebind_packet(packet.id, reply.id);
                trace_stage(ctx, reply.id, "kernel_echo", "kernel", now, now + d);
                self.schedule(ctx, d, Pending::DriverTx(reply));
                return;
            }
        }
        let claimed = self
            .apps
            .iter()
            .position(|slot| slot.app.as_ref().map(|a| a.wants(&packet)).unwrap_or(false));
        match claimed {
            Some(idx) => {
                let runtime = self.apps[idx].runtime;
                let xing = self.core.profile.runtime_xing(runtime).sample(ctx.rng());
                let now = ctx.now();
                trace_stage(ctx, packet.id, "runtime_rx", "app", now, now + xing);
                self.schedule(ctx, xing, Pending::AppRx(packet, idx));
            }
            None => {
                self.core.stats.rx_unclaimed += 1;
            }
        }
    }

    /// RX stage 4: packet reaches user space.
    fn app_rx(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet, idx: usize) {
        let now = ctx.now();
        self.core.ledger.set_tiu(packet.id, now);
        // The probe's user-level RTT ends here: close the root span.
        let tracer = ctx.tracer();
        if let Some(tc) = tracer.packet_ctx(packet.id) {
            tracer.end_span(tc.root, now.as_nanos());
        }
        self.with_app(ctx, idx, |app, actx| app.on_packet(actx, packet));
    }
}

impl Node<Msg> for PhoneNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for idx in 0..self.apps.len() {
            self.with_app(ctx, idx, |app, actx| app.on_start(actx));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Wire(packet) => {
                debug_assert_eq!(from, self.core.sta, "packet from unexpected node");
                self.rx_isr(ctx, packet);
            }
            Msg::TxDone { .. } | Msg::TxFailed { .. } => {}
            other => debug_assert!(false, "phone got unexpected message {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if tag & APP_TIMER_BASE != 0 {
            let idx = ((tag >> 32) & 0x3FFF_FFFF) as usize;
            let user = (tag & 0xFFFF_FFFF) as u32;
            self.with_app(ctx, idx, |app, actx| app.on_timer(actx, user));
            return;
        }
        match self.take_pending(tag) {
            Some(Pending::KernelTx(p)) => self.kernel_tx(ctx, p),
            Some(Pending::DriverTx(p)) => self.driver_tx(ctx, p),
            Some(Pending::BusTx(p)) => self.bus_tx(ctx, p),
            Some(Pending::RxEnqueue(p)) => self.rx_enqueue(ctx, p),
            Some(Pending::KernelRx(p)) => self.kernel_rx(ctx, p),
            Some(Pending::AppRx(p, idx)) => self.app_rx(ctx, p, idx),
            None => debug_assert!(false, "phone timer with no pending op (tag {tag})"),
        }
    }
}

/// A minimal helper used by tests and examples: an IP address in the
/// testbed's WLAN subnet.
pub fn wlan_ip(host: u8) -> Ip {
    Ip::new(192, 168, 1, host)
}

/// A minimal helper: an IP address in the testbed's wired subnet.
pub fn wired_ip(host: u8) -> Ip {
    Ip::new(10, 0, 0, host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::nexus5;
    use simcore::Sim;
    use wire::{IcmpKind, PacketTag, L4};

    /// Loopback NIC stand-in: echoes every packet back to the phone after
    /// a fixed network delay, swapping src/dst.
    struct EchoNic {
        delay: SimDuration,
        next_id: u64,
        seen_tx: Vec<(SimTime, Packet)>,
    }
    impl Node<Msg> for EchoNic {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            if let Msg::Wire(p) = msg {
                self.seen_tx.push((ctx.now(), p));
                let reply = p.reply(
                    0xE000_0000 + self.next_id,
                    match p.l4 {
                        L4::Icmp { ident, seq, .. } => L4::Icmp {
                            kind: IcmpKind::EchoReply,
                            ident,
                            seq,
                        },
                        other => other,
                    },
                    p.payload_len,
                    PacketTag::Other,
                );
                self.next_id += 1;
                ctx.send(from, self.delay, Msg::Wire(reply));
            }
        }
    }

    /// A trivial ping app: sends one echo request at start, records the
    /// user-level RTT.
    struct OnePing {
        ident: u16,
        sent_at: Option<SimTime>,
        rtt_ms: Option<f64>,
        req_id: Option<u64>,
        resp_id: Option<u64>,
    }
    impl OnePing {
        fn new(ident: u16) -> OnePing {
            OnePing {
                ident,
                sent_at: None,
                rtt_ms: None,
                req_id: None,
                resp_id: None,
            }
        }
    }
    impl App for OnePing {
        fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
            self.sent_at = Some(ctx.now());
            let id = ctx.send(
                wired_ip(1),
                64,
                L4::Icmp {
                    kind: IcmpKind::EchoRequest,
                    ident: self.ident,
                    seq: 0,
                },
                56,
                PacketTag::Probe(0),
            );
            self.req_id = Some(id);
        }
        fn wants(&self, packet: &Packet) -> bool {
            matches!(packet.l4, L4::Icmp { kind: IcmpKind::EchoReply, ident, .. } if ident == self.ident)
        }
        fn on_packet(&mut self, ctx: &mut AppCtx<'_, '_>, packet: Packet) {
            self.resp_id = Some(packet.id);
            self.rtt_ms = Some(
                ctx.now()
                    .saturating_since(self.sent_at.unwrap())
                    .as_ms_f64(),
            );
        }
    }

    fn run_one_ping(net_delay_ms: u64) -> (Sim<Msg>, NodeId, usize) {
        let mut sim = Sim::new(5);
        let nic = sim.add_node(Box::new(EchoNic {
            delay: SimDuration::from_millis(net_delay_ms),
            next_id: 0,
            seen_tx: vec![],
        }));
        let mut phone = PhoneNode::new(1, nexus5(), wlan_ip(100), nic);
        let app = phone.install_app(Box::new(OnePing::new(7)), RuntimeKind::Native);
        let phone_id = sim.add_node(Box::new(phone));
        sim.run_until_idle(10_000);
        (sim, phone_id, app)
    }

    #[test]
    fn full_pipeline_stamps_every_layer() {
        let (sim, phone_id, app) = run_one_ping(30);
        let phone = sim.node::<PhoneNode>(phone_id);
        let ping = phone.app::<OnePing>(app);
        let req = ping.req_id.unwrap();
        let resp = ping.resp_id.unwrap();
        let s = phone.ledger().get(req).unwrap();
        assert!(s.tou.is_some() && s.tok.is_some() && s.tov.is_some() && s.tbus.is_some());
        assert!(s.tou < s.tok && s.tok < s.tov && s.tov < s.tbus);
        let r = phone.ledger().get(resp).unwrap();
        assert!(r.tiv.is_some() && r.trxf.is_some() && r.tik.is_some() && r.tiu.is_some());
        assert!(r.tiv < r.trxf && r.trxf < r.tik && r.tik < r.tiu);
    }

    #[test]
    fn cold_start_pays_bus_wake_on_tx() {
        let (sim, phone_id, app) = run_one_ping(10);
        let phone = sim.node::<PhoneNode>(phone_id);
        let ping = phone.app::<OnePing>(app);
        let s = phone.ledger().get(ping.req_id.unwrap()).unwrap();
        // Bus starts asleep: dvsend = wake (7..13) + base (0.09..0.84).
        let dvsend = s.dvsend_ms().unwrap();
        assert!(dvsend > 7.0, "dvsend={dvsend}");
        assert!(dvsend < 14.0, "dvsend={dvsend}");
        assert_eq!(phone.core().bus.stats.wakeups, 1);
        // 10 ms RTT < Tis: the response finds the bus awake.
        let r = phone.ledger().get(ping.resp_id.unwrap()).unwrap();
        let dvrecv = r.dvrecv_ms().unwrap();
        assert!(dvrecv < 3.0, "dvrecv={dvrecv}");
    }

    #[test]
    fn long_rtt_pays_rx_wake_too() {
        // 60 ms RTT > Tis=50ms: the bus demotes while waiting and the
        // response pays the RX wake — the Nexus-5 pattern of Table 2.
        let (sim, phone_id, app) = run_one_ping(60);
        let phone = sim.node::<PhoneNode>(phone_id);
        let ping = phone.app::<OnePing>(app);
        let r = phone.ledger().get(ping.resp_id.unwrap()).unwrap();
        let dvrecv = r.dvrecv_ms().unwrap();
        assert!(dvrecv > 8.0, "dvrecv={dvrecv}");
        assert_eq!(phone.core().bus.stats.wakeups, 2);
        // And the user-level RTT is inflated accordingly.
        let rtt = ping.rtt_ms.unwrap();
        assert!(rtt > 60.0 + 15.0, "rtt={rtt}");
    }

    #[test]
    fn disabling_bus_sleep_removes_the_inflation() {
        let mut sim = Sim::new(5);
        let nic = sim.add_node(Box::new(EchoNic {
            delay: SimDuration::from_millis(60),
            next_id: 0,
            seen_tx: vec![],
        }));
        let mut phone = PhoneNode::new(1, nexus5(), wlan_ip(100), nic);
        phone.core_mut().bus.set_sleep_enabled(false);
        let app = phone.install_app(Box::new(OnePing::new(7)), RuntimeKind::Native);
        let phone_id = sim.add_node(Box::new(phone));
        sim.run_until_idle(10_000);
        let phone = sim.node::<PhoneNode>(phone_id);
        let rtt = phone.app::<OnePing>(app).rtt_ms.unwrap();
        assert!(rtt < 60.0 + 5.0, "rtt={rtt}");
        assert_eq!(phone.core().bus.stats.wakeups, 0);
    }

    #[test]
    fn dalvik_app_pays_more_user_kernel_overhead() {
        fn run(kind: RuntimeKind) -> f64 {
            let mut total = 0.0;
            for seed in 0..20 {
                let mut sim = Sim::new(seed);
                let nic = sim.add_node(Box::new(EchoNic {
                    delay: SimDuration::from_millis(10),
                    next_id: 0,
                    seen_tx: vec![],
                }));
                let mut phone = PhoneNode::new(1, nexus5(), wlan_ip(100), nic);
                let app = phone.install_app(Box::new(OnePing::new(7)), kind);
                let phone_id = sim.add_node(Box::new(phone));
                sim.run_until_idle(10_000);
                let phone = sim.node::<PhoneNode>(phone_id);
                let ping = phone.app::<OnePing>(app);
                // ∆du−k = du − dk.
                let s = phone.ledger().get(ping.req_id.unwrap()).unwrap();
                let r = phone.ledger().get(ping.resp_id.unwrap()).unwrap();
                let du = r.tiu.unwrap().saturating_since(s.tou.unwrap()).as_ms_f64();
                let dk = r.tik.unwrap().saturating_since(s.tok.unwrap()).as_ms_f64();
                total += du - dk;
            }
            total / 20.0
        }
        let native = run(RuntimeKind::Native);
        let dalvik = run(RuntimeKind::Dalvik);
        assert!(native < 1.0, "native ∆du−k = {native}");
        assert!(dalvik > native, "dalvik {dalvik} vs native {native}");
    }

    #[test]
    fn unclaimed_packets_counted() {
        let mut sim = Sim::new(5);
        let nic = sim.add_node(Box::new(EchoNic {
            delay: SimDuration::from_millis(5),
            next_id: 0,
            seen_tx: vec![],
        }));
        // App claims ident 7; inject a stray packet with another ident.
        let mut phone = PhoneNode::new(1, nexus5(), wlan_ip(100), nic);
        phone.install_app(Box::new(OnePing::new(7)), RuntimeKind::Native);
        let phone_id = sim.add_node(Box::new(phone));
        let stray = Packet {
            id: 999,
            src: wired_ip(1),
            dst: wlan_ip(100),
            ttl: 60,
            l4: L4::Icmp {
                kind: IcmpKind::EchoReply,
                ident: 99,
                seq: 0,
            },
            payload_len: 56,
            tag: PacketTag::Other,
        };
        sim.inject(nic, phone_id, SimTime::from_millis(1), Msg::Wire(stray));
        sim.run_until_idle(10_000);
        assert_eq!(sim.node::<PhoneNode>(phone_id).core().stats.rx_unclaimed, 1);
    }

    #[test]
    fn app_timers_roundtrip() {
        struct TimerApp {
            fired: Vec<(SimTime, u32)>,
        }
        impl App for TimerApp {
            fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
                ctx.set_timer(SimDuration::from_millis(5), 42);
                ctx.set_timer(SimDuration::from_millis(10), 43);
            }
            fn wants(&self, _p: &Packet) -> bool {
                false
            }
            fn on_packet(&mut self, _ctx: &mut AppCtx<'_, '_>, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, tag: u32) {
                self.fired.push((ctx.now(), tag));
            }
        }
        let mut sim = Sim::new(0);
        let nic = sim.add_node(Box::new(EchoNic {
            delay: SimDuration::ZERO,
            next_id: 0,
            seen_tx: vec![],
        }));
        let mut phone = PhoneNode::new(1, nexus5(), wlan_ip(100), nic);
        let app = phone.install_app(Box::new(TimerApp { fired: vec![] }), RuntimeKind::Native);
        let phone_id = sim.add_node(Box::new(phone));
        sim.run_until_idle(100);
        let fired = &sim.node::<PhoneNode>(phone_id).app::<TimerApp>(app).fired;
        assert_eq!(
            fired,
            &vec![
                (SimTime::from_millis(5), 42),
                (SimTime::from_millis(10), 43)
            ]
        );
    }

    #[test]
    fn helpers() {
        assert_eq!(wlan_ip(100).to_string(), "192.168.1.100");
        assert_eq!(wired_ip(1).to_string(), "10.0.0.1");
    }
}
