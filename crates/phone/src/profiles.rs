//! Smartphone hardware/software profiles.
//!
//! One profile per phone in the paper's Table 1, with the timing parameters
//! the paper measured or that were calibrated against its results:
//!
//! * Table 3 calibrates the Nexus 5 SDIO wake/base latencies;
//! * Table 4 gives each phone's PSM timeout `Tip` and listen intervals;
//! * Fig. 3 calibrates the Qualcomm (`wcnss`/SMD) wake costs;
//! * Fig. 7 calibrates the per-phone awake-path driver costs.
//!
//! See `DESIGN.md` §4 for the full calibration table.

use simcore::{LatencyDist, SimDuration};

/// WNIC vendor family. Broadcom chipsets use the `bcmdhd` driver over the
/// SDIO bus; Qualcomm chipsets use `wcnss` over SMD. Both have the same
/// idle-demotion mechanism (§3.2.1), with different wake costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipVendor {
    /// Broadcom (`bcmdhd`, SDIO).
    Broadcom,
    /// Qualcomm (`wcnss`, SMD).
    Qualcomm,
}

/// Execution environment of a measurement app (§2.1, \[23\]): Dalvik adds
/// user–kernel overhead that a pre-compiled native binary avoids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Pre-compiled native C binary (AcuteMon's MT, adb-shell ping).
    Native,
    /// Dalvik VM (Java apps like MobiPerf's InetAddress ping).
    Dalvik,
}

/// Host-bus (SDIO/SMD) timing parameters.
#[derive(Debug, Clone)]
pub struct BusParams {
    /// Driver watchdog period; the idle counter advances once per tick.
    pub watchdog: SimDuration,
    /// Ticks of idleness before the bus is put to sleep (`idletime`).
    pub idletime: u32,
    /// TX-side bus wake (promotion) latency when asleep, ms.
    pub tx_wake: LatencyDist,
    /// RX-side bus wake latency when asleep, ms.
    pub rx_wake: LatencyDist,
    /// TX driver path cost when awake (`dhd_start_xmit` → `dhdsdio_txpkt`), ms.
    pub tx_base: LatencyDist,
    /// RX driver path cost when awake (`dhdsdio_isr` → `dhd_rxf_enqueue`), ms.
    pub rx_base: LatencyDist,
    /// Bus transfer time for one frame, ms.
    pub xfer: LatencyDist,
}

impl BusParams {
    /// The demotion timeout `Tis = idletime × watchdog` (50 ms by default,
    /// §3.2.1).
    pub fn tis(&self) -> SimDuration {
        self.watchdog.times(u64::from(self.idletime))
    }
}

/// A complete phone model.
#[derive(Debug, Clone)]
pub struct PhoneProfile {
    /// Model name as in Table 1.
    pub name: &'static str,
    /// Android version.
    pub android: &'static str,
    /// WNIC chipset name.
    pub wnic: &'static str,
    /// Chipset vendor (selects driver behaviour).
    pub vendor: ChipVendor,
    /// Relative slowness of the SoC (1.0 = Nexus 5); scales runtime and
    /// kernel costs.
    pub cpu_factor: f64,
    /// Host bus parameters.
    pub bus: BusParams,
    /// Kernel TX crossing cost (socket → driver entry), ms.
    pub kernel_tx: LatencyDist,
    /// Kernel RX crossing cost (netif → socket), ms.
    pub kernel_rx: LatencyDist,
    /// User–kernel crossing for native apps (each direction), ms.
    pub native_xing: LatencyDist,
    /// User–kernel crossing for Dalvik apps (each direction), ms.
    pub dalvik_xing: LatencyDist,
    /// Adaptive-PSM timeout `Tip` distribution, ms (Table 4).
    pub psm_timeout: LatencyDist,
    /// Listen interval announced at association (Table 4).
    pub listen_interval_assoc: u32,
    /// Listen interval actually used (Table 4: 0 for every phone).
    pub listen_interval_actual: u32,
    /// Radio turn-on cost when transmitting from doze, ms.
    pub psm_wake_tx: LatencyDist,
    /// Probability a dozing STA misses a beacon it should have heard.
    pub beacon_miss_prob: f64,
    /// Quirk: `ping` prints integer RTTs once they exceed 100 ms, so
    /// reported `du` is rounded down (the negative ∆du−k of Fig. 3d).
    pub ping_integer_rounding: bool,
}

impl PhoneProfile {
    /// The mean PSM timeout in ms, handy for experiment planning.
    pub fn tip_mean_ms(&self) -> f64 {
        self.psm_timeout.mean_ms
    }

    /// Runtime crossing distribution for the given runtime kind, with the
    /// CPU factor applied.
    pub fn runtime_xing(&self, kind: RuntimeKind) -> LatencyDist {
        let d = match kind {
            RuntimeKind::Native => self.native_xing,
            RuntimeKind::Dalvik => self.dalvik_xing,
        };
        scale(d, self.cpu_factor)
    }
}

/// Scale a latency distribution by a CPU slowness factor.
fn scale(d: LatencyDist, f: f64) -> LatencyDist {
    LatencyDist {
        mean_ms: d.mean_ms * f,
        std_ms: d.std_ms * f,
        min_ms: d.min_ms * f,
        max_ms: d.max_ms * f,
    }
}

/// Driver-path base costs are only partly CPU-bound (the bus transfer and
/// firmware turnaround don't scale with the SoC), so they scale with the
/// square root of the CPU factor — this keeps the low-end phones' awake
/// overheads near the sub-3 ms medians of Fig. 7 while still separating
/// them from the flagships.
fn bus_scale(cpu_factor: f64) -> f64 {
    cpu_factor.sqrt()
}

fn broadcom_bus(cpu_factor: f64) -> BusParams {
    let cpu_factor = bus_scale(cpu_factor);
    BusParams {
        watchdog: SimDuration::from_millis(10),
        idletime: 5,
        // Table 3, sleep enabled, 1 s interval: dvsend mean 10.15 max 13.5;
        // subtracting the awake base gives the wake component.
        tx_wake: LatencyDist::normal(9.5, 1.2, 7.0, 13.0),
        // dvrecv mean 12.75 max 14.2 minus base ~1.6.
        rx_wake: LatencyDist::normal(11.0, 1.0, 8.5, 12.6),
        // Table 3, sleep disabled, 10 ms: min 0.092 mean 0.229 max 0.836.
        tx_base: scale(LatencyDist::normal(0.25, 0.13, 0.09, 0.84), cpu_factor),
        // Table 3, sleep disabled: min 0.31 mean 1.59 max 2.65.
        rx_base: scale(LatencyDist::normal(1.6, 0.45, 0.31, 2.83), cpu_factor),
        xfer: LatencyDist::normal(0.05, 0.02, 0.01, 0.12),
    }
}

fn qualcomm_bus(cpu_factor: f64) -> BusParams {
    let cpu_factor = bus_scale(cpu_factor);
    BusParams {
        watchdog: SimDuration::from_millis(10),
        idletime: 5,
        // Fig 3: Nexus 4 ∆dk−n at 1 s has a ~6 ms median -> SMD wake ≈ 4.5
        // TX-side plus ~1.2 RX-side.
        tx_wake: LatencyDist::normal(4.5, 0.8, 3.0, 7.0),
        rx_wake: LatencyDist::normal(1.2, 0.4, 0.5, 2.5),
        // Fig 7c: awake-path medians ≈ 0.8 ms total.
        tx_base: scale(LatencyDist::normal(0.12, 0.05, 0.03, 0.4), cpu_factor),
        rx_base: scale(LatencyDist::normal(0.55, 0.2, 0.2, 1.2), cpu_factor),
        xfer: LatencyDist::normal(0.04, 0.015, 0.01, 0.1),
    }
}

#[allow(clippy::too_many_arguments)]
fn base_profile(
    name: &'static str,
    android: &'static str,
    wnic: &'static str,
    vendor: ChipVendor,
    cpu_factor: f64,
    tip: LatencyDist,
    listen_assoc: u32,
    ping_integer_rounding: bool,
) -> PhoneProfile {
    let bus = match vendor {
        ChipVendor::Broadcom => broadcom_bus(cpu_factor),
        ChipVendor::Qualcomm => qualcomm_bus(cpu_factor),
    };
    PhoneProfile {
        name,
        android,
        wnic,
        vendor,
        cpu_factor,
        bus,
        kernel_tx: scale(LatencyDist::normal(0.03, 0.012, 0.008, 0.1), cpu_factor),
        kernel_rx: scale(LatencyDist::normal(0.04, 0.015, 0.01, 0.12), cpu_factor),
        native_xing: LatencyDist::normal(0.08, 0.04, 0.02, 0.3),
        dalvik_xing: LatencyDist::normal(0.6, 0.3, 0.15, 2.2),
        psm_timeout: tip,
        listen_interval_assoc: listen_assoc,
        listen_interval_actual: 0,
        psm_wake_tx: LatencyDist::normal(0.8, 0.3, 0.2, 2.0),
        beacon_miss_prob: 0.15,
        ping_integer_rounding,
    }
}

/// Google Nexus 5: Android 4.4.2, 2.26 GHz ×4, 2 GB, BCM4339 (Table 1);
/// `Tip` ≈ 205 ms (Table 4).
pub fn nexus5() -> PhoneProfile {
    base_profile(
        "Google Nexus 5",
        "4.4.2",
        "BCM4339",
        ChipVendor::Broadcom,
        1.0,
        LatencyDist::normal(205.0, 15.0, 150.0, 260.0),
        10,
        false,
    )
}

/// Google Nexus 4: Android 4.4.4, 1.5 GHz ×4, 2 GB, WCN3660; `Tip` ≈ 40 ms,
/// and its `ping` prints integer RTTs above 100 ms.
pub fn nexus4() -> PhoneProfile {
    base_profile(
        "Google Nexus 4",
        "4.4.4",
        "WCN3660",
        ChipVendor::Qualcomm,
        1.1,
        LatencyDist::normal(40.0, 10.0, 20.0, 70.0),
        1,
        true,
    )
}

/// HTC One: Android 4.2.2, 1.7 GHz ×4, 2 GB, WCN3680; `Tip` ≈ 400 ms.
pub fn htc_one() -> PhoneProfile {
    base_profile(
        "HTC One",
        "4.2.2",
        "WCN3680",
        ChipVendor::Qualcomm,
        1.1,
        LatencyDist::normal(400.0, 25.0, 330.0, 470.0),
        1,
        false,
    )
}

/// Sony Xperia J: Android 4.0.4, 1 GHz ×1, 512 MB, BCM4330; `Tip` ≈ 210 ms.
/// The slowest phone under test — its ∆dk−n whiskers reach ~4 ms (Fig. 7).
pub fn xperia_j() -> PhoneProfile {
    let mut p = base_profile(
        "Sony Xperia J",
        "4.0.4",
        "BCM4330",
        ChipVendor::Broadcom,
        2.0,
        LatencyDist::normal(210.0, 15.0, 160.0, 260.0),
        10,
        false,
    );
    p.dalvik_xing = LatencyDist::normal(1.0, 0.4, 0.3, 3.0);
    p
}

/// Samsung Galaxy Grand: Android 4.1.2, 1.2 GHz ×2, 1 GB, BCM4329;
/// `Tip` ≈ 45 ms.
pub fn samsung_grand() -> PhoneProfile {
    base_profile(
        "Samsung Grand",
        "4.1.2",
        "BCM4329",
        ChipVendor::Broadcom,
        1.5,
        LatencyDist::normal(45.0, 10.0, 25.0, 70.0),
        10,
        false,
    )
}

/// All five phones of Table 1, in the paper's order.
pub fn all_phones() -> Vec<PhoneProfile> {
    vec![nexus5(), nexus4(), htc_one(), xperia_j(), samsung_grand()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_phones() {
        let all = all_phones();
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(|p| p.name).collect();
        assert!(names.contains(&"Google Nexus 5"));
        assert!(names.contains(&"Sony Xperia J"));
    }

    #[test]
    fn tis_is_50ms() {
        assert_eq!(nexus5().bus.tis(), SimDuration::from_millis(50));
        assert_eq!(nexus4().bus.tis(), SimDuration::from_millis(50));
    }

    #[test]
    fn tip_matches_table4() {
        assert!((nexus4().tip_mean_ms() - 40.0).abs() < 1e-9);
        assert!((nexus5().tip_mean_ms() - 205.0).abs() < 1e-9);
        assert!((samsung_grand().tip_mean_ms() - 45.0).abs() < 1e-9);
        assert!((htc_one().tip_mean_ms() - 400.0).abs() < 1e-9);
        assert!((xperia_j().tip_mean_ms() - 210.0).abs() < 1e-9);
    }

    #[test]
    fn listen_intervals_match_table4() {
        for p in all_phones() {
            assert_eq!(p.listen_interval_actual, 0, "{}", p.name);
            match p.vendor {
                ChipVendor::Qualcomm => assert_eq!(p.listen_interval_assoc, 1),
                ChipVendor::Broadcom => assert_eq!(p.listen_interval_assoc, 10),
            }
        }
    }

    #[test]
    fn only_nexus4_rounds_ping() {
        for p in all_phones() {
            assert_eq!(p.ping_integer_rounding, p.name == "Google Nexus 4");
        }
    }

    #[test]
    fn dalvik_slower_than_native() {
        for p in all_phones() {
            let n = p.runtime_xing(RuntimeKind::Native);
            let d = p.runtime_xing(RuntimeKind::Dalvik);
            assert!(d.mean_ms > n.mean_ms, "{}", p.name);
        }
    }

    #[test]
    fn cpu_factor_scales_runtime() {
        let fast = nexus5().runtime_xing(RuntimeKind::Native);
        let slow = xperia_j().runtime_xing(RuntimeKind::Native);
        assert!(slow.mean_ms > fast.mean_ms);
    }

    #[test]
    fn broadcom_wake_larger_than_qualcomm() {
        assert!(nexus5().bus.tx_wake.mean_ms > nexus4().bus.tx_wake.mean_ms);
        assert!(nexus5().bus.rx_wake.mean_ms > nexus4().bus.rx_wake.mean_ms);
    }
}
