//! The SDIO/SMD host-bus sleep state machine (§3.2.1).
//!
//! The `bcmdhd` driver keeps a watchdog-driven idle counter; after
//! `idletime` ticks (50 ms by default) it puts the bus to sleep. The next
//! TX or RX must then wait for the bus to wake — the ~10–14 ms promotion
//! delay the paper measures in Table 3 and identifies as the dominant
//! in-phone inflation. Qualcomm's `wcnss`/SMD has the same mechanism with
//! smaller wake costs.
//!
//! The machine is evaluated lazily: the bus is asleep iff more than `Tis`
//! has elapsed since the last activity. A pending wake future-dates the
//! activity clock so concurrent operations during the wake window don't
//! sample a second wake. Awake time is accumulated for the energy proxy.

use obs::{Counter, Histogram, Registry};
use simcore::{SimDuration, SimTime};

/// Telemetry handles for the bus (`phone.sdio.*`). Defaults to disabled
/// no-op handles.
#[derive(Debug, Clone, Default)]
struct BusMetrics {
    wakeups: Counter,
    demotions: Counter,
    ops_awake: Counter,
    ops_asleep: Counter,
    /// Promotion (wake) latency paid by operations that found the bus
    /// asleep, ms — the ∆dk−v driver cost of Table 3.
    wake_latency_ms: Histogram,
}

impl BusMetrics {
    fn from_registry(reg: &Registry) -> BusMetrics {
        BusMetrics {
            wakeups: reg.counter("phone.sdio.wakeups"),
            demotions: reg.counter("phone.sdio.demotions"),
            ops_awake: reg.counter("phone.sdio.ops_awake"),
            ops_asleep: reg.counter("phone.sdio.ops_asleep"),
            wake_latency_ms: reg.histogram_ms("phone.sdio.wake_latency_ms"),
        }
    }
}

/// Energy/usage counters for the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusStats {
    /// Sleep → awake transitions.
    pub wakeups: u64,
    /// Operations served with the bus already awake.
    pub ops_awake: u64,
    /// Operations that had to wake the bus.
    pub ops_asleep: u64,
    /// Accumulated awake time in ns (energy proxy).
    pub awake_ns: u64,
}

/// The host-bus sleep state machine.
#[derive(Debug, Clone)]
pub struct SdioBus {
    /// Whether the sleep feature is enabled (the paper disables it by
    /// patching `dhdsdio_bussleep`; Table 3 and Fig. 9 need that switch).
    sleep_enabled: bool,
    tis: SimDuration,
    /// Time of the most recent bus activity; future-dated while waking.
    last_activity: SimTime,
    /// Whether any activity has happened yet (bus starts asleep).
    ever_active: bool,
    /// Public counters.
    pub stats: BusStats,
    metrics: BusMetrics,
}

impl SdioBus {
    /// Create a bus with demotion timeout `tis`. The bus starts asleep.
    pub fn new(tis: SimDuration, sleep_enabled: bool) -> SdioBus {
        SdioBus {
            sleep_enabled,
            tis,
            last_activity: SimTime::ZERO,
            ever_active: false,
            stats: BusStats::default(),
            metrics: BusMetrics::default(),
        }
    }

    /// Register this bus's telemetry (`phone.sdio.*`) in `reg`. Without
    /// this call every metric handle is a disabled no-op.
    pub fn attach_metrics(&mut self, reg: &Registry) {
        self.metrics = BusMetrics::from_registry(reg);
    }

    /// The demotion timeout.
    pub fn tis(&self) -> SimDuration {
        self.tis
    }

    /// Whether sleeping is enabled.
    pub fn sleep_enabled(&self) -> bool {
        self.sleep_enabled
    }

    /// Enable/disable the sleep feature (kernel patch switch).
    pub fn set_sleep_enabled(&mut self, on: bool) {
        self.sleep_enabled = on;
    }

    /// Is the bus awake at `now`?
    pub fn is_awake(&self, now: SimTime) -> bool {
        if !self.sleep_enabled {
            return true;
        }
        if !self.ever_active {
            return false;
        }
        now.saturating_since(self.last_activity) < self.tis
    }

    /// Record a bus operation at `now` that completes at `ready_at`
    /// (`ready_at > now` while a wake is in progress). Returns whether the
    /// operation found the bus asleep.
    pub fn touch(&mut self, now: SimTime, ready_at: SimTime) -> bool {
        let was_asleep = !self.is_awake(now);
        if was_asleep {
            self.stats.wakeups += 1;
            self.metrics.wakeups.inc();
            self.metrics.ops_asleep.inc();
            if self.ever_active {
                // Finding the bus asleep after activity means a demotion
                // (lazy) happened in between.
                self.metrics.demotions.inc();
            }
            self.metrics
                .wake_latency_ms
                .observe(ready_at.saturating_since(now).as_nanos() as f64 / 1e6);
            self.stats.ops_asleep += 1;
        } else {
            self.stats.ops_awake += 1;
            self.metrics.ops_awake.inc();
            if self.ever_active {
                // Extend the awake account by the idle gap we stayed up
                // (capped at Tis — beyond that we'd have slept).
                let gap = now.saturating_since(self.last_activity).as_nanos();
                self.stats.awake_ns += gap.min(self.tis.as_nanos());
            }
        }
        // Time spent completing this operation (including any wake) is
        // awake time.
        self.stats.awake_ns += ready_at.saturating_since(now).as_nanos();
        self.ever_active = true;
        self.last_activity = self.last_activity.max(ready_at);
        was_asleep
    }

    /// When the bus will demote to sleep if nothing else happens (`None`
    /// when sleeping is disabled or it never woke).
    pub fn demotion_at(&self) -> Option<SimTime> {
        if !self.sleep_enabled || !self.ever_active {
            return None;
        }
        Some(self.last_activity + self.tis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn starts_asleep() {
        let bus = SdioBus::new(SimDuration::from_millis(50), true);
        assert!(!bus.is_awake(SimTime::ZERO));
        assert!(!bus.is_awake(t(1000)));
        assert_eq!(bus.demotion_at(), None);
    }

    #[test]
    fn wakes_on_touch_and_demotes_after_tis() {
        let mut bus = SdioBus::new(SimDuration::from_millis(50), true);
        let asleep = bus.touch(t(100), t(110)); // wake takes 10 ms
        assert!(asleep);
        assert!(bus.is_awake(t(120)));
        assert!(bus.is_awake(t(159)));
        // Demotion 50 ms after the operation completed at 110.
        assert_eq!(bus.demotion_at(), Some(t(160)));
        assert!(!bus.is_awake(t(160)));
    }

    #[test]
    fn activity_resets_demotion() {
        let mut bus = SdioBus::new(SimDuration::from_millis(50), true);
        bus.touch(t(0), t(10));
        bus.touch(t(40), t(40));
        assert_eq!(bus.demotion_at(), Some(t(90)));
        assert!(bus.is_awake(t(89)));
        assert!(!bus.is_awake(t(90)));
    }

    #[test]
    fn disabled_sleep_is_always_awake() {
        let mut bus = SdioBus::new(SimDuration::from_millis(50), false);
        assert!(bus.is_awake(SimTime::ZERO));
        assert!(!bus.touch(t(5), t(5)));
        assert!(bus.is_awake(t(10_000)));
        assert_eq!(bus.demotion_at(), None);
        assert_eq!(bus.stats.wakeups, 0);
    }

    #[test]
    fn toggle_sleep_feature() {
        let mut bus = SdioBus::new(SimDuration::from_millis(50), true);
        bus.touch(t(0), t(10));
        assert!(!bus.is_awake(t(200)));
        bus.set_sleep_enabled(false);
        assert!(bus.is_awake(t(200)));
        bus.set_sleep_enabled(true);
        assert!(!bus.is_awake(t(200)));
    }

    #[test]
    fn counters_track_sleep_hits() {
        let mut bus = SdioBus::new(SimDuration::from_millis(50), true);
        assert!(bus.touch(t(0), t(10))); // asleep -> wake
        assert!(!bus.touch(t(20), t(20))); // awake
        assert!(!bus.touch(t(60), t(60))); // still awake (idle 40 < 50)
        assert!(bus.touch(t(200), t(211))); // demoted, wake again
        assert_eq!(bus.stats.wakeups, 2);
        assert_eq!(bus.stats.ops_asleep, 2);
        assert_eq!(bus.stats.ops_awake, 2);
    }

    #[test]
    fn future_dated_wake_covers_concurrent_ops() {
        let mut bus = SdioBus::new(SimDuration::from_millis(50), true);
        bus.touch(t(100), t(112)); // waking until 112
                                   // A second operation lands mid-wake: bus counts as awake (it will
                                   // ride the same wake), no second wake.
        assert!(bus.is_awake(t(105)));
        assert!(!bus.touch(t(105), t(112)));
        assert_eq!(bus.stats.wakeups, 1);
    }

    #[test]
    fn awake_time_accumulates() {
        let mut bus = SdioBus::new(SimDuration::from_millis(50), true);
        bus.touch(t(0), t(10));
        bus.touch(t(30), t(31));
        assert!(bus.stats.awake_ns > 0);
    }
}
