//! Property-style tests for the phone pipeline: timestamp-chain ordering,
//! bus-sleep accounting, and ledger consistency under randomized traffic
//! schedules and profiles. Randomized inputs come from the workspace's
//! seeded [`DetRng`], so every case is reproducible.

use phone::{App, AppCtx, PhoneNode, RuntimeKind};
use simcore::{Ctx, DetRng, Node, NodeId, Sim, SimDuration, SimTime};
use wire::{IcmpKind, Ip, Msg, Packet, PacketTag, L4};

const CASES: u64 = 24;

/// Echoes every packet back after a fixed delay.
struct EchoNic {
    delay: SimDuration,
    next_id: u64,
}
impl Node<Msg> for EchoNic {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        if let Msg::Wire(p) = msg {
            let l4 = match p.l4 {
                L4::Icmp { ident, seq, .. } => L4::Icmp {
                    kind: IcmpKind::EchoReply,
                    ident,
                    seq,
                },
                other => other,
            };
            self.next_id += 1;
            let reply = p.reply(0xE_0000 + self.next_id, l4, p.payload_len, PacketTag::Other);
            ctx.send(from, self.delay, Msg::Wire(reply));
        }
    }
}

/// Sends echo probes on a caller-provided schedule.
struct Scheduler {
    dst: Ip,
    gaps_ms: Vec<u64>,
    sent: Vec<u64>,
    received: usize,
    next: usize,
}
impl App for Scheduler {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        if !self.gaps_ms.is_empty() {
            ctx.set_timer(SimDuration::from_millis(self.gaps_ms[0]), 0);
        }
    }
    fn wants(&self, packet: &Packet) -> bool {
        matches!(
            packet.l4,
            L4::Icmp {
                kind: IcmpKind::EchoReply,
                ident: 0x7777,
                ..
            }
        )
    }
    fn on_packet(&mut self, _ctx: &mut AppCtx<'_, '_>, _packet: Packet) {
        self.received += 1;
    }
    fn on_timer(&mut self, ctx: &mut AppCtx<'_, '_>, _tag: u32) {
        let id = ctx.send(
            self.dst,
            64,
            L4::Icmp {
                kind: IcmpKind::EchoRequest,
                ident: 0x7777,
                seq: self.next as u16,
            },
            56,
            PacketTag::Probe(self.next as u32),
        );
        self.sent.push(id);
        self.next += 1;
        if self.next < self.gaps_ms.len() {
            ctx.set_timer(SimDuration::from_millis(self.gaps_ms[self.next]), 0);
        }
    }
}

fn profiles() -> Vec<phone::PhoneProfile> {
    phone::all_phones()
}

/// For any phone profile, runtime kind, network delay, and probing
/// schedule: the TX stamp chain is ordered, the RX stamp chain is
/// ordered, every probe completes, and the bus accounting is sane.
#[test]
fn pipeline_stamps_always_ordered() {
    let mut rng = DetRng::new(0x7403_0001);
    for _ in 0..CASES {
        let profile_idx = rng.uniform_u64(0, 4) as usize;
        let runtime_native = rng.chance(0.5);
        let delay_ms = rng.uniform_u64(1, 149);
        let n_gaps = rng.uniform_u64(1, 11) as usize;
        let gaps: Vec<u64> = (0..n_gaps).map(|_| rng.uniform_u64(1, 799)).collect();
        let sleep_enabled = rng.chance(0.5);
        let seed = rng.uniform_u64(0, 999);

        let mut sim = Sim::new(seed);
        let nic = sim.add_node(Box::new(EchoNic {
            delay: SimDuration::from_millis(delay_ms),
            next_id: 0,
        }));
        let profile = profiles()[profile_idx].clone();
        let mut ph = PhoneNode::new(1, profile, phone::wlan_ip(100), nic);
        ph.core_mut().bus.set_sleep_enabled(sleep_enabled);
        let runtime = if runtime_native {
            RuntimeKind::Native
        } else {
            RuntimeKind::Dalvik
        };
        let n_probes = gaps.len();
        let app = ph.install_app(
            Box::new(Scheduler {
                dst: phone::wired_ip(1),
                gaps_ms: gaps,
                sent: vec![],
                received: 0,
                next: 0,
            }),
            runtime,
        );
        let phone_id = sim.add_node(Box::new(ph));
        sim.run_until(SimTime::from_secs(30));

        let phone_node = sim.node::<PhoneNode>(phone_id);
        let sched = phone_node.app::<Scheduler>(app);
        assert_eq!(sched.sent.len(), n_probes);
        assert_eq!(sched.received, n_probes, "all probes must complete");

        for &req in &sched.sent {
            let s = phone_node.ledger().get(req).expect("request stamped");
            let tou = s.tou.expect("tou");
            let tok = s.tok.expect("tok");
            let tov = s.tov.expect("tov");
            let tbus = s.tbus.expect("tbus");
            assert!(tou <= tok && tok <= tov && tov <= tbus);
            // dvsend is non-negative and bounded by the worst wake + base.
            let dvsend = s.dvsend_ms().expect("dvsend");
            assert!((0.0..20.0).contains(&dvsend), "dvsend {dvsend}");
        }
        // Bus accounting.
        let bus = &phone_node.core().bus.stats;
        assert_eq!(
            bus.ops_awake + bus.ops_asleep,
            phone_node.core().stats.tx_pkts + phone_node.core().stats.rx_pkts
        );
        if !sleep_enabled {
            assert_eq!(bus.wakeups, 0);
        } else {
            assert!(bus.wakeups >= 1, "first op must wake the bus");
        }
        assert!(bus.awake_ns <= sim.now().as_nanos());
    }
}

/// The user-level RTT always dominates the network delay, and with
/// the bus sleep disabled it stays within the profile's driver/runtime
/// budget of it.
#[test]
fn du_bounds() {
    let mut rng = DetRng::new(0x7403_0002);
    for _ in 0..CASES {
        let profile_idx = rng.uniform_u64(0, 4) as usize;
        let delay_ms = rng.uniform_u64(5, 119);
        let seed = rng.uniform_u64(0, 999);

        let mut sim = Sim::new(seed);
        let nic = sim.add_node(Box::new(EchoNic {
            delay: SimDuration::from_millis(delay_ms),
            next_id: 0,
        }));
        let mut ph = PhoneNode::new(1, profiles()[profile_idx].clone(), phone::wlan_ip(100), nic);
        ph.core_mut().bus.set_sleep_enabled(false);
        let app = ph.install_app(
            Box::new(Scheduler {
                dst: phone::wired_ip(1),
                gaps_ms: vec![1, 500, 900],
                sent: vec![],
                received: 0,
                next: 0,
            }),
            RuntimeKind::Native,
        );
        let phone_id = sim.add_node(Box::new(ph));
        sim.run_until(SimTime::from_secs(10));
        let phone_node = sim.node::<PhoneNode>(phone_id);
        let sched = phone_node.app::<Scheduler>(app);
        for &req in &sched.sent {
            let s = phone_node.ledger().get(req).expect("stamps");
            let tbus = s.tbus.expect("tbus");
            let tou = s.tou.expect("tou");
            let tx_cost = tbus.saturating_since(tou).as_ms_f64();
            assert!(tx_cost < 10.0, "tx path cost {tx_cost} with sleep off");
        }
    }
}
