//! The access point: beacons, TIM, per-station power-save buffering, and
//! L3 gateway duties (TTL handling for the first hop).
//!
//! The AP is where the PSM half of the paper's delay inflation happens:
//! when a station has announced PM=1, downlink packets are buffered and
//! only advertised in the next beacon's TIM, so a response can wait up to
//! `IB × (L+1)` (§3.2.2). The AP is also the first-hop gateway, which is
//! what makes AcuteMon's TTL=1 warm-up packets die here instead of loading
//! the measured path (§4.1).

use std::collections::{HashMap, VecDeque};

use obs::{Counter, Histogram, Registry};
use simcore::{Ctx, Node, NodeId, SimDuration, SimTime};
use wire::{Frame, FrameKind, IcmpKind, Ip, Mac, Msg, Packet, PacketIdGen, PacketTag, L4};

const TAG_BEACON: u64 = 1;

/// Telemetry handles for the AP (`phy.ap.*`). Defaults to disabled
/// no-op handles.
#[derive(Default)]
struct ApMetrics {
    beacons: Counter,
    forwarded_up: Counter,
    forwarded_down: Counter,
    ps_buffered: Counter,
    dropped: Counter,
    /// Time each PS-buffered packet waited at the AP before release, ms.
    /// This is the beacon-buffering half of ∆dv−n in the paper.
    ps_buffer_wait_ms: Histogram,
}

impl ApMetrics {
    fn from_registry(reg: &Registry) -> ApMetrics {
        ApMetrics {
            beacons: reg.counter("phy.ap.beacons"),
            forwarded_up: reg.counter("phy.ap.forwarded_up"),
            forwarded_down: reg.counter("phy.ap.forwarded_down"),
            ps_buffered: reg.counter("phy.ap.ps_buffered"),
            dropped: reg.counter("phy.ap.dropped"),
            ps_buffer_wait_ms: reg.histogram_ms("phy.ap.ps_buffer_wait_ms"),
        }
    }
}

/// AP configuration.
#[derive(Debug, Clone)]
pub struct ApConfig {
    /// BSSID / MAC of the AP radio.
    pub mac: Mac,
    /// LAN-side gateway IP (source of ICMP errors).
    pub lan_ip: Ip,
    /// Beacon period (102.4 ms by default).
    pub beacon_interval: SimDuration,
    /// Phase of the first beacon relative to simulation start. Experiments
    /// randomize this so probe arrivals are uniform in the beacon cycle.
    pub beacon_offset: SimDuration,
    /// Per-station power-save buffer capacity (packets).
    pub ps_buffer_cap: usize,
    /// Downlink queue cap: packets in flight towards the medium before
    /// drop-tail (models the AP's interface queue under congestion).
    pub downlink_cap: usize,
    /// Whether the gateway emits ICMP Time Exceeded when TTL hits zero.
    pub icmp_ttl_exceeded: bool,
    /// Internal forwarding latency between the radio and the wired port.
    pub forward_latency: SimDuration,
}

impl Default for ApConfig {
    fn default() -> Self {
        ApConfig {
            mac: Mac::local(0),
            lan_ip: Ip::new(192, 168, 1, 1),
            beacon_interval: crate::config::default_beacon_interval(),
            beacon_offset: SimDuration::from_millis(13),
            ps_buffer_cap: 64,
            downlink_cap: 64,
            icmp_ttl_exceeded: true,
            forward_latency: SimDuration::from_micros(200),
        }
    }
}

#[derive(Debug, Default)]
struct StaEntry {
    dozing: bool,
    /// U-APSD (WMM power save): buffered frames are released by the
    /// station's own uplink triggers instead of PS-Polls after TIM.
    uapsd: bool,
    /// Buffered downlink packets with their enqueue time, so the wait
    /// in the PS buffer can be measured at release.
    buffered: VecDeque<(SimTime, Packet)>,
}

/// Counters the AP accumulates.
#[derive(Debug, Clone, Default)]
pub struct ApStats {
    /// Beacons transmitted.
    pub beacons: u64,
    /// Uplink packets forwarded to the wire.
    pub forwarded_up: u64,
    /// Downlink packets sent straight to awake stations.
    pub forwarded_down: u64,
    /// Downlink packets buffered for dozing stations.
    pub ps_buffered: u64,
    /// Packets dropped: PS buffer full.
    pub dropped_ps_full: u64,
    /// Packets dropped: downlink queue full.
    pub dropped_queue_full: u64,
    /// Packets dropped: TTL expired at the gateway.
    pub dropped_ttl: u64,
    /// Packets dropped: no route/association for destination.
    pub dropped_no_route: u64,
    /// ICMP Time Exceeded messages generated.
    pub icmp_generated: u64,
}

/// The AP node.
pub struct ApNode {
    cfg: ApConfig,
    medium: NodeId,
    wired: NodeId,
    stations: HashMap<Mac, StaEntry>,
    ip_to_mac: HashMap<Ip, Mac>,
    frame_ids: PacketIdGen,
    pkt_ids: PacketIdGen,
    in_flight: usize,
    /// Reused drain buffer for [`ApNode::flush_buffered`], so releasing
    /// a PS buffer allocates nothing once grown to its high-water mark.
    flush_scratch: Vec<(SimTime, Packet)>,
    /// Public counters.
    pub stats: ApStats,
    metrics: ApMetrics,
}

impl ApNode {
    /// Create an AP. `source` seeds its frame/packet id spaces; `medium`
    /// and `wired` are the radio side and the wired next hop.
    pub fn new(source: u32, cfg: ApConfig, medium: NodeId, wired: NodeId) -> ApNode {
        ApNode {
            cfg,
            medium,
            wired,
            stations: HashMap::new(),
            ip_to_mac: HashMap::new(),
            frame_ids: PacketIdGen::new(source),
            pkt_ids: PacketIdGen::new(source + 1),
            in_flight: 0,
            flush_scratch: Vec::new(),
            stats: ApStats::default(),
            metrics: ApMetrics::default(),
        }
    }

    /// Register this AP's telemetry (`phy.ap.*`) in `reg`. Without this
    /// call every metric handle is a disabled no-op.
    pub fn attach_metrics(&mut self, reg: &Registry) {
        self.metrics = ApMetrics::from_registry(reg);
    }

    /// Associate a station: its MAC joins the BSS and `ip` routes to it.
    pub fn associate(&mut self, mac: Mac, ip: Ip) {
        self.stations.insert(mac, StaEntry::default());
        self.ip_to_mac.insert(ip, mac);
    }

    /// Associate a station that negotiated U-APSD: buffered downlink is
    /// released by its uplink triggers (a service period), not PS-Polls.
    pub fn associate_uapsd(&mut self, mac: Mac, ip: Ip) {
        self.stations.insert(
            mac,
            StaEntry {
                uapsd: true,
                ..StaEntry::default()
            },
        );
        self.ip_to_mac.insert(ip, mac);
    }

    /// Whether the AP currently believes `mac` is dozing.
    pub fn is_dozing(&self, mac: Mac) -> bool {
        self.stations.get(&mac).map(|s| s.dozing).unwrap_or(false)
    }

    /// Number of packets buffered for `mac`.
    pub fn buffered_for(&self, mac: Mac) -> usize {
        self.stations
            .get(&mac)
            .map(|s| s.buffered.len())
            .unwrap_or(0)
    }

    fn tx_data(&mut self, ctx: &mut Ctx<'_, Msg>, dst: Mac, packet: Packet) {
        if self.in_flight >= self.cfg.downlink_cap {
            self.stats.dropped_queue_full += 1;
            self.metrics.dropped.inc();
            return;
        }
        self.in_flight += 1;
        let frame = Frame::data(self.frame_ids.next_id(), self.cfg.mac, dst, packet, false);
        ctx.send(self.medium, SimDuration::ZERO, Msg::MediumTx(frame));
    }

    fn downlink(&mut self, ctx: &mut Ctx<'_, Msg>, packet: Packet) {
        let Some(&mac) = self.ip_to_mac.get(&packet.dst) else {
            self.stats.dropped_no_route += 1;
            self.metrics.dropped.inc();
            return;
        };
        let dozing = self.stations.get(&mac).map(|s| s.dozing).unwrap_or(false);
        if dozing {
            let cap = self.cfg.ps_buffer_cap;
            let now = ctx.now();
            let entry = self.stations.get_mut(&mac).expect("associated");
            if entry.buffered.len() >= cap {
                self.stats.dropped_ps_full += 1;
                self.metrics.dropped.inc();
            } else {
                entry.buffered.push_back((now, packet));
                self.stats.ps_buffered += 1;
                self.metrics.ps_buffered.inc();
                if ctx.trace_enabled("ap") {
                    ctx.trace("ap", format!("buffered pkt {} for dozing {mac}", packet.id));
                }
            }
        } else {
            self.stats.forwarded_down += 1;
            self.metrics.forwarded_down.inc();
            self.tx_data(ctx, mac, packet);
        }
    }

    fn set_dozing(&mut self, ctx: &mut Ctx<'_, Msg>, mac: Mac, dozing: bool) {
        let became_awake = match self.stations.get_mut(&mac) {
            Some(entry) if entry.dozing != dozing => {
                entry.dozing = dozing;
                if ctx.trace_enabled("ap") {
                    ctx.trace("ap", format!("{mac} pm={dozing}"));
                }
                !dozing
            }
            _ => false,
        };
        // PM=0 means the station receives normally again: anything still
        // buffered goes out now (this also realizes the U-APSD service
        // period, since a trigger frame carries PM=0 in this model).
        if became_awake {
            self.flush_buffered(ctx, mac);
        }
    }

    fn flush_buffered(&mut self, ctx: &mut Ctx<'_, Msg>, mac: Mac) {
        // Drain through the reused scratch buffer (detached from `self`
        // so `tx_data` can borrow freely): no allocation at steady state.
        let mut drained = std::mem::take(&mut self.flush_scratch);
        drained.clear();
        if let Some(e) = self.stations.get_mut(&mac) {
            drained.extend(e.buffered.drain(..));
        }
        let now = ctx.now();
        for &(enqueued, packet) in &drained {
            let waited_ms = now.saturating_since(enqueued).as_nanos() as f64 / 1e6;
            self.metrics.ps_buffer_wait_ms.observe(waited_ms);
            // The span covers exactly the interval the histogram observes,
            // so per-trace `ap_buffer` totals reconcile with the metric.
            let tracer = ctx.tracer();
            if let Some(tc) = tracer.packet_ctx(packet.id) {
                let span = tracer.span(
                    tc.trace,
                    Some(tc.root),
                    "ap_buffer",
                    "mac",
                    enqueued.as_nanos(),
                    now.as_nanos(),
                );
                tracer.attr(span, "waited_ms", waited_ms);
            }
            self.stats.forwarded_down += 1;
            self.metrics.forwarded_down.inc();
            self.tx_data(ctx, mac, packet);
        }
        drained.clear();
        self.flush_scratch = drained;
    }

    fn gateway_uplink(&mut self, ctx: &mut Ctx<'_, Msg>, mut packet: Packet, from_mac: Mac) {
        // First-hop router: decrement TTL.
        packet.ttl = packet.ttl.saturating_sub(1);
        if packet.ttl == 0 {
            self.stats.dropped_ttl += 1;
            self.metrics.dropped.inc();
            if ctx.trace_enabled("ap") {
                ctx.trace("ap", format!("TTL expired for pkt {}", packet.id));
            }
            if self.cfg.icmp_ttl_exceeded {
                // RFC 792: time exceeded back to the sender. This goes
                // through the normal downlink path (and is itself subject
                // to PSM buffering).
                let icmp = Packet {
                    id: self.pkt_ids.next_id(),
                    src: self.cfg.lan_ip,
                    dst: packet.src,
                    ttl: 64,
                    l4: L4::Icmp {
                        kind: IcmpKind::TimeExceeded,
                        ident: 0,
                        seq: 0,
                    },
                    payload_len: 28,
                    tag: PacketTag::Other,
                };
                self.stats.icmp_generated += 1;
                self.downlink(ctx, icmp);
            }
            let _ = from_mac;
            return;
        }
        self.stats.forwarded_up += 1;
        self.metrics.forwarded_up.inc();
        ctx.send(self.wired, self.cfg.forward_latency, Msg::Wire(packet));
    }
}

impl Node<Msg> for ApNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer(self.cfg.beacon_offset, TAG_BEACON);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::AirRx(frame) => {
                if frame.dst != self.cfg.mac {
                    return;
                }
                match frame.kind {
                    FrameKind::Data { packet, pm } => {
                        self.set_dozing(ctx, frame.src, pm);
                        self.gateway_uplink(ctx, packet, frame.src);
                    }
                    FrameKind::NullData { pm } => {
                        self.set_dozing(ctx, frame.src, pm);
                    }
                    FrameKind::PsPoll => {
                        // The poller is awake and retrieving.
                        self.set_dozing(ctx, frame.src, false);
                        self.flush_buffered(ctx, frame.src);
                    }
                    FrameKind::Beacon { .. } | FrameKind::Ack => {}
                }
            }
            Msg::Wire(packet) => {
                let _ = from;
                // From the wired segment: route down. The AP is also a
                // router here; decrement TTL.
                let mut packet = packet;
                packet.ttl = packet.ttl.saturating_sub(1);
                if packet.ttl == 0 {
                    self.stats.dropped_ttl += 1;
                    self.metrics.dropped.inc();
                    return;
                }
                self.downlink(ctx, packet);
            }
            Msg::TxDone { .. } | Msg::TxFailed { .. } => {
                self.in_flight = self.in_flight.saturating_sub(1);
            }
            other => debug_assert!(false, "ap got unexpected message {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        debug_assert_eq!(tag, TAG_BEACON);
        // U-APSD stations' delivery-enabled traffic is not advertised in
        // the TIM; it waits for their trigger frames instead. The TIM is
        // built inline (`wire::Tim` is a fixed-capacity array) and
        // sorted in place — the beacon tick stays off the heap.
        let mut tim: wire::Tim = self
            .stations
            .iter()
            .filter(|(_, e)| !e.buffered.is_empty() && !e.uapsd)
            .map(|(m, _)| *m)
            .collect();
        tim.as_mut_slice().sort_unstable(); // deterministic TIM order
        let beacon = Frame::beacon(self.frame_ids.next_id(), self.cfg.mac, tim);
        ctx.send(self.medium, SimDuration::ZERO, Msg::MediumTx(beacon));
        self.stats.beacons += 1;
        self.metrics.beacons.inc();
        ctx.set_timer(self.cfg.beacon_interval, TAG_BEACON);
    }
}

/// Helper: the time of the next beacon strictly after `now`, given the
/// offset/interval schedule. Used by analyzers, not by the AP itself.
pub fn next_beacon_after(now: SimTime, offset: SimDuration, interval: SimDuration) -> SimTime {
    let start = SimTime::ZERO + offset;
    if now < start {
        return start;
    }
    let elapsed = now.saturating_since(start).as_nanos();
    let k = elapsed / interval.as_nanos() + 1;
    start + SimDuration::from_nanos(k * interval.as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::MediumNode;
    use crate::MediumConfig;
    use simcore::Sim;

    struct Sink {
        wired: Vec<(SimTime, Packet)>,
        air: Vec<(SimTime, Frame)>,
    }
    impl Node<Msg> for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            match msg {
                Msg::Wire(p) => self.wired.push((ctx.now(), p)),
                Msg::AirRx(f) => self.air.push((ctx.now(), f)),
                _ => {}
            }
        }
    }

    fn pkt(id: u64, src: Ip, dst: Ip, ttl: u8) -> Packet {
        Packet {
            id,
            src,
            dst,
            ttl,
            l4: L4::Udp {
                src_port: 1,
                dst_port: 2,
            },
            payload_len: 32,
            tag: PacketTag::Other,
        }
    }

    const PHONE_IP: Ip = Ip::new(192, 168, 1, 100);
    const SERVER_IP: Ip = Ip::new(10, 0, 0, 1);

    struct World {
        sim: Sim<Msg>,
        ap: NodeId,
        medium: NodeId,
        wired: NodeId,
        radio: NodeId,
    }

    fn setup() -> World {
        let mut sim = Sim::new(3);
        let wired = sim.add_node(Box::new(Sink {
            wired: vec![],
            air: vec![],
        }));
        let radio = sim.add_node(Box::new(Sink {
            wired: vec![],
            air: vec![],
        }));
        let medium = sim.add_node(Box::new(MediumNode::new(MediumConfig::default())));
        let ap = sim.add_node(Box::new(ApNode::new(
            10,
            ApConfig::default(),
            medium,
            wired,
        )));
        sim.node_mut::<MediumNode>(medium).attach(ap);
        sim.node_mut::<MediumNode>(medium).attach(radio);
        sim.node_mut::<ApNode>(ap)
            .associate(Mac::local(1), PHONE_IP);
        World {
            sim,
            ap,
            medium,
            wired,
            radio,
        }
    }

    fn uplink_frame(p: Packet, pm: bool) -> Msg {
        Msg::AirRx(Frame::data(500, Mac::local(1), Mac::local(0), p, pm))
    }

    #[test]
    fn beacons_are_periodic() {
        let mut w = setup();
        w.sim.run_until(SimTime::from_millis(500));
        let beacons: Vec<SimTime> = w
            .sim
            .node::<Sink>(w.radio)
            .air
            .iter()
            .filter(|(_, f)| matches!(f.kind, FrameKind::Beacon { .. }))
            .map(|(t, _)| *t)
            .collect();
        // offset 13 ms, interval 102.4 ms -> beacons near 13, 115.4, 217.8, 320.2, 422.6
        assert_eq!(beacons.len(), 5);
        let gap = beacons[1] - beacons[0];
        assert!((gap.as_ms_f64() - 102.4).abs() < 1.0, "gap={gap}");
        assert_eq!(w.sim.node::<ApNode>(w.ap).stats.beacons, 5);
    }

    #[test]
    fn uplink_decrements_ttl_and_forwards() {
        let mut w = setup();
        let medium = w.medium;
        w.sim.inject(
            medium,
            w.ap,
            SimTime::from_millis(1),
            uplink_frame(pkt(1, PHONE_IP, SERVER_IP, 64), false),
        );
        w.sim.run_until(SimTime::from_millis(2));
        let up = &w.sim.node::<Sink>(w.wired).wired;
        assert_eq!(up.len(), 1);
        assert_eq!(up[0].1.ttl, 63);
    }

    #[test]
    fn ttl_one_dies_at_gateway_with_icmp_back() {
        let mut w = setup();
        let medium = w.medium;
        w.sim.inject(
            medium,
            w.ap,
            SimTime::from_millis(1),
            uplink_frame(pkt(1, PHONE_IP, SERVER_IP, 1), false),
        );
        w.sim.run_until(SimTime::from_millis(5));
        assert!(w.sim.node::<Sink>(w.wired).wired.is_empty());
        let st = &w.sim.node::<ApNode>(w.ap).stats;
        assert_eq!(st.dropped_ttl, 1);
        assert_eq!(st.icmp_generated, 1);
        // The ICMP error went back down over the air to the phone.
        let air = &w.sim.node::<Sink>(w.radio).air;
        let icmp = air
            .iter()
            .filter_map(|(_, f)| f.packet())
            .find(|p| {
                matches!(
                    p.l4,
                    L4::Icmp {
                        kind: IcmpKind::TimeExceeded,
                        ..
                    }
                )
            })
            .expect("icmp error frame");
        assert_eq!(icmp.dst, PHONE_IP);
    }

    #[test]
    fn downlink_to_awake_station_goes_straight_out() {
        let mut w = setup();
        let wired = w.wired;
        w.sim.inject(
            wired,
            w.ap,
            SimTime::from_millis(1),
            Msg::Wire(pkt(9, SERVER_IP, PHONE_IP, 64)),
        );
        w.sim.run_until(SimTime::from_millis(3));
        let air = &w.sim.node::<Sink>(w.radio).air;
        let data: Vec<_> = air.iter().filter(|(_, f)| f.packet().is_some()).collect();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].1.packet().unwrap().ttl, 63);
        assert_eq!(w.sim.node::<ApNode>(w.ap).stats.forwarded_down, 1);
    }

    #[test]
    fn downlink_to_dozing_station_waits_for_ps_poll() {
        let mut w = setup();
        let medium = w.medium;
        let wired = w.wired;
        // Station announces doze.
        w.sim.inject(
            medium,
            w.ap,
            SimTime::from_millis(1),
            Msg::AirRx(Frame::null_data(501, Mac::local(1), Mac::local(0), true)),
        );
        // A downlink packet arrives.
        w.sim.inject(
            wired,
            w.ap,
            SimTime::from_millis(2),
            Msg::Wire(pkt(9, SERVER_IP, PHONE_IP, 64)),
        );
        w.sim.run_until(SimTime::from_millis(10));
        assert!(w.sim.node::<ApNode>(w.ap).is_dozing(Mac::local(1)));
        assert_eq!(w.sim.node::<ApNode>(w.ap).buffered_for(Mac::local(1)), 1);
        // Nothing on the air yet (except possibly nothing at all).
        let air_data = w
            .sim
            .node::<Sink>(w.radio)
            .air
            .iter()
            .filter(|(_, f)| f.packet().is_some())
            .count();
        assert_eq!(air_data, 0);
        // Next beacon advertises it in the TIM.
        w.sim.run_until(SimTime::from_millis(14));
        let has_tim = w.sim.node::<Sink>(w.radio).air.iter().any(
            |(_, f)| matches!(&f.kind, FrameKind::Beacon { tim } if tim.contains(&Mac::local(1))),
        );
        assert!(has_tim, "TIM should advertise buffered traffic");
        // PS-Poll retrieves it.
        w.sim.inject(
            medium,
            w.ap,
            SimTime::from_millis(15),
            Msg::AirRx(Frame::ps_poll(502, Mac::local(1), Mac::local(0))),
        );
        w.sim.run_until(SimTime::from_millis(20));
        let air_data = w
            .sim
            .node::<Sink>(w.radio)
            .air
            .iter()
            .filter(|(_, f)| f.packet().is_some())
            .count();
        assert_eq!(air_data, 1);
        assert_eq!(w.sim.node::<ApNode>(w.ap).buffered_for(Mac::local(1)), 0);
        assert!(!w.sim.node::<ApNode>(w.ap).is_dozing(Mac::local(1)));
    }

    #[test]
    fn pm_bit_on_data_frame_updates_state() {
        let mut w = setup();
        let medium = w.medium;
        w.sim.inject(
            medium,
            w.ap,
            SimTime::from_millis(1),
            uplink_frame(pkt(1, PHONE_IP, SERVER_IP, 64), true),
        );
        w.sim.run_until(SimTime::from_millis(2));
        assert!(w.sim.node::<ApNode>(w.ap).is_dozing(Mac::local(1)));
        w.sim.inject(
            medium,
            w.ap,
            SimTime::from_millis(3),
            uplink_frame(pkt(2, PHONE_IP, SERVER_IP, 64), false),
        );
        w.sim.run_until(SimTime::from_millis(4));
        assert!(!w.sim.node::<ApNode>(w.ap).is_dozing(Mac::local(1)));
    }

    #[test]
    fn ps_buffer_cap_drops() {
        let mut w = setup();
        let medium = w.medium;
        let wired = w.wired;
        w.sim.inject(
            medium,
            w.ap,
            SimTime::from_millis(1),
            Msg::AirRx(Frame::null_data(501, Mac::local(1), Mac::local(0), true)),
        );
        for i in 0..100 {
            w.sim.inject(
                wired,
                w.ap,
                SimTime::from_millis(2),
                Msg::Wire(pkt(100 + i, SERVER_IP, PHONE_IP, 64)),
            );
        }
        w.sim.run_until(SimTime::from_millis(5));
        let st = &w.sim.node::<ApNode>(w.ap).stats;
        assert_eq!(st.ps_buffered, 64);
        assert_eq!(st.dropped_ps_full, 36);
    }

    #[test]
    fn unknown_destination_dropped() {
        let mut w = setup();
        let wired = w.wired;
        w.sim.inject(
            wired,
            w.ap,
            SimTime::from_millis(1),
            Msg::Wire(pkt(9, SERVER_IP, Ip::new(192, 168, 1, 250), 64)),
        );
        w.sim.run_until(SimTime::from_millis(3));
        assert_eq!(w.sim.node::<ApNode>(w.ap).stats.dropped_no_route, 1);
    }

    #[test]
    fn next_beacon_after_schedule() {
        let offset = SimDuration::from_millis(13);
        let interval = SimDuration::from_millis(100);
        assert_eq!(
            next_beacon_after(SimTime::ZERO, offset, interval),
            SimTime::from_millis(13)
        );
        assert_eq!(
            next_beacon_after(SimTime::from_millis(13), offset, interval),
            SimTime::from_millis(113)
        );
        assert_eq!(
            next_beacon_after(SimTime::from_millis(200), offset, interval),
            SimTime::from_millis(213)
        );
    }
}
