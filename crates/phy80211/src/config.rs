//! 802.11g timing and protocol constants.

use simcore::{LatencyDist, SimDuration};

/// One 802.11 Time Unit = 1024 µs. Beacon intervals are quoted in TUs;
/// the standard 100 TU beacon period is 102.4 ms (paper §3.2.2).
pub const TU: SimDuration = SimDuration::from_micros(1024);

/// The default beacon interval: 100 TU = 102.4 ms.
pub fn default_beacon_interval() -> SimDuration {
    TU.times(100)
}

/// Channel/medium parameters (802.11g defaults).
#[derive(Debug, Clone)]
pub struct MediumConfig {
    /// Data-frame PHY rate in Mbit/s. 802.11g tops out at 54, but rate
    /// adaptation in a busy environment typically settles lower; the
    /// default of 24 reproduces the paper's "< 20 Mbps UDP goodput"
    /// observation (§4.3, \[37\]).
    pub data_rate_mbps: f64,
    /// Management/control frame rate in Mbit/s (basic rate).
    pub mgmt_rate_mbps: f64,
    /// Slot time in µs.
    pub slot_us: f64,
    /// DIFS in µs.
    pub difs_us: f64,
    /// SIFS in µs.
    pub sifs_us: f64,
    /// PLCP preamble + header in µs, paid per transmission.
    pub preamble_us: f64,
    /// Link-layer ACK size in bytes.
    pub ack_bytes: usize,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Retry limit before a frame is dropped.
    pub retry_limit: u32,
    /// Per-contender collision probability unit: when a transmission
    /// starts while `k` other frames are queued, it collides with
    /// probability `1 − (1 − p)^min(k, 8)`.
    pub collision_unit_prob: f64,
    /// Channel frame-error rate: probability a transmission is corrupted
    /// (no ACK) independent of contention. MAC-layer retransmission then
    /// recovers it, at the cost of airtime and latency jitter.
    pub frame_error_rate: f64,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            data_rate_mbps: 24.0,
            mgmt_rate_mbps: 6.0,
            slot_us: 9.0,
            difs_us: 28.0,
            sifs_us: 10.0,
            preamble_us: 20.0,
            ack_bytes: 14,
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 7,
            collision_unit_prob: 0.06,
            frame_error_rate: 0.0,
        }
    }
}

impl MediumConfig {
    /// Airtime of a payload of `bytes` at `rate_mbps`, excluding preamble.
    pub fn payload_us(&self, bytes: usize, rate_mbps: f64) -> f64 {
        (bytes as f64 * 8.0) / rate_mbps
    }
}

/// Power-save policy of a station (paper §3.2.2).
#[derive(Debug, Clone)]
pub enum PsmPolicy {
    /// Constantly Awake Mode: never doze (e.g. a mains-powered load
    /// generator, or a phone with PSM disabled).
    CamAlways,
    /// Adaptive PSM: stay in CAM for a timeout after the last activity,
    /// then announce PM=1 and doze. The timeout `Tip` is sampled per idle
    /// period — real phones show the "~" spread the paper reports in
    /// Table 4.
    Adaptive {
        /// Distribution of the PSM timeout `Tip` in ms.
        timeout: LatencyDist,
    },
    /// Static PSM: return to doze immediately after each exchange. Causes
    /// the RTT round-up effect of \[19\]; kept for the ablation.
    Static,
}

/// Station (phone-side NIC MAC) configuration.
#[derive(Debug, Clone)]
pub struct StaConfig {
    /// Power-save policy.
    pub psm: PsmPolicy,
    /// Listen interval `L`: the station wakes for every `(L+1)`-th beacon
    /// while dozing. The paper finds the actual value is 0 for all tested
    /// phones (Table 4), i.e. every beacon.
    pub listen_interval: u32,
    /// Radio turn-on cost when transmitting from doze, in ms.
    pub wake_tx: LatencyDist,
    /// Probability that a dozing station misses a beacon entirely (clock
    /// drift / deep-sleep misses) and has to wait for the next one. This
    /// models the extra-over-half-beacon mean PSM inflation visible in
    /// Table 2.
    pub beacon_miss_prob: f64,
    /// U-APSD (WMM power save): while dozing, do not PS-Poll on TIM;
    /// buffered downlink is released by this station's own uplink
    /// triggers. Pair with [`crate::ApNode::associate_uapsd`].
    pub uapsd: bool,
}

impl Default for StaConfig {
    fn default() -> Self {
        StaConfig {
            psm: PsmPolicy::Adaptive {
                timeout: LatencyDist::normal(205.0, 15.0, 150.0, 260.0),
            },
            listen_interval: 0,
            wake_tx: LatencyDist::normal(0.8, 0.3, 0.2, 2.0),
            beacon_miss_prob: 0.15,
            uapsd: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_interval_is_102_4_ms() {
        assert_eq!(default_beacon_interval().as_ms_f64(), 102.4);
    }

    #[test]
    fn payload_airtime() {
        let c = MediumConfig::default();
        // 1500 B at 24 Mbps = 500 µs.
        assert!((c.payload_us(1500, 24.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn defaults_sane() {
        let c = MediumConfig::default();
        assert!(c.cw_min < c.cw_max);
        assert!(c.collision_unit_prob > 0.0 && c.collision_unit_prob < 1.0);
        let s = StaConfig::default();
        assert_eq!(s.listen_interval, 0);
    }
}
