//! # phy80211 — the 802.11 substrate
//!
//! Everything between the phone's WNIC driver and the wired network:
//!
//! * [`MediumNode`]: a shared channel with simplified DCF — DIFS + random
//!   backoff + airtime (+ SIFS + ACK), FIFO service, probabilistic
//!   collisions with binary-exponential backoff. Reproduces idle-channel
//!   per-frame latency of a few hundred µs and multi-millisecond queueing
//!   under iPerf-style cross traffic.
//! * [`StaMacNode`]: the station MAC with the power-save behaviours the
//!   paper analyses in §3.2.2 — adaptive PSM with a sampled timeout `Tip`,
//!   PM-bit signaling, listen-interval beacon skipping, PS-Poll retrieval,
//!   and a static-PSM mode for the ablation.
//! * [`ApNode`]: beacons with TIM, per-station PS buffering (the source of
//!   the up-to-`IB × (L+1)` downlink inflation), plus first-hop gateway
//!   duties: TTL decrement and ICMP Time Exceeded — which is what stops
//!   AcuteMon's TTL=1 warm-up traffic from loading the measured path.
//!
//! All three are [`simcore::Node`]s exchanging [`wire::Msg`].
//!
//! ```
//! use phy80211::{ApConfig, ApNode, MediumConfig, MediumNode};
//! use simcore::{Sim, SimTime};
//! use wire::{Mac, Msg};
//!
//! // A medium with an AP beaconing on it; sniff the beacons by counting
//! // the AP's transmissions.
//! let mut sim: Sim<Msg> = Sim::new(1);
//! struct Quiet;
//! impl simcore::Node<Msg> for Quiet {
//!     fn on_message(&mut self, _: &mut simcore::Ctx<'_, Msg>, _: simcore::NodeId, _: Msg) {}
//! }
//! let wired = sim.add_node(Box::new(Quiet));
//! let medium = sim.add_node(Box::new(MediumNode::new(MediumConfig::default())));
//! let ap = sim.add_node(Box::new(ApNode::new(10, ApConfig::default(), medium, wired)));
//! sim.node_mut::<MediumNode>(medium).attach(ap);
//! sim.run_until(SimTime::from_secs(1));
//! // 102.4 ms beacons with a 13 ms default offset: 10 in the first second.
//! assert_eq!(sim.node::<ApNode>(ap).stats.beacons, 10);
//! ```

#![warn(missing_docs)]

mod ap;
mod config;
mod medium;
mod sta;

pub use ap::{next_beacon_after, ApConfig, ApNode, ApStats};
pub use config::{default_beacon_interval, MediumConfig, PsmPolicy, StaConfig, TU};
pub use medium::{MediumNode, MediumStats};
pub use sta::{PowerState, StaMacNode, StaStats};
